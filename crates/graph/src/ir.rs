//! The typed computation-graph IR and the `Sequential` → graph lowering.
//!
//! A [`Graph`] is a straight-line chain of [`Node`]s (mirroring
//! [`Sequential`], which has no branching) with **per-sample** shapes
//! inferred for every node output. Shapes deliberately exclude the batch
//! dimension: the compiled plan scales every buffer linearly with the batch
//! at run time, so one compilation serves every batch size.
//!
//! Lowering copies weights out of the layers: dense f32 weights are
//! reshaped to the `[out, k]` GEMM layout, packed (frozen) weights share
//! their `Arc`'d blocks with the source model. Layers that are identities
//! in inference — `Dropout`, and `FakeQuant` with no installed format —
//! are dropped here and counted in [`Graph::dropped_identity`].

use advcomp_nn::{LayerSpec, QuantizedWeights, Sequential, WeightRepr};
use advcomp_qformat::QFormat;
use advcomp_tensor::Tensor;

use crate::{GraphError, Result};

/// Elementwise activation functions the compiler understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// `max(0, x)`.
    Relu,
    /// `tanh(x)`.
    Tanh,
    /// Numerically-stable logistic sigmoid.
    Sigmoid,
}

impl Act {
    /// Applies the activation to one value, with arithmetic identical to
    /// the corresponding `advcomp-nn` layer (`Relu` matches the slice
    /// kernel's `v.max(0.0)`, `Sigmoid` uses the same stable split).
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Act::Relu => v.max(0.0),
            Act::Tanh => v.tanh(),
            Act::Sigmoid => {
                if v >= 0.0 {
                    1.0 / (1.0 + (-v).exp())
                } else {
                    let e = v.exp();
                    e / (1.0 + e)
                }
            }
        }
    }

    /// Short lowercase name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Act::Relu => "relu",
            Act::Tanh => "tanh",
            Act::Sigmoid => "sigmoid",
        }
    }
}

/// Weights of a GEMM node in either representation.
#[derive(Debug, Clone)]
pub enum GemmWeight {
    /// f32 weights in `[out, k]` row-major GEMM layout (`k` is
    /// `in_features` for dense layers, the im2col patch length for
    /// convolutions).
    Dense(Tensor),
    /// Frozen block-quantised weights, shared with the source layer.
    Packed(QuantizedWeights),
}

impl GemmWeight {
    /// Output features (GEMM `n`).
    pub fn out_features(&self) -> usize {
        match self {
            GemmWeight::Dense(w) => w.shape()[0],
            GemmWeight::Packed(q) => q.tensor().rows(),
        }
    }

    /// Reduction length (GEMM `k`).
    pub fn in_features(&self) -> usize {
        match self {
            GemmWeight::Dense(w) => w.shape()[1],
            GemmWeight::Packed(q) => q.tensor().cols(),
        }
    }

    /// The activation format a packed weight quantises inputs with.
    pub fn act_format(&self) -> Option<QFormat> {
        match self {
            GemmWeight::Dense(_) => None,
            GemmWeight::Packed(q) => Some(q.act_format()),
        }
    }
}

/// One IR operation. Parameters are owned copies (cheap `Arc` clones for
/// packed weights), so a lowered graph is independent of the source model.
#[derive(Debug, Clone)]
pub enum Op {
    /// 2-D convolution over NCHW input, square kernel. `weight` is in
    /// `[oc, patch]` GEMM layout.
    Conv2d {
        /// GEMM-layout kernel weights.
        weight: GemmWeight,
        /// Per-output-channel bias.
        bias: Vec<f32>,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// Fully-connected `y = x Wᵀ + b`.
    Dense {
        /// `[out, in]` GEMM-layout weights.
        weight: GemmWeight,
        /// Bias, `[out]`.
        bias: Vec<f32>,
    },
    /// Inference batch normalisation over running statistics.
    /// `inv_std[c] = 1 / sqrt(running_var[c] + eps)` is precomputed with
    /// the exact arithmetic of the eval-mode layer.
    BatchNorm {
        /// Per-channel scale.
        gamma: Vec<f32>,
        /// Per-channel shift.
        beta: Vec<f32>,
        /// Running mean.
        mean: Vec<f32>,
        /// Precomputed reciprocal standard deviation.
        inv_std: Vec<f32>,
    },
    /// Elementwise activation.
    Activation(Act),
    /// 2-D max pooling (square window, no padding).
    MaxPool2d {
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// 2-D average pooling (square window, no padding).
    AvgPool2d {
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Collapse the per-sample shape to rank 1.
    Flatten,
    /// Simulated activation quantisation (`FakeQuant` with an installed
    /// format): elementwise `format.quantize(v)`.
    Quantize(QFormat),
}

impl Op {
    /// Short lowercase mnemonic for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Conv2d { .. } => "conv2d",
            Op::Dense { .. } => "dense",
            Op::BatchNorm { .. } => "batchnorm",
            Op::Activation(_) => "activation",
            Op::MaxPool2d { .. } => "maxpool2d",
            Op::AvgPool2d { .. } => "avgpool2d",
            Op::Flatten => "flatten",
            Op::Quantize(_) => "quantize",
        }
    }
}

/// One graph node: an operation plus its inferred per-sample output shape.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Per-sample output shape (no batch dimension).
    pub out_shape: Vec<usize>,
}

/// A lowered straight-line computation graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Per-sample input shape the graph was lowered against.
    pub input_shape: Vec<usize>,
    /// Nodes in execution order; node `i` consumes node `i-1`'s output
    /// (node 0 consumes the graph input).
    pub nodes: Vec<Node>,
    /// Layers dropped at lowering because they are inference identities
    /// (`Dropout`, disabled `FakeQuant`).
    pub dropped_identity: usize,
}

/// Validates a per-sample shape: non-empty, no zero dims.
fn check_shape(shape: &[usize], what: &str) -> Result<()> {
    if shape.is_empty() || shape.contains(&0) {
        return Err(GraphError::Shape(format!(
            "{what} shape {shape:?} has a zero or missing dimension"
        )));
    }
    Ok(())
}

/// Pool output edge, mirroring the layers' `output_hw` checks.
fn pool_out(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    what: &str,
) -> Result<(usize, usize)> {
    if stride == 0 || kernel == 0 {
        return Err(GraphError::Shape(format!(
            "{what}: kernel and stride must be >= 1"
        )));
    }
    if h < kernel || w < kernel {
        return Err(GraphError::Shape(format!(
            "{what}: window {kernel} larger than input {h}x{w}"
        )));
    }
    Ok(((h - kernel) / stride + 1, (w - kernel) / stride + 1))
}

/// Infers the per-sample output shape of `op` applied to `in_shape`.
pub fn infer_shape(op: &Op, in_shape: &[usize]) -> Result<Vec<usize>> {
    match op {
        Op::Conv2d {
            weight,
            bias,
            kernel,
            stride,
            padding,
        } => {
            if in_shape.len() != 3 {
                return Err(GraphError::Shape(format!(
                    "conv2d expects a [c, h, w] per-sample input, got {in_shape:?}"
                )));
            }
            let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
            let patch = c * kernel * kernel;
            if weight.in_features() != patch {
                return Err(GraphError::Shape(format!(
                    "conv2d weight expects patch length {}, input gives {patch}",
                    weight.in_features()
                )));
            }
            let oc = weight.out_features();
            if bias.len() != oc {
                return Err(GraphError::Shape(format!(
                    "conv2d bias has {} entries for {oc} output channels",
                    bias.len()
                )));
            }
            if *stride == 0 || *kernel == 0 {
                return Err(GraphError::Shape(
                    "conv2d kernel and stride must be >= 1".into(),
                ));
            }
            let (ph, pw) = (h + 2 * padding, w + 2 * padding);
            if ph < *kernel || pw < *kernel {
                return Err(GraphError::Shape(format!(
                    "conv2d kernel {kernel} larger than padded input {ph}x{pw}"
                )));
            }
            Ok(vec![
                oc,
                (ph - kernel) / stride + 1,
                (pw - kernel) / stride + 1,
            ])
        }
        Op::Dense { weight, bias } => {
            if in_shape.len() != 1 {
                return Err(GraphError::Shape(format!(
                    "dense expects a flattened rank-1 per-sample input, got {in_shape:?}"
                )));
            }
            if weight.in_features() != in_shape[0] {
                return Err(GraphError::Shape(format!(
                    "dense weight expects {} input features, got {}",
                    weight.in_features(),
                    in_shape[0]
                )));
            }
            let out = weight.out_features();
            if bias.len() != out {
                return Err(GraphError::Shape(format!(
                    "dense bias has {} entries for {out} output features",
                    bias.len()
                )));
            }
            Ok(vec![out])
        }
        Op::BatchNorm { gamma, .. } => {
            if in_shape.len() != 3 || in_shape[0] != gamma.len() {
                return Err(GraphError::Shape(format!(
                    "batchnorm over {} channels fed {in_shape:?}",
                    gamma.len()
                )));
            }
            Ok(in_shape.to_vec())
        }
        Op::Activation(_) | Op::Quantize(_) => Ok(in_shape.to_vec()),
        Op::MaxPool2d { kernel, stride } => {
            if in_shape.len() != 3 {
                return Err(GraphError::Shape(format!(
                    "maxpool2d expects [c, h, w], got {in_shape:?}"
                )));
            }
            let (oh, ow) = pool_out(in_shape[1], in_shape[2], *kernel, *stride, "maxpool2d")?;
            Ok(vec![in_shape[0], oh, ow])
        }
        Op::AvgPool2d { kernel, stride } => {
            if in_shape.len() != 3 {
                return Err(GraphError::Shape(format!(
                    "avgpool2d expects [c, h, w], got {in_shape:?}"
                )));
            }
            let (oh, ow) = pool_out(in_shape[1], in_shape[2], *kernel, *stride, "avgpool2d")?;
            Ok(vec![in_shape[0], oh, ow])
        }
        Op::Flatten => Ok(vec![in_shape.iter().product()]),
    }
}

/// Converts a [`WeightRepr`] into an owned [`GemmWeight`] in `[out, k]`
/// layout. `gemm_rows` is `Some(oc)` for convolutions, whose dense weight
/// tensor arrives as `[oc, ic, kh, kw]` and must be reshaped.
fn lower_weight(repr: &WeightRepr<'_>, gemm_rows: Option<usize>) -> Result<GemmWeight> {
    match repr {
        WeightRepr::Dense(w) => {
            let t = match gemm_rows {
                Some(oc) => {
                    if w.is_empty() || w.len() % oc != 0 {
                        return Err(GraphError::Shape(format!(
                            "conv weight of {} elements not divisible into {oc} rows",
                            w.len()
                        )));
                    }
                    w.reshape(&[oc, w.len() / oc])?
                }
                None => {
                    if w.ndim() != 2 {
                        return Err(GraphError::Shape(format!(
                            "dense weight must be rank 2, got {:?}",
                            w.shape()
                        )));
                    }
                    (*w).clone()
                }
            };
            Ok(GemmWeight::Dense(t))
        }
        WeightRepr::Packed(q) => Ok(GemmWeight::Packed((*q).clone())),
    }
}

/// Lowers a [`Sequential`] into a [`Graph`], inferring per-sample shapes.
///
/// `input_shape` is the per-sample shape (e.g. `[1, 28, 28]` for MNIST —
/// no batch dimension). Inference identities (`Dropout`, `FakeQuant` with
/// no format) are dropped. Layers reporting [`LayerSpec::Opaque`] abort
/// the lowering: a compiler that silently skipped an unknown layer would
/// diverge from the model it claims to replicate.
///
/// # Errors
///
/// [`GraphError::Unsupported`] for opaque layers, [`GraphError::Shape`]
/// when a layer cannot accept its inferred input shape.
pub fn lower(model: &Sequential, input_shape: &[usize]) -> Result<Graph> {
    check_shape(input_shape, "input")?;
    let mut nodes = Vec::with_capacity(model.len());
    let mut dropped = 0usize;
    let mut cur = input_shape.to_vec();
    for layer in model.layers() {
        let op = match layer.spec() {
            LayerSpec::Conv2d {
                weight,
                bias,
                kernel,
                stride,
                padding,
            } => {
                let oc = bias.len();
                Op::Conv2d {
                    weight: lower_weight(&weight, Some(oc))?,
                    bias: bias.data().to_vec(),
                    kernel,
                    stride,
                    padding,
                }
            }
            LayerSpec::Dense { weight, bias } => Op::Dense {
                weight: lower_weight(&weight, None)?,
                bias: bias.data().to_vec(),
            },
            LayerSpec::BatchNorm2d {
                gamma,
                beta,
                running_mean,
                running_var,
                eps,
            } => Op::BatchNorm {
                gamma: gamma.to_vec(),
                beta: beta.to_vec(),
                mean: running_mean.to_vec(),
                inv_std: running_var
                    .iter()
                    .map(|&v| 1.0 / (v + eps).sqrt())
                    .collect(),
            },
            LayerSpec::Relu => Op::Activation(Act::Relu),
            LayerSpec::Tanh => Op::Activation(Act::Tanh),
            LayerSpec::Sigmoid => Op::Activation(Act::Sigmoid),
            LayerSpec::MaxPool2d { kernel, stride } => Op::MaxPool2d { kernel, stride },
            LayerSpec::AvgPool2d { kernel, stride } => Op::AvgPool2d { kernel, stride },
            LayerSpec::Flatten => Op::Flatten,
            LayerSpec::Dropout => {
                dropped += 1;
                continue;
            }
            LayerSpec::FakeQuant { format: None } => {
                dropped += 1;
                continue;
            }
            LayerSpec::FakeQuant {
                format: Some(format),
            } => Op::Quantize(format),
            LayerSpec::Opaque => {
                return Err(GraphError::Unsupported(format!(
                    "layer '{}' reports no lowering (LayerSpec::Opaque)",
                    layer.kind()
                )));
            }
        };
        let out_shape = infer_shape(&op, &cur)?;
        check_shape(&out_shape, op.name())?;
        nodes.push(Node {
            op,
            out_shape: out_shape.clone(),
        });
        cur = out_shape;
    }
    if nodes.is_empty() {
        return Err(GraphError::Unsupported(
            "model lowers to an empty graph".into(),
        ));
    }
    Ok(Graph {
        input_shape: input_shape.to_vec(),
        nodes,
        dropped_identity: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{Conv2d, Dense, Dropout, FakeQuant, Flatten, MaxPool2d, Relu, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(7);
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dropout::new(0.5, 1)),
            Box::new(Dense::new(4 * 4 * 4, 3, &mut rng)),
        ])
    }

    #[test]
    fn lowers_with_shape_inference_and_identity_dropping() {
        let model = tiny_net();
        let g = lower(&model, &[1, 8, 8]).unwrap();
        assert_eq!(g.dropped_identity, 1);
        let shapes: Vec<_> = g.nodes.iter().map(|n| n.out_shape.clone()).collect();
        assert_eq!(
            shapes,
            vec![
                vec![4, 8, 8],
                vec![4, 8, 8],
                vec![4, 4, 4],
                vec![64],
                vec![3]
            ]
        );
    }

    #[test]
    fn disabled_fakequant_is_dropped_and_enabled_kept() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Sequential::new(vec![
            Box::new(FakeQuant::new()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let g = lower(&model, &[4]).unwrap();
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.dropped_identity, 1);

        let mut fq = FakeQuant::new();
        advcomp_nn::Layer::set_activation_format(
            &mut fq,
            Some(advcomp_qformat::QFormat::new(3, 4).unwrap()),
        );
        let model = Sequential::new(vec![Box::new(fq), Box::new(Dense::new(4, 2, &mut rng))]);
        let g = lower(&model, &[4]).unwrap();
        assert_eq!(g.nodes.len(), 2);
        assert!(matches!(g.nodes[0].op, Op::Quantize(_)));
    }

    #[test]
    fn shape_errors_surface() {
        let model = tiny_net();
        // Wrong channel count for conv1.
        let err = lower(&model, &[2, 8, 8]).unwrap_err();
        assert!(matches!(err, GraphError::Shape(_)), "{err:?}");
    }
}
