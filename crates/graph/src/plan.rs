//! Liveness-based static memory planning for activation buffers.
//!
//! The executor gives every intermediate a **lifetime interval** over the
//! step sequence: `def` (the step that writes it) through `last_use` (the
//! last step that reads it — a step both reading and writing a buffer
//! extends the interval). The planner assigns each buffer an offset in one
//! shared arena such that buffers whose lifetimes overlap never alias,
//! while buffers that are dead by the time another is defined share
//! storage.
//!
//! Offsets are in **per-sample elements**: at run time every offset and
//! size is multiplied by the batch size. Scaling preserves disjointness —
//! if `[a, b)` and `[c, d)` are disjoint with `b ≤ c`, then
//! `[n·a, n·b)` and `[n·c, n·d)` are disjoint for every `n ≥ 1` — so one
//! plan is valid for all batch sizes.
//!
//! The allocator is greedy first-fit in definition order: for each buffer
//! it collects the address ranges of already-placed, lifetime-overlapping
//! buffers and takes the lowest gap that fits. [`validate_no_alias`]
//! re-checks the invariant pairwise and is exercised by the parity suite
//! over every topological order a straight-line schedule can present.

/// One buffer's size and lifetime, in executor step indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferLife {
    /// Size in per-sample elements (> 0).
    pub size: usize,
    /// Index of the step that defines (first writes) the buffer.
    pub def: usize,
    /// Index of the last step that reads the buffer (`>= def`).
    pub last_use: usize,
}

impl BufferLife {
    /// Do two lifetimes overlap (share at least one live step)?
    pub fn overlaps(&self, other: &BufferLife) -> bool {
        self.def <= other.last_use && other.def <= self.last_use
    }
}

/// The planner's output: per-buffer arena offsets.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// Per-sample element offset of each buffer in the arena.
    pub offsets: Vec<usize>,
    /// Arena length in per-sample elements (the peak).
    pub arena_len: usize,
    /// Sum of all buffer sizes — what separate allocations would cost.
    pub total_len: usize,
}

/// Plans arena offsets for `bufs` by greedy first-fit over lifetimes.
pub fn plan_arena(bufs: &[BufferLife]) -> MemoryPlan {
    let mut order: Vec<usize> = (0..bufs.len()).collect();
    order.sort_by_key(|&i| (bufs[i].def, i));
    let mut offsets = vec![0usize; bufs.len()];
    let mut placed: Vec<usize> = Vec::new();
    let mut arena_len = 0usize;
    for &i in &order {
        let b = bufs[i];
        let mut forbidden: Vec<(usize, usize)> = placed
            .iter()
            .filter(|&&p| bufs[p].overlaps(&b))
            .map(|&p| (offsets[p], offsets[p] + bufs[p].size))
            .collect();
        forbidden.sort_unstable();
        let mut off = 0usize;
        for (start, end) in forbidden {
            if off + b.size <= start {
                break;
            }
            off = off.max(end);
        }
        offsets[i] = off;
        arena_len = arena_len.max(off + b.size);
        placed.push(i);
    }
    MemoryPlan {
        offsets,
        arena_len,
        total_len: bufs.iter().map(|b| b.size).sum(),
    }
}

/// Checks pairwise that no two simultaneously-live buffers alias and that
/// every buffer fits inside the arena.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate_no_alias(bufs: &[BufferLife], plan: &MemoryPlan) -> Result<(), String> {
    if plan.offsets.len() != bufs.len() {
        return Err(format!(
            "plan has {} offsets for {} buffers",
            plan.offsets.len(),
            bufs.len()
        ));
    }
    for (i, b) in bufs.iter().enumerate() {
        if b.size == 0 {
            return Err(format!("buffer {i} has zero size"));
        }
        if b.last_use < b.def {
            return Err(format!("buffer {i} dies before it is defined"));
        }
        if plan.offsets[i] + b.size > plan.arena_len {
            return Err(format!("buffer {i} overruns the arena"));
        }
    }
    for i in 0..bufs.len() {
        for j in i + 1..bufs.len() {
            if !bufs[i].overlaps(&bufs[j]) {
                continue;
            }
            let (ai, bi) = (plan.offsets[i], plan.offsets[i] + bufs[i].size);
            let (aj, bj) = (plan.offsets[j], plan.offsets[j] + bufs[j].size);
            if ai < bj && aj < bi {
                return Err(format!(
                    "live buffers {i} ([{ai}, {bi})) and {j} ([{aj}, {bj})) alias"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn life(size: usize, def: usize, last_use: usize) -> BufferLife {
        BufferLife {
            size,
            def,
            last_use,
        }
    }

    #[test]
    fn disjoint_lifetimes_share_storage() {
        // A classic chain: each buffer dies as the next is defined +1.
        let bufs = [life(100, 0, 1), life(50, 1, 2), life(80, 2, 3)];
        let plan = plan_arena(&bufs);
        validate_no_alias(&bufs, &plan).unwrap();
        // b0 and b1 overlap (step 1), b1 and b2 overlap (step 2), but b0
        // and b2 do not: the arena peak is below the sum.
        assert!(plan.arena_len < plan.total_len);
        assert!(plan.arena_len >= 150); // b0+b1 live together
    }

    #[test]
    fn overlapping_lifetimes_never_alias() {
        let bufs = [
            life(64, 0, 5),
            life(32, 1, 3),
            life(32, 2, 4),
            life(128, 3, 5),
        ];
        let plan = plan_arena(&bufs);
        validate_no_alias(&bufs, &plan).unwrap();
    }

    #[test]
    fn fully_disjoint_collapse_to_max() {
        let bufs = [life(10, 0, 0), life(40, 2, 2), life(20, 4, 4)];
        let plan = plan_arena(&bufs);
        validate_no_alias(&bufs, &plan).unwrap();
        assert_eq!(plan.arena_len, 40);
        assert_eq!(plan.total_len, 70);
    }

    #[test]
    fn first_fit_reuses_interior_gaps() {
        // Big then small-dead-early, then another small that fits the gap
        // the dead one leaves.
        let bufs = [life(100, 0, 10), life(30, 0, 2), life(30, 3, 10)];
        let plan = plan_arena(&bufs);
        validate_no_alias(&bufs, &plan).unwrap();
        // The third buffer reuses the second's slot instead of growing.
        assert_eq!(plan.arena_len, 130);
    }

    #[test]
    fn validator_catches_aliasing() {
        let bufs = [life(10, 0, 2), life(10, 1, 3)];
        let bad = MemoryPlan {
            offsets: vec![0, 5],
            arena_len: 15,
            total_len: 20,
        };
        assert!(validate_no_alias(&bufs, &bad).is_err());
    }
}
