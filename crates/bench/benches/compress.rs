//! Compression-kernel costs: mask construction/application, DNS mask
//! updates, weight quantisation, and raw Q-format throughput.

use advcomp_compress::{magnitude_threshold, PruneMask, Quantizer};
use advcomp_models::lenet5;
use advcomp_qformat::QFormat;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_prune(c: &mut Criterion) {
    let model = lenet5(1.0, 0);
    c.bench_function("prune/mask_from_magnitude_lenet5", |b| {
        b.iter(|| black_box(PruneMask::from_magnitude(&model, 0.3).unwrap()))
    });
    let mask = PruneMask::from_magnitude(&model, 0.3).unwrap();
    c.bench_function("prune/mask_apply_lenet5", |b| {
        b.iter_batched(
            || lenet5(1.0, 0),
            |mut m| {
                mask.apply(&mut m).unwrap();
                black_box(m)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let values: Vec<f32> = (0..61_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
    c.bench_function("prune/threshold_61k", |b| {
        b.iter(|| black_box(magnitude_threshold(&values, 0.3)))
    });
}

fn bench_quant(c: &mut Criterion) {
    c.bench_function("quant/weights_lenet5_q4", |b| {
        let q = Quantizer::for_bitwidth(4).unwrap();
        b.iter_batched(
            || lenet5(1.0, 0),
            |mut m| {
                q.quantize_weights(&mut m);
                black_box(m)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let fmt = QFormat::for_bitwidth(8).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let values: Vec<f32> = (0..65_536).map(|_| rng.gen_range(-4.0..4.0)).collect();
    c.bench_function("quant/qformat_quantize_64k", |b| {
        b.iter(|| {
            let mut v = values.clone();
            fmt.quantize_slice(&mut v);
            black_box(v)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prune, bench_quant
);
criterion_main!(benches);
