//! Attack-generation throughput on the LeNet5 reference model: the cost of
//! crafting adversarial samples with each of the paper's attacks at their
//! Table 1 parameters.

use advcomp_attacks::{Attack, DeepFool, Fgsm, Ifgm, Ifgsm};
use advcomp_data::{DatasetConfig, SynthDigits};
use advcomp_models::lenet5;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (advcomp_nn::Sequential, advcomp_tensor::Tensor, Vec<usize>) {
    let model = lenet5(0.5, 0);
    let (train, _) = SynthDigits::generate(&DatasetConfig {
        train: 16,
        test: 1,
        seed: 0,
        noise: 0.05,
    });
    let (x, y) = train.slice(0, 16).unwrap();
    (model, x, y)
}

fn bench_attacks(c: &mut Criterion) {
    let (mut model, x, y) = setup();
    c.bench_function("attack/fgsm_16x28x28", |b| {
        let attack = Fgsm::new(0.02).unwrap();
        b.iter(|| black_box(attack.generate(&mut model, &x, &y).unwrap()))
    });
    c.bench_function("attack/ifgsm_t1_16x28x28", |b| {
        let attack = Ifgsm::new(0.02, 12).unwrap();
        b.iter(|| black_box(attack.generate(&mut model, &x, &y).unwrap()))
    });
    c.bench_function("attack/ifgm_t1_16x28x28", |b| {
        let attack = Ifgm::new(10.0, 5).unwrap();
        b.iter(|| black_box(attack.generate(&mut model, &x, &y).unwrap()))
    });
    let (x4, y4) = (x.narrow(0, 4).unwrap(), y[..4].to_vec());
    c.bench_function("attack/deepfool_t1_4x28x28", |b| {
        let attack = DeepFool::new(0.01, 5).unwrap();
        b.iter(|| black_box(attack.generate(&mut model, &x4, &y4).unwrap()))
    });
}

fn bench_input_grad(c: &mut Criterion) {
    let (mut model, x, y) = setup();
    c.bench_function("attack/loss_input_grad_16x28x28", |b| {
        b.iter(|| black_box(advcomp_attacks::loss_input_grad(&mut model, &x, &y).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_attacks, bench_input_grad
);
criterion_main!(benches);
