//! Ablation benchmark: matmul kernels (naive vs blocked vs threaded,
//! pooled vs spawn-per-call, dense vs sparse) — the design choices called
//! out in DESIGN.md. `scripts/bench_kernels.sh` runs the machine-readable
//! variant of the pooled-vs-spawned comparison (`kernel_bench`).

use advcomp_tensor::{Init, KernelBackend, MatmulKernel, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn mats(m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let init = Init::Uniform { lo: -1.0, hi: 1.0 };
    (
        init.tensor(&[m, k], &mut rng),
        init.tensor(&[k, n], &mut rng),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &size in &[32usize, 128, 256] {
        let (a, b) = mats(size, size, size);
        // The rejected reference kernels only exist under `bench-ablation`
        // (`cargo bench --features bench-ablation`).
        #[cfg(feature = "bench-ablation")]
        group.bench_with_input(BenchmarkId::new("naive", size), &size, |bch, _| {
            bch.iter(|| black_box(a.matmul_naive(&b).unwrap()))
        });
        #[cfg(feature = "bench-ablation")]
        group.bench_with_input(BenchmarkId::new("blocked_serial", size), &size, |bch, _| {
            bch.iter(|| black_box(a.matmul_blocked_serial(&b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("auto", size), &size, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        // Scalar-vs-SIMD on the identical packed/banded dense path.
        for be in [KernelBackend::Scalar, KernelBackend::Simd] {
            group.bench_with_input(
                BenchmarkId::new(format!("dense_{}", be.name()), size),
                &size,
                |bch, _| {
                    bch.iter(|| black_box(a.matmul_with(&b, MatmulKernel::Dense, be).unwrap()))
                },
            );
        }
    }
    group.finish();
}

fn bench_pool_vs_spawn(c: &mut Criterion) {
    // The tentpole ablation: identical dense compute kernel, identical row
    // banding — only the thread provisioning differs. The pooled path feeds
    // persistent workers; the spawn path creates fresh OS threads per call,
    // which was the behaviour before the worker pool landed.
    let mut group = c.benchmark_group("matmul_pool_vs_spawn");
    let (a, b) = mats(128, 128, 128);
    group.bench_function("pooled_128", |bch| {
        bch.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    #[cfg(feature = "bench-ablation")]
    group.bench_function("spawn_per_call_128", |bch| {
        bch.iter(|| black_box(a.matmul_spawn_per_call(&b).unwrap()))
    });
    group.finish();
}

fn sparsify(a: &Tensor, density: f32) -> Tensor {
    let mut sparse = a.clone();
    let n = sparse.len();
    for i in 0..n {
        if (i as f32 / n as f32) >= density {
            sparse.data_mut()[i] = 0.0;
        }
    }
    sparse
}

fn bench_sparse_matmul(c: &mut Criterion) {
    // Dense packed kernel vs zero-skipping sparse kernel across the density
    // range pruning produces; the probe in `matmul` picks between them.
    let mut group = c.benchmark_group("matmul_sparse");
    let (a, b) = mats(128, 128, 128);
    for &density in &[1.0f32, 0.5, 0.1] {
        let sparse = sparsify(&a, density);
        group.bench_with_input(
            BenchmarkId::new("dense_kernel", format!("d{density}")),
            &density,
            |bch, _| {
                bch.iter(|| black_box(sparse.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sparse_kernel", format!("d{density}")),
            &density,
            |bch, _| {
                bch.iter(|| black_box(sparse.matmul_with_kernel(&b, MatmulKernel::Sparse).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[256 * 256], &mut rng);
    let y = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[256 * 256], &mut rng);
    c.bench_function("elementwise/add_64k", |b| {
        b.iter(|| black_box(x.add(&y).unwrap()))
    });
    c.bench_function("elementwise/sign_64k", |b| b.iter(|| black_box(x.sign())));
    c.bench_function("elementwise/clamp_64k", |b| {
        b.iter(|| black_box(x.clamp(0.0, 1.0)))
    });
    c.bench_function("reduce/l2_norm_64k", |b| b.iter(|| black_box(x.l2_norm())));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_pool_vs_spawn, bench_sparse_matmul, bench_elementwise
);
criterion_main!(benches);
