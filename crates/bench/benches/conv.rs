//! Ablation benchmark: im2col-GEMM convolution versus a direct
//! nested-loop convolution, plus forward/backward costs of the reference
//! models' first layers.

use advcomp_nn::{Conv2d, Layer, Mode};
use advcomp_tensor::{im2col, Conv2dGeometry, Init, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

/// Textbook direct convolution (no lowering), the ablation reference.
fn direct_conv(input: &Tensor, weight: &Tensor, stride: usize, padding: usize) -> Tensor {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oc, _ic, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (w + 2 * padding - kw) / stride + 1;
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let od = out.data_mut();
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.data()
                                    [((b * c + ch) * h + iy as usize) * w + ix as usize]
                                    * weight.data()[((o * c + ch) * kh + ky) * kw + kx];
                            }
                        }
                    }
                    od[((b * oc + o) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

fn bench_conv_strategies(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let init = Init::Uniform { lo: -0.5, hi: 0.5 };
    let mut group = c.benchmark_group("conv_3x3_16ch_16x16");
    for &batch in &[1usize, 8] {
        let x = init.tensor(&[batch, 16, 16, 16], &mut rng);
        let w = init.tensor(&[16, 16, 3, 3], &mut rng);
        group.bench_with_input(BenchmarkId::new("direct", batch), &batch, |bch, _| {
            bch.iter(|| black_box(direct_conv(&x, &w, 1, 1)))
        });
        group.bench_with_input(BenchmarkId::new("im2col_gemm", batch), &batch, |bch, _| {
            bch.iter(|| {
                let mut conv =
                    Conv2d::new(16, 16, 3, 1, 1, &mut rand::rngs::StdRng::seed_from_u64(0));
                conv.params_mut()[0].value = w.clone();
                black_box(conv.forward(&x, Mode::Eval).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[8, 3, 32, 32], &mut rng);
    let geom = Conv2dGeometry::square(3, 32, 3, 1, 1);
    c.bench_function("im2col/8x3x32x32_k3", |b| {
        b.iter(|| black_box(im2col(&x, &geom).unwrap()))
    });
}

fn bench_layer_fwd_bwd(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut conv = Conv2d::new(3, 32, 3, 1, 1, &mut rng);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[8, 3, 32, 32], &mut rng);
    c.bench_function("conv2d/forward_8x3x32x32", |b| {
        b.iter(|| black_box(conv.forward(&x, Mode::Train).unwrap()))
    });
    let y = conv.forward(&x, Mode::Train).unwrap();
    let g = Tensor::ones(y.shape());
    c.bench_function("conv2d/backward_8x3x32x32", |b| {
        b.iter(|| black_box(conv.backward(&g).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conv_strategies, bench_im2col, bench_layer_fwd_bwd
);
criterion_main!(benches);
