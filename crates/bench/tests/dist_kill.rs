//! Worker-kill recovery: SIGKILLs a real worker *process* mid-point and
//! proves the coordinator recovers — the lease is released, the point
//! re-dispatched to a fresh worker, the journal stays exactly-once, and the
//! final curves are bit-identical to a single-process run.
//!
//! This is the process-granularity complement to the in-process fault
//! tests in `advcomp-testkit` (`tests/dist_resilience.rs`): nothing of the
//! victim survives — no `Drop`, no unwinding, no flushed buffers — so the
//! only recovery signal is the kernel closing its socket.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_core::dist::{Coordinator, DistRunConfig};
use advcomp_core::resilience::RetryPolicy;
use advcomp_core::sweep::{RunConfig, TransferMatrix};
use advcomp_core::ExperimentScale;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spawn_worker(addr: &str, id: &str, slow_ms: u64) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dist_sweep"))
        .args([
            "worker",
            "--addr",
            addr,
            "--id",
            id,
            "--scale",
            "tiny",
            "--net",
            "lenet5",
            "--attacks",
            "ifgsm",
            "--densities",
            "1.0,0.3",
            "--slow-ms",
            &slow_ms.to_string(),
            "--heartbeat-ms",
            "100",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dist_sweep worker")
}

#[test]
fn sigkilled_worker_costs_only_its_lease() {
    // Stock tiny scale: the point keys hash the full scale, so the in-test
    // coordinator must prepare with exactly what `--scale tiny` gives the
    // spawned worker processes.
    let scale = ExperimentScale::tiny();
    let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.3]);

    let reference = matrix
        .run_resilient(
            &scale,
            &RunConfig {
                seed: 7,
                run_dir: None,
                retry: RetryPolicy::sweep_default(),
            },
        )
        .unwrap();

    let run_dir = std::env::temp_dir().join(format!("advcomp-dist-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);
    let mut cfg = DistRunConfig::new(run_dir.clone());
    // Long solo grace: the coordinator must wait for the replacement
    // worker, not absorb the kill by computing the sweep itself.
    cfg.dist.solo_grace_ms = 60_000;
    cfg.dist.lease_ms = 1000;

    let prepared = Arc::new(matrix.prepare(&scale, cfg.seed).unwrap());
    let coordinator = Coordinator::bind(&cfg.listen, Arc::clone(&prepared), &cfg).unwrap();
    let addr = coordinator.addr().to_string();
    let handle = coordinator.handle();
    let coord = std::thread::spawn(move || coordinator.run());

    // The victim stalls each point for 30 s — far beyond the test horizon —
    // so it is guaranteed to die holding its lease, mid-compute.
    let mut victim = spawn_worker(&addr, "victim", 30_000);
    let deadline = Instant::now() + Duration::from_secs(120);
    while handle.report().leases_granted == 0 {
        assert!(
            Instant::now() < deadline,
            "victim never got a lease: {:?}",
            handle.report()
        );
        assert!(
            victim.try_wait().expect("try_wait").is_none(),
            "victim exited before being killed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // The replacement finishes the sweep, including the victim's point.
    let mut replacement = spawn_worker(&addr, "replacement", 0);
    let outcome = coord.join().expect("coordinator thread").unwrap();
    let _ = replacement.wait();

    let report = &outcome.report;
    assert!(report.workers_lost >= 1, "{report:?}");
    assert!(
        report.redispatches >= 1,
        "the victim's point must be re-dispatched: {report:?}"
    );
    assert_eq!(report.computed_remote, 2, "{report:?}");
    assert_eq!(report.divergent, 0, "{report:?}");
    assert_eq!(outcome.run.computed, 2);
    assert!(outcome.run.failed.is_empty(), "{:?}", outcome.run.failed);

    // Exactly-once journal, bit-identical curves.
    let journal_files = std::fs::read_dir(run_dir.join("points"))
        .unwrap()
        .filter_map(Result::ok)
        .count();
    assert_eq!(journal_files, 2);
    assert_eq!(
        serde_json::to_string(&outcome.run.results).unwrap(),
        serde_json::to_string(&reference.results).unwrap(),
        "recovered distributed curves must be byte-equal to the single-process run"
    );
    let _ = std::fs::remove_dir_all(&run_dir);
}
