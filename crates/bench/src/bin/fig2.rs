//! Regenerates **Figure 2**: transferability properties for pruning.
//!
//! For LeNet5 and CifarNet, sweeps DNS-pruned weight density and reports —
//! per attack (IFGSM, IFGM, DeepFool at Table 1 parameters) — the clean
//! accuracy of the pruned model plus adversarial accuracy under all three
//! attack scenarios. Pass `--one-shot` to run the one-shot-pruning
//! ablation instead of DNS.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_bench::{banner, density_grid, run_matrix, ExhibitOptions, RunSummary};
use advcomp_core::plot::{ascii_chart, Series};
use advcomp_core::report::{pct, Table};
use advcomp_core::sweep::TransferMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    let one_shot = opts.has_flag("--one-shot");
    let method = if one_shot { "one-shot" } else { "DNS" };
    banner(
        "Figure 2",
        &format!("Transferability under {method} pruning"),
        &opts,
    );

    let densities = density_grid();
    let mut csv = Table::new(
        format!("Figure 2 ({method} pruning)"),
        &[
            "net",
            "attack",
            "density",
            "compression",
            "base_acc",
            "comp_to_comp",
            "full_to_comp",
            "comp_to_full",
        ],
    );

    let name = if one_shot { "fig2_oneshot" } else { "fig2" };
    let mut summary = RunSummary::new(name, &opts);
    let nets: Vec<NetKind> = if opts.has_flag("--lenet5-only") {
        vec![NetKind::LeNet5]
    } else if opts.has_flag("--cifarnet-only") {
        vec![NetKind::CifarNet]
    } else {
        vec![NetKind::LeNet5, NetKind::CifarNet]
    };
    for net in nets {
        let matrix = if one_shot {
            TransferMatrix::pruning_one_shot(net, AttackKind::ALL.to_vec(), &densities)
        } else {
            TransferMatrix::pruning(net, AttackKind::ALL.to_vec(), &densities)
        };
        let started = std::time::Instant::now();
        let run = run_matrix(&matrix, &opts)?;
        summary.absorb(&run);
        let results = run.results;
        println!(
            "{}: baseline accuracy {}% (final training loss {:.4}) [{:.0}s]\n",
            net.id(),
            pct(results[0].baseline_accuracy),
            results[0].baseline_loss,
            started.elapsed().as_secs_f64(),
        );
        for result in &results {
            let mut table = Table::new(
                format!("{} / {} — accuracy vs density", net.id(), result.attack),
                &[
                    "density",
                    "base_acc%",
                    "comp→comp%",
                    "full→comp%",
                    "comp→full%",
                ],
            );
            for p in &result.points {
                table.push_row(vec![
                    format!("{:.2}", p.x),
                    pct(p.base_accuracy),
                    pct(p.comp_to_comp),
                    pct(p.full_to_comp),
                    pct(p.comp_to_full),
                ]);
                csv.push_row(vec![
                    result.net.clone(),
                    result.attack.clone(),
                    format!("{}", p.x),
                    p.compression.clone(),
                    format!("{}", p.base_accuracy),
                    format!("{}", p.comp_to_comp),
                    format!("{}", p.full_to_comp),
                    format!("{}", p.comp_to_full),
                ]);
            }
            print!("{}", table.to_markdown());
            println!();
            // Render the same panel as the paper draws it: accuracy vs
            // sweep coordinate, one glyph per line.
            let series = vec![
                Series::new(
                    "base acc",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.base_accuracy))
                        .collect(),
                ),
                Series::new(
                    "comp->comp (S1)",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.comp_to_comp))
                        .collect(),
                ),
                Series::new(
                    "full->comp (S2)",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.full_to_comp))
                        .collect(),
                ),
                Series::new(
                    "comp->full (S3)",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.comp_to_full))
                        .collect(),
                ),
            ];
            println!(
                "{}",
                ascii_chart(
                    &format!("{} / {} (y: accuracy, x: density)", net.id(), result.attack),
                    &series,
                    60,
                    14,
                )
            );
        }
    }

    csv.write_csv(&opts.csv_path(name))?;
    println!("wrote {}", opts.csv_path(name).display());
    let summary_path = summary.write(&opts)?;
    println!(
        "wrote {} (resumed: {}, computed: {}, failed: {})",
        summary_path.display(),
        summary.resumed,
        summary.computed,
        summary.failed.len()
    );
    Ok(())
}
