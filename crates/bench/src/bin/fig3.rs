//! Regenerates **Figure 3**: LeNet5 accuracy under IFGSM- and
//! IFGM-generated adversarial samples across ε values and iteration counts
//! (white-box, uncompressed model).

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_bench::{banner, ExhibitOptions};
use advcomp_core::report::{pct, Table};
use advcomp_core::sweep::epsilon_grid;
use advcomp_core::{TaskSetup, TrainedModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner(
        "Figure 3",
        "LeNet5 accuracy vs attack ε and iterations",
        &opts,
    );

    let setup = TaskSetup::new(NetKind::LeNet5, &opts.scale);
    let trained = TrainedModel::train(&setup, &opts.scale, 7)?;
    println!(
        "lenet5 baseline accuracy: {}%\n",
        pct(trained.test_accuracy)
    );

    let iterations = vec![1usize, 2, 4, 8, 12, 16];
    // IFGSM perturbs by ε·sign(g): the interesting range is small ε.
    // IFGM scales the raw (tiny) gradient, so it needs much larger ε —
    // exactly why Table 1 uses ε=10 for LeNet5 IFGM.
    let grids = [
        (
            AttackKind::Ifgsm,
            vec![0.005f32, 0.01, 0.02, 0.05, 0.1, 0.2],
        ),
        (AttackKind::Ifgm, vec![0.5f32, 1.0, 2.0, 5.0, 10.0, 20.0]),
    ];

    let mut csv = Table::new(
        "Figure 3 (LeNet5 epsilon/iteration grid)",
        &["attack", "epsilon", "iterations", "adversarial_accuracy"],
    );
    for (attack, epsilons) in grids {
        let points = epsilon_grid(
            &trained,
            &setup,
            attack,
            &epsilons,
            &iterations,
            &opts.scale,
        )?;
        let mut table = Table::new(
            format!(
                "{} — adversarial accuracy % (rows: ε, cols: iterations)",
                attack.id()
            ),
            &std::iter::once("eps \\ iters".to_string())
                .chain(iterations.iter().map(|i| i.to_string()))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        );
        for &eps in &epsilons {
            let mut row = vec![format!("{eps}")];
            for &it in &iterations {
                let p = points
                    .iter()
                    .find(|p| p.epsilon == eps && p.iterations == it)
                    .expect("grid point computed");
                row.push(pct(p.adversarial_accuracy));
                csv.push_row(vec![
                    attack.id().into(),
                    format!("{eps}"),
                    it.to_string(),
                    format!("{}", p.adversarial_accuracy),
                ]);
            }
            table.push_row(row);
        }
        print!("{}", table.to_markdown());
        println!();
    }

    csv.write_csv(&opts.csv_path("fig3"))?;
    println!("wrote {}", opts.csv_path("fig3").display());
    Ok(())
}
