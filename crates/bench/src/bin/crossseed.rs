//! Regenerates the §3.3 cross-seed transferability check: DeepFool samples
//! crafted on one model applied to an independently-initialised model of
//! the same architecture trained on the same data.
//!
//! The paper reports that only ≈7% of LeNet5 DeepFool samples transfer
//! across seeds, versus ≈60% for CifarNet — motivating its choice of
//! "least transferable" attacks as a lower bound.

use advcomp_attacks::{AttackKind, NetKind, PaperParams};
use advcomp_bench::{banner, ExhibitOptions};
use advcomp_core::report::{pct, Table};
use advcomp_core::scenario::cross_seed_transfer;
use advcomp_core::{TaskSetup, TrainedModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner("§3.3", "DeepFool cross-seed transferability", &opts);

    let mut table = Table::new(
        "Cross-seed DeepFool transfer (paper: LeNet5 ≈ 7%, CifarNet ≈ 60%)",
        &[
            "net",
            "acc_seed_a",
            "acc_seed_b",
            "fool_rate_on_source",
            "transfer_rate",
        ],
    );
    for net in [NetKind::LeNet5, NetKind::CifarNet] {
        let setup = TaskSetup::new(net, &opts.scale);
        let a = TrainedModel::train(&setup, &opts.scale, 11)?;
        let b = TrainedModel::train(&setup, &opts.scale, 22)?;
        let mut ma = a.instantiate()?;
        let mut mb = b.instantiate()?;
        let n = opts.scale.deepfool_eval.min(setup.test.len());
        let (x, y) = setup.test.slice(0, n)?;
        let attack = PaperParams::build(net, AttackKind::DeepFool);
        let result = cross_seed_transfer(&mut ma, &mut mb, attack.as_ref(), &x, &y)?;
        table.push_row(vec![
            net.id().into(),
            pct(a.test_accuracy),
            pct(b.test_accuracy),
            pct(result.source_fool_rate),
            pct(result.transfer_rate),
        ]);
    }
    print!("{}", table.to_markdown());
    table.write_csv(&opts.csv_path("crossseed"))?;
    println!("\nwrote {}", opts.csv_path("crossseed").display());
    Ok(())
}
