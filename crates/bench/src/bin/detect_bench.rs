//! Machine-readable detection-subsystem benchmark.
//!
//! Exercises the whole calibrated-detection pipeline on the deterministic
//! stub-RNG task (seeded synthetic digits, LeNet-5 baseline) and writes
//! `BENCH_detect.json`:
//!
//! * the **attack × compression grid** from
//!   [`advcomp_detect::run_detection_grid`] — detector AUC, detection rate
//!   at the calibrated threshold, and attack success per
//!   `(surrogate, attack)` cell, plus the UAP transfer matrix;
//! * the **gate fixture** — disagreement-detector AUC separating clean
//!   traffic from *successful* small-step IFGSM perturbations (the
//!   boundary-local regime the ensemble guard is built for);
//! * the **online story** — flag rates for clean vs offline-crafted UAP
//!   traffic through a live guarded engine at the calibrated threshold;
//! * **guard overhead** — µs/request of the ensemble guard, measured as
//!   the difference between guard-on and guard-off single-request
//!   latency through the engine.
//!
//! Run via `scripts/bench_detect.sh`, or directly:
//!
//! ```text
//! cargo run --release -p advcomp-bench --bin detect_bench -- \
//!     [--out FILE] [--iters N] [--check-detect]
//! ```
//!
//! `--check-detect` exits non-zero when the gate fixture's AUC drops below
//! 0.9 or when the offline-crafted UAP is no longer flagged online above
//! the clean false-positive rate — the regression gate `scripts/check.sh`
//! relies on, mirroring the other `--check-*` benches.

use advcomp_attacks::{craft_uap, Attack, Ifgsm, NetKind, UapConfig};
use advcomp_compress::Quantizer;
use advcomp_core::advtrain::{adversarial_finetune, AdvTrainConfig};
use advcomp_core::{Compression, ExperimentScale, TaskSetup, TrainedModel};
use advcomp_detect::{
    detector_by_name, run_detection_grid, DetectionGridConfig, DetectorCalibration, RocCurve,
    VariantEnsemble,
};
use advcomp_nn::{Mode, Sequential};
use advcomp_serve::{Engine, GuardConfig, ModelRegistry, ServeConfig};
use advcomp_tensor::Tensor;
use serde::Serialize;
use std::time::{Duration, Instant};

/// The AUC floor `--check-detect` enforces on the gate fixture.
const GATE_AUC: f64 = 0.9;
/// The online UAP flag-rate floor `--check-detect` enforces.
const GATE_UAP_FLAG_RATE: f64 = 0.15;
/// Seed of the benchmark task (training, compression, crafting).
const SEED: u64 = 42;

#[derive(Serialize)]
struct FixtureReport {
    detector: String,
    attack: String,
    epsilon: f32,
    steps: usize,
    /// Clean negatives: test samples the baseline classifies correctly.
    clean_n: usize,
    /// Adversarial positives: correctly-classified samples the attack
    /// actually flips on the surrogate (unsuccessful perturbations carry
    /// no boundary-crossing signal to detect).
    adv_n: usize,
    auc: f64,
    gate_auc: f64,
}

#[derive(Serialize)]
struct CalibrationReport {
    detector: String,
    threshold: f64,
    target_fpr: f64,
    observed_fpr: f64,
    observed_tpr: f64,
    auc: f64,
}

#[derive(Serialize)]
struct GridCellReport {
    surrogate: String,
    attack: String,
    auc: f64,
    detection_rate: f64,
    attack_success: f64,
}

#[derive(Serialize)]
struct GridReport {
    members: Vec<String>,
    clean_accuracy: Vec<f64>,
    calibration: CalibrationReport,
    cells: Vec<GridCellReport>,
    /// `uap_transfer[i][j]` = fool rate on member *j* of the UAP crafted
    /// on member *i*.
    uap_transfer: Vec<Vec<f64>>,
}

#[derive(Serialize)]
struct OnlineReport {
    uap_epsilon: f32,
    uap_fool_rate: f64,
    clean_flag_rate: f64,
    uap_flag_rate: f64,
    requests_per_side: usize,
}

#[derive(Serialize)]
struct OverheadReport {
    iters: usize,
    guard_off_us: f64,
    guard_on_us: f64,
    overhead_us: f64,
    ensemble_size: usize,
}

#[derive(Serialize)]
struct DetectReport {
    scale: String,
    seed: u64,
    fixture: FixtureReport,
    calibration: CalibrationReport,
    grid: GridReport,
    online: OnlineReport,
    guard_overhead: OverheadReport,
}

fn calibration_report(cal: &DetectorCalibration) -> CalibrationReport {
    CalibrationReport {
        detector: cal.detector.clone(),
        threshold: cal.threshold,
        target_fpr: cal.target_fpr,
        observed_fpr: cal.observed_fpr,
        observed_tpr: cal.observed_tpr,
        auc: cal.auc,
    }
}

/// The deployed ensemble the serve layer would run: dense baseline plus
/// the compression levels whose decision boundaries move the most, plus
/// an adversarially fine-tuned member.
struct Fixture {
    setup: TaskSetup,
    dense: Sequential,
    variants: Vec<(&'static str, Sequential)>,
}

fn build_fixture(scale: &ExperimentScale) -> Fixture {
    let setup = TaskSetup::new(NetKind::LeNet5, scale);
    let trained = TrainedModel::train(&setup, scale, SEED).expect("baseline training");
    let dense = trained.instantiate().expect("instantiate baseline");

    let mut quant4 = dense.clone();
    Quantizer::for_bitwidth(4)
        .unwrap()
        .quantize_frozen(&mut quant4)
        .expect("q4 freeze");
    let mut pruned = dense.clone();
    Compression::OneShotPrune { density: 0.5 }
        .apply(&mut pruned, &setup.train, &setup.finetune_config(scale))
        .expect("one-shot prune");
    let mut hardened = dense.clone();
    let attack = Ifgsm::new(0.05, 1).expect("attack config");
    let adv_cfg = AdvTrainConfig {
        epochs: 2,
        seed: SEED,
        ..AdvTrainConfig::default()
    };
    adversarial_finetune(&mut hardened, &setup.train, &attack, &adv_cfg)
        .expect("adversarial fine-tune");

    Fixture {
        setup,
        dense,
        variants: vec![
            ("quant4", quant4),
            ("pruned", pruned),
            ("hardened", hardened),
        ],
    }
}

fn ensemble_of(fixture: &Fixture) -> VariantEnsemble {
    let shape = fixture.setup.test.sample_shape();
    let mut e = VariantEnsemble::new("dense", fixture.dense.clone(), shape);
    for (name, model) in &fixture.variants {
        e.push_variant(*name, model.clone());
    }
    e
}

/// Gate fixture: clean vs *successful* small-step IFGSM. Small steps keep
/// the perturbed inputs just past the baseline's boundary — the regime
/// where the compressed variants' shifted boundaries disagree — and the
/// success filter drops perturbations that never crossed it (nothing to
/// detect). Clean negatives are the correctly-classified samples, so the
/// baseline's own boundary-hugging mistakes don't pollute the negatives.
fn gate_fixture(
    fixture: &Fixture,
    ensemble: &mut VariantEnsemble,
) -> (FixtureReport, DetectorCalibration) {
    let (epsilon, steps) = (0.005f32, 8usize);
    let n = fixture.setup.test.len();
    let (x, y) = fixture.setup.test.slice(0, n).expect("test slice");
    let detector = detector_by_name("disagreement").expect("known detector");

    let mut surrogate = fixture.dense.clone();
    let adv = Ifgsm::new(epsilon, steps)
        .unwrap()
        .generate(&mut surrogate, &x, &y)
        .expect("ifgsm crafting");
    let clean_pred = surrogate
        .forward(&x, Mode::Eval)
        .expect("clean forward")
        .argmax_rows()
        .expect("clean predictions");
    let adv_pred = surrogate
        .forward(&adv, Mode::Eval)
        .expect("adversarial forward")
        .argmax_rows()
        .expect("adversarial predictions");

    let clean_all = ensemble.score(detector.as_ref(), &x).expect("clean scores");
    let adv_all = ensemble.score(detector.as_ref(), &adv).expect("adv scores");
    let clean: Vec<f64> = (0..n)
        .filter(|&i| clean_pred[i] == y[i])
        .map(|i| clean_all[i])
        .collect();
    let adv: Vec<f64> = (0..n)
        .filter(|&i| clean_pred[i] == y[i] && adv_pred[i] != y[i])
        .map(|i| adv_all[i])
        .collect();
    let auc = RocCurve::from_scores(&clean, &adv).expect("roc").auc();
    let cal =
        DetectorCalibration::calibrate("disagreement", &clean, &adv, 0.1).expect("calibration");

    println!(
        "gate fixture: ifgsm eps {epsilon} x{steps}  clean {} adv {}  auc {auc:.3}  \
         threshold {:.3} (fpr {:.3}, tpr {:.3})",
        clean.len(),
        adv.len(),
        cal.threshold,
        cal.observed_fpr,
        cal.observed_tpr
    );
    (
        FixtureReport {
            detector: "disagreement".into(),
            attack: "ifgsm".into(),
            epsilon,
            steps,
            clean_n: clean.len(),
            adv_n: adv.len(),
            auc,
            gate_auc: GATE_AUC,
        },
        cal,
    )
}

fn grid_report(scale: &ExperimentScale) -> GridReport {
    let cfg = DetectionGridConfig {
        net: NetKind::LeNet5,
        compressions: vec![
            Compression::OneShotPrune { density: 0.5 },
            Compression::Quant {
                bitwidth: 8,
                weights_only: false,
            },
            Compression::Quant {
                bitwidth: 4,
                weights_only: false,
            },
        ],
        detector: "disagreement".into(),
        epsilon: 0.05,
        steps: 6,
        uap_epochs: 4,
        target_fpr: 0.05,
        seed: SEED,
        craft_len: 64,
        eval_len: 64,
        include_hardened: true,
        ..DetectionGridConfig::default()
    };
    let grid = run_detection_grid(&cfg, scale).expect("detection grid");
    assert!(
        grid.failed.is_empty(),
        "grid cells failed: {:?}",
        grid.failed
    );
    for c in &grid.cells {
        println!(
            "grid {}/{}: auc {:.3}  detection {:.3}  attack success {:.3}",
            c.surrogate, c.attack, c.auc, c.detection_rate, c.attack_success
        );
    }
    GridReport {
        members: grid.members.clone(),
        clean_accuracy: grid.clean_accuracy.clone(),
        calibration: calibration_report(&grid.calibration),
        cells: grid
            .cells
            .iter()
            .map(|c| GridCellReport {
                surrogate: c.surrogate.clone(),
                attack: c.attack.into(),
                auc: c.auc,
                detection_rate: c.detection_rate,
                attack_success: c.attack_success,
            })
            .collect(),
        uap_transfer: grid.transfer,
    }
}

fn registry_of(fixture: &Fixture, cal: Option<&DetectorCalibration>) -> ModelRegistry {
    let mut registry =
        ModelRegistry::new(fixture.setup.test.sample_shape()).expect("registry shape");
    registry
        .set_baseline("dense", fixture.dense.clone())
        .expect("baseline registration");
    for (name, model) in &fixture.variants {
        registry
            .add_variant(*name, model.clone())
            .expect("variant registration");
    }
    if let Some(cal) = cal {
        registry.set_calibration(cal.clone()).expect("calibration");
    }
    registry
}

/// Online check: clean and offline-crafted-UAP traffic through a live
/// guarded engine, verdicts taken at the calibrated threshold.
fn online_report(fixture: &Fixture, cal: &DetectorCalibration) -> OnlineReport {
    let uap_epsilon = 0.2f32;
    let (x_craft, y_craft) = fixture.setup.train.slice(0, 64).expect("craft slice");
    let mut surrogate = fixture.dense.clone();
    let uap = craft_uap(
        &mut surrogate,
        &x_craft,
        &y_craft,
        &UapConfig {
            epsilon: uap_epsilon,
            step: uap_epsilon / 5.0,
            epochs: 4,
            batch: 16,
            seed: 7,
        },
    )
    .expect("uap crafting");

    let n = 48;
    let (x_eval, _) = fixture.setup.test.slice(0, n).expect("eval slice");
    let uap_fool_rate = uap
        .fool_rate(&mut fixture.dense.clone(), &x_eval)
        .expect("fool rate");
    let x_uap = uap.apply(&x_eval).expect("uap apply");

    let registry = registry_of(fixture, Some(cal));
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            guard: Some(GuardConfig::default()),
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    let deployment = engine.metrics().guard_deployment().expect("guard deployed");
    assert!(deployment.calibrated, "calibration artifact must deploy");

    let sample_len: usize = fixture.setup.test.sample_shape().iter().product();
    let flag_fraction = |images: &Tensor, tag: Option<&str>| -> f64 {
        let mut flagged = 0usize;
        for i in 0..n {
            let input = images.data()[i * sample_len..(i + 1) * sample_len].to_vec();
            let pred = engine
                .submit_tagged(input, false, tag.map(str::to_string))
                .expect("submit");
            flagged += usize::from(pred.flagged.expect("guard verdict"));
        }
        flagged as f64 / n as f64
    };
    let clean_flag_rate = flag_fraction(&x_eval, None);
    let uap_flag_rate = flag_fraction(&x_uap, Some("uap"));
    engine.shutdown();

    println!(
        "online: uap eps {uap_epsilon} fool rate {uap_fool_rate:.3}  \
         flag rate clean {clean_flag_rate:.3} vs uap {uap_flag_rate:.3}"
    );
    OnlineReport {
        uap_epsilon,
        uap_fool_rate,
        clean_flag_rate,
        uap_flag_rate,
        requests_per_side: n,
    }
}

/// Median single-request latency (µs) through the engine. `max_batch: 1`
/// dispatches every request immediately, so no batching delay pollutes
/// the measurement.
fn median_submit_us(fixture: &Fixture, guard: Option<GuardConfig>, iters: usize) -> f64 {
    let cal = guard.is_some().then(|| {
        // Any valid artifact works for timing: the cost is the variant
        // forwards, not the threshold compare.
        let clean: Vec<f64> = (0..32).map(|i| 0.01 * f64::from(i)).collect();
        let adv: Vec<f64> = (0..32).map(|i| 0.6 + 0.01 * f64::from(i)).collect();
        DetectorCalibration::calibrate("disagreement", &clean, &adv, 0.05).expect("calibration")
    });
    let registry = registry_of(fixture, cal.as_ref());
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            guard,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    let sample_len: usize = fixture.setup.test.sample_shape().iter().product();
    let (x, _) = fixture.setup.test.slice(0, 8).expect("warm slice");
    let inputs: Vec<Vec<f32>> = (0..8)
        .map(|i| x.data()[i * sample_len..(i + 1) * sample_len].to_vec())
        .collect();
    for input in &inputs {
        engine.submit(input.clone(), false).expect("warm submit");
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|i| {
            let input = inputs[i % inputs.len()].clone();
            let t0 = Instant::now();
            engine.submit(input, false).expect("timed submit");
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    engine.shutdown();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64 / 1000.0
}

fn overhead_report(fixture: &Fixture, iters: usize) -> OverheadReport {
    let guard_off_us = median_submit_us(fixture, None, iters);
    let guard_on_us = median_submit_us(fixture, Some(GuardConfig::default()), iters);
    println!(
        "guard overhead: off {guard_off_us:.1} us  on {guard_on_us:.1} us  \
         (+{:.1} us/request over {} ensemble members)",
        guard_on_us - guard_off_us,
        fixture.variants.len() + 1
    );
    OverheadReport {
        iters,
        guard_off_us,
        guard_on_us,
        overhead_us: guard_on_us - guard_off_us,
        ensemble_size: fixture.variants.len() + 1,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out_path = String::from("BENCH_detect.json");
    let mut iters = 200usize;
    let mut check_detect = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = args.next() {
                    out_path = v;
                }
            }
            "--iters" => {
                if let Some(v) = args.next() {
                    iters = v.parse()?;
                }
            }
            "--check-detect" => check_detect = true,
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }

    let scale = ExperimentScale::tiny();
    let fixture = build_fixture(&scale);
    let mut ensemble = ensemble_of(&fixture);
    let (fixture_report, cal) = gate_fixture(&fixture, &mut ensemble);
    let grid = grid_report(&scale);
    let online = online_report(&fixture, &cal);
    let guard_overhead = overhead_report(&fixture, iters);

    let report = DetectReport {
        scale: "tiny".into(),
        seed: SEED,
        fixture: fixture_report,
        calibration: calibration_report(&cal),
        grid,
        online,
        guard_overhead,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&report)?)?;
    println!("wrote {out_path}");

    if check_detect {
        if report.fixture.auc < GATE_AUC {
            return Err(format!(
                "--check-detect: gate-fixture AUC {:.3} below the {GATE_AUC} floor \
                 (ifgsm eps {} x{}, {} clean vs {} successful-adversarial)",
                report.fixture.auc,
                report.fixture.epsilon,
                report.fixture.steps,
                report.fixture.clean_n,
                report.fixture.adv_n
            )
            .into());
        }
        if report.online.uap_flag_rate <= report.online.clean_flag_rate {
            return Err(format!(
                "--check-detect: guard is blind to the offline-crafted UAP online: \
                 clean flag rate {:.3} vs uap {:.3}",
                report.online.clean_flag_rate, report.online.uap_flag_rate
            )
            .into());
        }
        if report.online.uap_flag_rate < GATE_UAP_FLAG_RATE {
            return Err(format!(
                "--check-detect: online UAP flag rate {:.3} below the {GATE_UAP_FLAG_RATE} \
                 floor at the calibrated threshold {:.3}",
                report.online.uap_flag_rate, report.calibration.threshold
            )
            .into());
        }
    }
    Ok(())
}
