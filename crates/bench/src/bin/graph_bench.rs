//! Machine-readable graph-compiler ablation.
//!
//! Times the compiled [`ExecPlan`] forward against the layer-at-a-time
//! `Sequential` forward for both paper nets at f32, q8-frozen and
//! q4-frozen, and records what the compiler bought: fusion counts, plan
//! compile time, steady-state allocation events, and the static arena's
//! peak versus the sum of per-layer intermediates it replaced. Writes
//! `BENCH_graph.json`.
//!
//! Run via `scripts/bench_graph.sh`, or directly:
//!
//! ```text
//! cargo run --release -p advcomp-bench --bin graph_bench -- \
//!     [--out FILE] [--iters N] [--check-graph]
//! ```
//!
//! `--check-graph` exits non-zero when AVX2 is available but the compiled
//! q8-frozen LeNet-5 forward is not at least 1.3× faster than the unfused
//! layer path, or when the steady-state forward performed any heap
//! allocation — the regression gate `scripts/check.sh` relies on,
//! mirroring `kernel_bench --check-simd` and `quant_bench --check-quant`.

use advcomp_compress::Quantizer;
use advcomp_graph::ExecPlan;
use advcomp_models::{cifarnet, lenet5};
use advcomp_nn::{Mode, Sequential};
use advcomp_tensor::{pool, simd, Init, Tensor};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The gate `--check-graph` enforces on compiled q8 LeNet-5.
const GATE_SPEEDUP: f64 = 1.3;

#[derive(Serialize)]
struct FusionCounts {
    elided_quantize: usize,
    fused_conv_bn: usize,
    fused_conv_act: usize,
    fused_dense_act: usize,
    int8_chain_links: usize,
}

#[derive(Serialize)]
struct ModelRow {
    model: String,
    format: String,
    batch: usize,
    unfused_ns: u64,
    compiled_ns: u64,
    speedup: f64,
    compile_us: u64,
    steps: usize,
    /// Arena peak, per sample, in f32 elements.
    arena_elems_per_sample: usize,
    /// What separate per-layer allocations would hold (sum of all
    /// intermediate buffer sizes), per sample, in f32 elements.
    sum_intermediates_elems: usize,
    /// `sum_intermediates / arena` — how much the liveness planner folded.
    arena_saving: f64,
    /// Heap allocations observed during the timed (steady-state) forwards;
    /// must be 0.
    alloc_events_steady: u64,
    fusion: FusionCounts,
}

#[derive(Serialize)]
struct GraphReport {
    simd_available: bool,
    threads: usize,
    gate_speedup: f64,
    models: Vec<ModelRow>,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..iters.div_ceil(10).max(3) {
        f();
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn freeze(model: &mut Sequential, bits: u32) {
    Quantizer::for_bitwidth(bits)
        .unwrap()
        .quantize_frozen(model)
        .expect("paper nets freeze at <= 8 bits");
}

fn bench_model(
    name: &str,
    format: &str,
    mut model: Sequential,
    sample_shape: &[usize],
    batch: usize,
    iters: usize,
    rng: &mut rand::rngs::StdRng,
) -> ModelRow {
    let mut shape = vec![batch];
    shape.extend_from_slice(sample_shape);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&shape, rng);

    let unfused_ns = median_ns(iters, || {
        black_box(model.forward(&x, Mode::Eval).unwrap());
    });

    let mut plan = ExecPlan::compile(&model, sample_shape).expect("paper nets compile");
    plan.reserve_batch(batch);
    // Warm once so the timed region is pure steady state, then count any
    // allocation the timed forwards perform (there must be none).
    let mut out = Tensor::zeros(&[0]);
    plan.forward_into(&x, &mut out).unwrap();
    let allocs_before = plan.alloc_events();
    let compiled_ns = median_ns(iters, || {
        plan.forward_into(&x, &mut out).unwrap();
        black_box(out.data());
    });
    let alloc_events_steady = plan.alloc_events() - allocs_before;

    let stats = plan.stats();
    let row = ModelRow {
        model: name.into(),
        format: format.into(),
        batch,
        unfused_ns,
        compiled_ns,
        speedup: unfused_ns as f64 / compiled_ns.max(1) as f64,
        compile_us: plan.compile_us(),
        steps: plan.step_count(),
        arena_elems_per_sample: plan.arena_elems_per_sample(),
        sum_intermediates_elems: plan.unplanned_elems_per_sample(),
        arena_saving: plan.unplanned_elems_per_sample() as f64
            / plan.arena_elems_per_sample().max(1) as f64,
        alloc_events_steady,
        fusion: FusionCounts {
            elided_quantize: stats.elided_quantize,
            fused_conv_bn: stats.fused_conv_bn,
            fused_conv_act: stats.fused_conv_act,
            fused_dense_act: stats.fused_dense_act,
            int8_chain_links: stats.int8_chain_links,
        },
    };
    println!(
        "{name}_{format}_b{batch}: unfused {unfused_ns} ns  compiled {compiled_ns} ns \
         ({:.2}x)  arena {} vs {} elems/sample ({:.2}x)  allocs {}",
        row.speedup,
        row.arena_elems_per_sample,
        row.sum_intermediates_elems,
        row.arena_saving,
        row.alloc_events_steady
    );
    row
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out_path = String::from("BENCH_graph.json");
    let mut iters = 60usize;
    let mut check_graph = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = args.next() {
                    out_path = v;
                }
            }
            "--iters" => {
                if let Some(v) = args.next() {
                    iters = v.parse()?;
                }
            }
            "--check-graph" => check_graph = true,
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }

    const BATCH: usize = 8;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
    let mut models = Vec::new();
    // CifarNet runs at half width so the full grid stays in bench budget;
    // the overhead structure the compiler removes is width-independent.
    type Builder = fn(u64) -> Sequential;
    let builders: [(&str, &[usize], Builder); 2] = [
        ("lenet5", &[1, 28, 28], |seed| lenet5(1.0, seed)),
        ("cifarnet", &[3, 32, 32], |seed| cifarnet(0.5, seed)),
    ];
    for (name, sample_shape, build) in builders {
        for (format, bits) in [("f32", None), ("q8", Some(8)), ("q4", Some(4))] {
            let mut model = build(17);
            if let Some(bits) = bits {
                freeze(&mut model, bits);
            }
            models.push(bench_model(
                name,
                format,
                model,
                sample_shape,
                BATCH,
                iters,
                &mut rng,
            ));
        }
    }

    let report = GraphReport {
        simd_available: simd::simd_available(),
        threads: pool::available_threads(),
        gate_speedup: GATE_SPEEDUP,
        models,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&report)?)?;
    println!("wrote {out_path}");

    if check_graph {
        for row in &report.models {
            if row.alloc_events_steady != 0 {
                return Err(format!(
                    "--check-graph: {} {} steady-state forward performed {} heap \
                     allocations (must be 0)",
                    row.model, row.format, row.alloc_events_steady
                )
                .into());
            }
        }
        if report.simd_available {
            let gate = report
                .models
                .iter()
                .find(|r| r.model == "lenet5" && r.format == "q8")
                .expect("q8 lenet5 row");
            if gate.speedup < GATE_SPEEDUP {
                return Err(format!(
                    "--check-graph: AVX2 is available but compiled q8 LeNet-5 is only \
                     {:.2}x over the unfused path (gate {GATE_SPEEDUP}x): {} ns vs {} ns",
                    gate.speedup, gate.compiled_ns, gate.unfused_ns
                )
                .into());
            }
        }
    }
    Ok(())
}
