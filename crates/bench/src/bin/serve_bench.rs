//! `serve_bench` — load generator for the serving engine; writes
//! `BENCH_serve.json`.
//!
//! For each worker count (1, 4, 8 by default) it stands up a fresh engine
//! and TCP server on an ephemeral port, hammers it with concurrent client
//! threads over real sockets, and records client-observed p50/p99/mean
//! latency, throughput, and the server-side batch-size distribution. The
//! same measurement loop backs `scripts/bench_serve.sh`.
//!
//! ```text
//! serve_bench [--out BENCH_serve.json] [--requests 200] [--clients 8]
//!             [--workers 1,4,8] [--quick]
//! ```

use advcomp_models::mlp;
use advcomp_serve::json::{Json, JsonObj};
use advcomp_serve::{
    Client, Engine, GuardConfig, LatencyHistogram, ModelRegistry, ServeConfig, Server,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct RunResult {
    workers: usize,
    clients: usize,
    requests: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
    mean_us: f64,
    rps: f64,
    max_batch: u64,
    mean_batch: f64,
}

fn run_load(workers: usize, clients: usize, per_client: u64) -> RunResult {
    let mut registry = ModelRegistry::new(&[1, 28, 28]).expect("registry");
    registry
        .set_baseline("dense", mlp(32, 0))
        .expect("baseline");
    registry.add_variant("alt", mlp(32, 1)).expect("variant");
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers,
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            queue_depth: 256,
            guard: Some(GuardConfig { threshold: 0.5 }),
        },
    )
    .expect("engine");
    let server = Server::bind(engine.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let latency = Arc::new(LatencyHistogram::default());
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let wall = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let latency = Arc::clone(&latency);
        let ok = Arc::clone(&ok);
        let overloaded = Arc::clone(&overloaded);
        let errors = Arc::clone(&errors);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for i in 0..per_client {
                let v = ((c as u64 * per_client + i) % 97) as f32 / 97.0;
                let t0 = Instant::now();
                match client.predict(vec![v; 28 * 28], false) {
                    Ok(resp) => {
                        latency.record(t0.elapsed());
                        match resp.get("status").and_then(Json::as_str) {
                            Some("ok") => ok.fetch_add(1, Ordering::Relaxed),
                            Some("overloaded") => overloaded.fetch_add(1, Ordering::Relaxed),
                            _ => errors.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = wall.elapsed();
    let metrics = engine.metrics();
    let result = RunResult {
        workers,
        clients,
        requests: clients as u64 * per_client,
        ok: ok.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        p50_us: latency.quantile_us(0.50),
        p99_us: latency.quantile_us(0.99),
        mean_us: latency.mean_us(),
        rps: ok.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        max_batch: metrics.batch_sizes.max(),
        mean_batch: metrics.batch_sizes.mean(),
    };
    server.join();
    result
}

fn main() {
    let mut out_path = String::from("BENCH_serve.json");
    let mut per_client: u64 = 25;
    let mut clients: usize = 8;
    let mut worker_counts: Vec<usize> = vec![1, 4, 8];
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().expect("flag value");
        match flag.as_str() {
            "--out" => out_path = value(),
            "--requests" => per_client = value().parse().expect("--requests"),
            "--clients" => clients = value().parse().expect("--clients"),
            "--workers" => {
                worker_counts = value()
                    .split(',')
                    .map(|w| w.parse().expect("--workers"))
                    .collect()
            }
            "--quick" => {
                per_client = 8;
                clients = 4;
                worker_counts = vec![1, 4];
            }
            other => panic!("unknown flag {other}"),
        }
    }

    println!("serve_bench: {clients} clients x {per_client} requests at workers {worker_counts:?}");
    let mut runs = Vec::new();
    for &workers in &worker_counts {
        let r = run_load(workers, clients, per_client);
        println!(
            "  workers {:>2}: {:>7.1} req/s  p50 {:>6} us  p99 {:>6} us  \
             batch mean {:.2} max {}  ({} ok / {} overloaded / {} errors)",
            r.workers,
            r.rps,
            r.p50_us,
            r.p99_us,
            r.mean_batch,
            r.max_batch,
            r.ok,
            r.overloaded,
            r.errors
        );
        runs.push(
            JsonObj::new()
                .set("workers", Json::Num(r.workers as f64))
                .set("clients", Json::Num(r.clients as f64))
                .set("requests", Json::Num(r.requests as f64))
                .set("ok", Json::Num(r.ok as f64))
                .set("overloaded", Json::Num(r.overloaded as f64))
                .set("errors", Json::Num(r.errors as f64))
                .set("p50_us", Json::Num(r.p50_us as f64))
                .set("p99_us", Json::Num(r.p99_us as f64))
                .set("mean_us", Json::Num(r.mean_us))
                .set("rps", Json::Num(r.rps))
                .set("max_batch", Json::Num(r.max_batch as f64))
                .set("mean_batch", Json::Num(r.mean_batch))
                .build(),
        );
    }
    let report = JsonObj::new()
        .set("bench", Json::Str("serve".into()))
        .set(
            "config",
            JsonObj::new()
                .set("model", Json::Str("mlp:32 + 1 guard variant".into()))
                .set("max_batch", Json::Num(16.0))
                .set("max_delay_ms", Json::Num(2.0))
                .set("queue_depth", Json::Num(256.0))
                .build(),
        )
        .set("runs", Json::Arr(runs))
        .build();
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("serve_bench: wrote {out_path}");
}
