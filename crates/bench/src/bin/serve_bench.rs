//! `serve_bench` — open-loop saturation sweep for the serving stack;
//! writes `BENCH_serve.json` (schema `serve-open-loop-v2`).
//!
//! The old bench was closed-loop (clients sent request-after-response),
//! which self-throttles: the offered load sinks to whatever the server
//! sustains, every worker count "achieves" the same rps, and saturation
//! is unobservable. This bench fixes the arrival schedule instead
//! (`advcomp_serve::loadgen`): for each worker count it probes capacity,
//! sweeps a ladder of offered rates around it against a **fresh** server
//! per point, and reports the goodput-vs-offered curve, the saturation
//! knee (highest offered rate still served at ≥92% goodput), and
//! client + per-stage server percentiles (p50/p99/p999) at the knee.
//!
//! ```text
//! serve_bench [--out BENCH_serve.json] [--workers 1,4,8]
//!             [--duration-ms 1000] [--connections 8] [--quick]
//!             [--check-serve [BASELINE.json]]
//! ```
//!
//! `--check-serve` is the regression gate used by `scripts/check.sh`: it
//! re-measures the knee and fails if it regressed more than 40% below
//! the committed baseline. The 8-vs-1-worker scaling assertion (≥3×) is
//! hardware-gated: it only arms on hosts with ≥ 8 cores, mirroring how
//! `--check-simd` no-ops without AVX2 — on a small host the workers
//! time-slice one core and the ratio is physically unreachable. The
//! host's core count is recorded in the report either way.
//!
//! Caveat: models here are stub-RNG initialised (`mlp(32, seed)` with
//! the vendored deterministic RNG), so forward-pass cost is realistic
//! but the weights are not trained; the bench measures the serving
//! stack, not model quality.

use advcomp_models::mlp;
use advcomp_serve::json::{Json, JsonObj};
use advcomp_serve::loadgen::{self, find_knee, LoadPlan, GOODPUT_RATIO};
use advcomp_serve::{Engine, GuardConfig, ModelRegistry, ServeConfig, Server};
use std::time::Duration;

const SAMPLE: usize = 28 * 28;

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

fn start_server(workers: usize) -> (Server, Engine) {
    let mut registry = ModelRegistry::new(&[1, 28, 28]).expect("registry");
    registry
        .set_baseline("dense", mlp(32, 0))
        .expect("baseline");
    registry.add_variant("alt", mlp(32, 1)).expect("variant");
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers,
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            queue_depth: 256,
            guard: Some(GuardConfig { threshold: 0.5 }),
            ..ServeConfig::default()
        },
    )
    .expect("engine");
    let server = Server::bind(engine.clone(), "127.0.0.1:0").expect("bind");
    (server, engine)
}

struct Point {
    report: loadgen::LoadReport,
    server_metrics: Json,
}

/// One open-loop run against a fresh server, so per-point server-side
/// stage histograms are not polluted by earlier ladder rungs.
fn run_point(workers: usize, offered_rps: f64, duration: Duration, connections: usize) -> Point {
    let (server, engine) = start_server(workers);
    let addr = server.local_addr();
    let plan = LoadPlan {
        connections,
        drain_timeout: Duration::from_secs(5),
        ..LoadPlan::new(offered_rps, duration, vec![0.5; SAMPLE])
    };
    let report = loadgen::run(addr, &plan).expect("load run");
    let server_metrics = engine.metrics_snapshot();
    server.request_shutdown();
    server.join();
    Point {
        report,
        server_metrics,
    }
}

/// Estimates the server's capacity by overload: offer far more than any
/// plausible capacity and read off the achieved goodput, escalating if
/// the server somehow kept up.
fn probe_capacity(workers: usize, duration: Duration, connections: usize) -> f64 {
    let mut offered = 25_000.0;
    for _ in 0..3 {
        let p = run_point(workers, offered, duration, connections);
        let goodput = p.report.goodput_rps();
        if goodput < 0.8 * offered {
            return goodput.max(50.0);
        }
        offered *= 4.0; // kept up: push the ceiling higher
    }
    offered
}

fn point_json(p: &Point) -> Json {
    let r = &p.report;
    JsonObj::new()
        .set("offered_rps", Json::Num(r.offered_rps))
        .set("sent", Json::Num(r.sent as f64))
        .set("ok", Json::Num(r.ok as f64))
        .set("overloaded", Json::Num(r.overloaded as f64))
        .set("rate_limited", Json::Num(r.rate_limited as f64))
        .set("failed", Json::Num(r.failed as f64))
        .set("lost", Json::Num(r.lost as f64))
        .set("goodput_rps", Json::Num(r.goodput_rps()))
        .set("sent_rps", Json::Num(r.sent_rps()))
        .set(
            "client_latency",
            JsonObj::new()
                .set("p50_us", Json::Num(r.latency.quantile_us(0.50) as f64))
                .set("p99_us", Json::Num(r.latency.quantile_us(0.99) as f64))
                .set("p999_us", Json::Num(r.latency.quantile_us(0.999) as f64))
                .set("mean_us", Json::Num(r.latency.mean_us()))
                .build(),
        )
        .build()
}

/// Server-side per-stage percentiles pulled out of a metrics snapshot.
fn stage_json(metrics: &Json) -> Json {
    let mut obj = JsonObj::new();
    for stage in ["queue_wait", "batch_assembly", "forward", "total"] {
        let mut s = JsonObj::new();
        for q in ["p50_us", "p99_us", "p999_us"] {
            let v = metrics
                .get("latency")
                .and_then(|l| l.get(stage))
                .and_then(|h| h.get(q))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            s = s.set(q, Json::Num(v));
        }
        obj = obj.set(stage, s.build());
    }
    obj.build()
}

struct Sweep {
    workers: usize,
    points: Vec<Point>,
    knee: Option<usize>,
}

fn sweep_workers(workers: usize, duration: Duration, connections: usize, ladder: &[f64]) -> Sweep {
    let capacity = probe_capacity(
        workers,
        duration.min(Duration::from_millis(300)),
        connections,
    );
    println!("  workers {workers}: capacity probe ~{capacity:.0} rps");
    let mut points = Vec::new();
    for &frac in ladder {
        let offered = (capacity * frac).max(20.0);
        let p = run_point(workers, offered, duration, connections);
        println!(
            "    offered {:>8.0} rps -> goodput {:>8.1} rps  p99 {:>7} us  \
             (ok {} overloaded {} lost {})",
            offered,
            p.report.goodput_rps(),
            p.report.latency.quantile_us(0.99),
            p.report.ok,
            p.report.overloaded,
            p.report.lost
        );
        points.push(p);
    }
    let curve: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.report.offered_rps, p.report.goodput_rps()))
        .collect();
    let knee = find_knee(&curve);
    Sweep {
        workers,
        points,
        knee,
    }
}

fn sweep_json(s: &Sweep) -> Json {
    let mut obj = JsonObj::new()
        .set("workers", Json::Num(s.workers as f64))
        .set(
            "points",
            Json::Arr(s.points.iter().map(point_json).collect()),
        );
    if let Some(k) = s.knee {
        let p = &s.points[k];
        obj = obj.set(
            "knee",
            JsonObj::new()
                .set("offered_rps", Json::Num(p.report.offered_rps))
                .set("goodput_rps", Json::Num(p.report.goodput_rps()))
                .set(
                    "client_p99_us",
                    Json::Num(p.report.latency.quantile_us(0.99) as f64),
                )
                .set("server_stages", stage_json(&p.server_metrics))
                .build(),
        );
    }
    obj.build()
}

fn knee_goodput(s: &Sweep) -> f64 {
    s.knee
        .map(|k| s.points[k].report.goodput_rps())
        .unwrap_or(0.0)
}

/// Regression gate: re-measure the top worker count's knee and compare
/// with the committed baseline; scaling assertion only on >= 8 cores.
fn check_serve(baseline_path: &str, duration: Duration, connections: usize) -> i32 {
    let cores = host_cores();
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            println!("check-serve: SKIP (no baseline {baseline_path}: {e})");
            return 0;
        }
    };
    let baseline = Json::parse(baseline.as_bytes()).expect("baseline JSON");
    if baseline.get("schema").and_then(Json::as_str) != Some("serve-open-loop-v2") {
        println!("check-serve: SKIP (baseline is not schema serve-open-loop-v2; regenerate)");
        return 0;
    }
    let base_cores = baseline
        .get("host")
        .and_then(|h| h.get("cores"))
        .and_then(Json::as_u64)
        .unwrap_or(0) as usize;
    if base_cores != cores {
        println!(
            "check-serve: SKIP (baseline measured on {base_cores} cores, host has {cores}; \
             knee rps is not comparable across hosts)"
        );
        return 0;
    }
    let mut base_knees: Vec<(usize, f64)> = Vec::new();
    if let Some(Json::Arr(sweeps)) = baseline.get("sweeps") {
        for s in sweeps {
            let w = s.get("workers").and_then(Json::as_u64).unwrap_or(0) as usize;
            if let Some(g) = s
                .get("knee")
                .and_then(|k| k.get("goodput_rps"))
                .and_then(Json::as_f64)
            {
                base_knees.push((w, g));
            }
        }
    }
    let Some(&(top_workers, base_goodput)) = base_knees.iter().max_by(|a, b| a.0.cmp(&b.0)) else {
        println!("check-serve: SKIP (baseline has no knee data)");
        return 0;
    };

    let ladder = [0.4, 0.7, 0.9, 1.2, 1.8];
    let now = sweep_workers(top_workers, duration, connections, &ladder);
    let goodput = knee_goodput(&now);
    println!(
        "check-serve: knee at {top_workers} workers: {goodput:.0} rps \
         (baseline {base_goodput:.0} rps)"
    );
    let mut failed = false;
    if goodput < 0.6 * base_goodput {
        println!(
            "check-serve: FAIL knee goodput {goodput:.0} rps regressed more than 40% \
             below baseline {base_goodput:.0} rps"
        );
        failed = true;
    }
    if cores >= 8 && top_workers >= 8 {
        let one = sweep_workers(1, duration, connections, &ladder);
        let one_goodput = knee_goodput(&one);
        if goodput < 3.0 * one_goodput {
            println!(
                "check-serve: FAIL {top_workers}-worker knee {goodput:.0} rps is not >= 3x \
                 the 1-worker knee {one_goodput:.0} rps"
            );
            failed = true;
        } else {
            println!(
                "check-serve: scaling OK ({goodput:.0} rps vs {one_goodput:.0} rps at 1 worker)"
            );
        }
    } else {
        println!(
            "check-serve: scaling assertion skipped ({cores} cores < 8; \
             workers time-slice, ratio not measurable)"
        );
    }
    if failed {
        1
    } else {
        println!("check-serve: OK");
        0
    }
}

fn main() {
    let mut out_path = String::from("BENCH_serve.json");
    let mut duration = Duration::from_millis(1000);
    let mut connections: usize = 8;
    let mut worker_counts: Vec<usize> = vec![1, 4, 8];
    let mut check_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out_path = args.next().expect("--out value"),
            "--duration-ms" => {
                duration = Duration::from_millis(
                    args.next().expect("--duration-ms value").parse().unwrap(),
                )
            }
            "--connections" => {
                connections = args.next().expect("--connections value").parse().unwrap()
            }
            "--workers" => {
                worker_counts = args
                    .next()
                    .expect("--workers value")
                    .split(',')
                    .map(|w| w.parse().expect("--workers"))
                    .collect()
            }
            "--quick" => {
                duration = Duration::from_millis(300);
                worker_counts = vec![1, 4];
                connections = 4;
            }
            "--check-serve" => {
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().unwrap(),
                    _ => "BENCH_serve.json".to_string(),
                };
                check_baseline = Some(path);
            }
            other => panic!("unknown flag {other}"),
        }
    }

    if let Some(baseline) = check_baseline {
        std::process::exit(check_serve(&baseline, duration, connections));
    }

    let cores = host_cores();
    println!(
        "serve_bench: open-loop sweep, workers {worker_counts:?}, \
         {connections} connections, {duration:?}/point, {cores} cores"
    );
    let ladder = [0.4, 0.7, 0.9, 1.2, 1.8];
    let mut sweeps = Vec::new();
    for &workers in &worker_counts {
        sweeps.push(sweep_workers(workers, duration, connections, &ladder));
    }

    let mut scaling = JsonObj::new();
    for s in &sweeps {
        scaling = scaling.set(
            &format!("workers_{}_knee_rps", s.workers),
            Json::Num(knee_goodput(s)),
        );
    }
    if let (Some(first), Some(last)) = (sweeps.first(), sweeps.last()) {
        let (a, b) = (knee_goodput(first), knee_goodput(last));
        if a > 0.0 {
            scaling = scaling.set("knee_ratio", Json::Num(b / a));
        }
    }

    let report = JsonObj::new()
        .set("bench", Json::Str("serve".into()))
        .set("schema", Json::Str("serve-open-loop-v2".into()))
        .set(
            "host",
            JsonObj::new().set("cores", Json::Num(cores as f64)).build(),
        )
        .set(
            "note",
            Json::Str(
                "open-loop fixed-arrival-rate generator; knee = highest offered rate with \
                 goodput >= 92% of offered; stub-RNG untrained weights (serving-stack cost \
                 only); knee rps is host-specific"
                    .into(),
            ),
        )
        .set(
            "config",
            JsonObj::new()
                .set("model", Json::Str("mlp:32 + 1 guard variant".into()))
                .set("max_batch", Json::Num(16.0))
                .set("max_delay_ms", Json::Num(2.0))
                .set("queue_depth", Json::Num(256.0))
                .set("connections", Json::Num(connections as f64))
                .set("duration_ms", Json::Num(duration.as_millis() as f64))
                .set("goodput_ratio", Json::Num(GOODPUT_RATIO))
                .build(),
        )
        .set("sweeps", Json::Arr(sweeps.iter().map(sweep_json).collect()))
        .set("scaling", scaling.build())
        .build();
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("serve_bench: wrote {out_path}");
}
