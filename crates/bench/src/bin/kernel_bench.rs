//! Machine-readable kernel ablation.
//!
//! Times the tensor kernels on the hot-path shapes (repeated 128×128×128
//! GEMMs, a CIFAR-sized conv lowering, attack-sized elementwise ops) and
//! writes median nanoseconds per invocation to `BENCH_kernels.json`.
//! The headline number is `pooled_speedup_vs_spawn`: the same dense compute
//! kernel and row banding, run on the persistent worker pool versus
//! spawning fresh OS threads per call (the pre-pool behaviour).
//!
//! A second report, `BENCH_simd.json`, ablates the runtime-dispatched SIMD
//! kernel layer: the AVX2+FMA GEMM microkernel and elementwise/reduction
//! kernels against their scalar fallbacks (both backends timed explicitly
//! in one process), plus the fused single-pass attack-step kernels against
//! the historical allocating op chains.
//!
//! Run via `scripts/bench_kernels.sh`, or directly:
//!
//! ```text
//! cargo run --release -p advcomp-bench --features bench-ablation \
//!     --bin kernel_bench -- [--out FILE] [--simd-out FILE] [--iters N] [--check-simd]
//! ```
//!
//! `--check-simd` exits non-zero when AVX2+FMA is detected but the SIMD
//! GEMM is not faster than the scalar one — the regression gate
//! `scripts/check.sh` relies on.

use advcomp_attacks::step;
use advcomp_tensor::{
    im2col, pool, simd, Conv2dGeometry, Init, KernelBackend, MatmulKernel, Tensor,
};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct KernelTiming {
    name: String,
    median_ns: u64,
    iters: usize,
}

#[derive(Serialize)]
struct KernelReport {
    gemm_size: usize,
    threads: usize,
    pooled_median_ns: u64,
    spawn_median_ns: u64,
    pooled_speedup_vs_spawn: f64,
    kernels: Vec<KernelTiming>,
}

/// One scalar-vs-SIMD timing pair for a single kernel.
#[derive(Serialize)]
struct SimdPair {
    name: String,
    scalar_ns: u64,
    simd_ns: u64,
    speedup: f64,
}

#[derive(Serialize)]
struct SimdReport {
    /// Whether AVX2+FMA was detected at runtime; when false the "simd"
    /// column falls back to scalar and every speedup is ~1.
    simd_available: bool,
    gemm_size: usize,
    threads: usize,
    gemm_scalar_ns: u64,
    gemm_simd_ns: u64,
    gemm_speedup_simd_vs_scalar: f64,
    fused_sign_step_ns: u64,
    unfused_sign_step_ns: u64,
    fused_speedup_vs_unfused: f64,
    pairs: Vec<SimdPair>,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    // A few unmeasured runs warm caches and (for the pooled path) start the
    // worker threads, so thread creation is not billed to the pool.
    for _ in 0..iters.div_ceil(10).max(3) {
        f();
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn sparsify(a: &Tensor, density: f32) -> Tensor {
    let mut sparse = a.clone();
    let n = sparse.len();
    for i in 0..n {
        if (i as f32 / n as f32) >= density {
            sparse.data_mut()[i] = 0.0;
        }
    }
    sparse
}

/// Times the SIMD-dispatch ablations and writes `simd_out`. Returns the
/// report so `--check-simd` can gate on it.
fn simd_ablation(iters: usize, simd_out: &str) -> Result<SimdReport, Box<dyn std::error::Error>> {
    const SIZE: usize = 128;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let init = Init::Uniform { lo: -1.0, hi: 1.0 };
    let a = init.tensor(&[SIZE, SIZE], &mut rng);
    let b = init.tensor(&[SIZE, SIZE], &mut rng);

    let mut pairs = Vec::new();
    let mut record_pair = |name: &str, scalar_ns: u64, simd_ns: u64| {
        let speedup = scalar_ns as f64 / simd_ns.max(1) as f64;
        println!("{name:>28}: scalar {scalar_ns:>10} ns  simd {simd_ns:>10} ns  ({speedup:.2}x)");
        pairs.push(SimdPair {
            name: name.to_string(),
            scalar_ns,
            simd_ns,
            speedup,
        });
    };

    // GEMM: the identical packed/banded path, explicit backend per call.
    let gemm_scalar = median_ns(iters, || {
        black_box(
            a.matmul_with(&b, MatmulKernel::Dense, KernelBackend::Scalar)
                .unwrap(),
        );
    });
    let gemm_simd = median_ns(iters, || {
        black_box(
            a.matmul_with(&b, MatmulKernel::Dense, KernelBackend::Simd)
                .unwrap(),
        );
    });
    record_pair("gemm_dense_128", gemm_scalar, gemm_simd);

    // Elementwise + reduction kernels on an attack-sized buffer (a batch of
    // 64 CIFAR images), through the slice kernels the Tensor ops dispatch
    // to, with the output buffer preallocated so only compute is timed.
    let n = 64 * 3 * 32 * 32;
    let x = init.tensor(&[n], &mut rng);
    let y = init.tensor(&[n], &mut rng);
    let mut out = vec![0.0f32; n];
    macro_rules! time_both {
        ($name:expr, $be:ident => $body:expr) => {{
            let scalar = median_ns(iters, || {
                let $be = KernelBackend::Scalar;
                black_box($body);
            });
            let simd_t = median_ns(iters, || {
                let $be = KernelBackend::Simd;
                black_box($body);
            });
            record_pair($name, scalar, simd_t);
        }};
    }
    time_both!("elementwise_add_196k", be => simd::add_slices(be, x.data(), y.data(), &mut out));
    time_both!("elementwise_sign_196k", be => simd::sign_slices(be, x.data(), &mut out));
    time_both!("elementwise_clamp_196k", be => simd::clamp_slices(be, x.data(), 0.0, 1.0, &mut out));
    time_both!("elementwise_axpy_196k", be => simd::axpy_slices(be, &mut out, y.data(), 0.01));
    time_both!("reduce_sum_196k", be => simd::sum_slice(be, x.data()));
    time_both!("reduce_sumsq_196k", be => simd::sumsq_slice(be, x.data()));
    time_both!("reduce_max_abs_196k", be => simd::max_abs_slice(be, x.data()));

    // Fused attack step vs the historical allocating chain, at whatever
    // backend ADVCOMP_KERNEL selected (the fusion win is orthogonal to the
    // SIMD win; the iterate stays in [0, 1] either way so drift between
    // timed iterations does not change the workload).
    let g = init.tensor(&[n], &mut rng);
    let mut adv = x.clamp(0.0, 1.0);
    let fused_sign = median_ns(iters, || {
        step::sign_step(black_box(&mut adv), &g, 0.01).unwrap();
    });
    let unfused_sign = median_ns(iters, || {
        black_box(step::sign_step_unfused(&adv, &g, 0.01).unwrap());
    });
    record_pair("attack_sign_step_196k*", unfused_sign, fused_sign);
    let origin = x.clamp(0.0, 1.0);
    let fused_pgd = median_ns(iters, || {
        step::projected_sign_step(black_box(&mut adv), &g, &origin, 0.01, 0.05).unwrap();
    });
    let unfused_pgd = median_ns(iters, || {
        black_box(step::projected_sign_step_unfused(&adv, &g, &origin, 0.01, 0.05).unwrap());
    });
    record_pair("attack_pgd_step_196k*", unfused_pgd, fused_pgd);
    println!("  (* fused-vs-unfused at the ambient backend, not scalar-vs-simd)");

    let report = SimdReport {
        simd_available: simd::simd_available(),
        gemm_size: SIZE,
        threads: pool::available_threads(),
        gemm_scalar_ns: gemm_scalar,
        gemm_simd_ns: gemm_simd,
        gemm_speedup_simd_vs_scalar: gemm_scalar as f64 / gemm_simd.max(1) as f64,
        fused_sign_step_ns: fused_sign,
        unfused_sign_step_ns: unfused_sign,
        fused_speedup_vs_unfused: unfused_sign as f64 / fused_sign.max(1) as f64,
        pairs,
    };
    std::fs::write(simd_out, serde_json::to_string_pretty(&report)?)?;
    println!(
        "\nsimd GEMM speedup vs scalar: {:.2}x  fused step speedup vs unfused: {:.2}x",
        report.gemm_speedup_simd_vs_scalar, report.fused_speedup_vs_unfused
    );
    println!("wrote {simd_out}");
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut simd_out_path = String::from("BENCH_simd.json");
    let mut iters = 200usize;
    let mut check_simd = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = args.next() {
                    out_path = v;
                }
            }
            "--simd-out" => {
                if let Some(v) = args.next() {
                    simd_out_path = v;
                }
            }
            "--iters" => {
                if let Some(v) = args.next() {
                    iters = v.parse()?;
                }
            }
            "--check-simd" => check_simd = true,
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }

    const SIZE: usize = 128;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let init = Init::Uniform { lo: -1.0, hi: 1.0 };
    let a = init.tensor(&[SIZE, SIZE], &mut rng);
    let b = init.tensor(&[SIZE, SIZE], &mut rng);
    let pruned = sparsify(&a, 0.1);

    let mut kernels = Vec::new();
    let mut record = |name: &str, iters: usize, median: u64| {
        println!("{name:>28}: {median:>12} ns/iter  ({iters} iters)");
        kernels.push(KernelTiming {
            name: name.to_string(),
            median_ns: median,
            iters,
        });
    };

    let pooled = median_ns(iters, || {
        black_box(a.matmul(&b).unwrap());
    });
    record("matmul_pooled_128", iters, pooled);

    let spawned = median_ns(iters, || {
        black_box(a.matmul_spawn_per_call(&b).unwrap());
    });
    record("matmul_spawn_per_call_128", iters, spawned);

    record(
        "matmul_blocked_serial_128",
        iters,
        median_ns(iters, || {
            black_box(a.matmul_blocked_serial(&b).unwrap());
        }),
    );
    record(
        "matmul_naive_128",
        iters.min(50),
        median_ns(iters.min(50), || {
            black_box(a.matmul_naive(&b).unwrap());
        }),
    );
    record(
        "matmul_sparse_kernel_d0.1",
        iters,
        median_ns(iters, || {
            black_box(pruned.matmul_with_kernel(&b, MatmulKernel::Sparse).unwrap());
        }),
    );
    record(
        "matmul_dense_kernel_d0.1",
        iters,
        median_ns(iters, || {
            black_box(pruned.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap());
        }),
    );

    // Conv lowering at CIFAR-net geometry (batch 8, 3→, 32×32, 3×3 kernel).
    let geom = Conv2dGeometry::square(3, 32, 3, 1, 1);
    let x = init.tensor(&[8, 3, 32, 32], &mut rng);
    record(
        "im2col_cifar_b8",
        iters,
        median_ns(iters, || {
            black_box(im2col(&x, &geom).unwrap());
        }),
    );

    // Attack-step elementwise ops on a batch of CIFAR images.
    let g = init.tensor(&[64 * 3 * 32 * 32], &mut rng);
    let h = init.tensor(&[64 * 3 * 32 * 32], &mut rng);
    record(
        "elementwise_sign_196k",
        iters,
        median_ns(iters, || {
            black_box(g.sign());
        }),
    );
    record(
        "elementwise_add_196k",
        iters,
        median_ns(iters, || {
            black_box(g.add(&h).unwrap());
        }),
    );

    let report = KernelReport {
        gemm_size: SIZE,
        threads: pool::available_threads(),
        pooled_median_ns: pooled,
        spawn_median_ns: spawned,
        pooled_speedup_vs_spawn: spawned as f64 / pooled as f64,
        kernels,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&report)?)?;
    println!(
        "\npooled speedup vs spawn-per-call: {:.2}x  (threads={})",
        report.pooled_speedup_vs_spawn, report.threads
    );
    println!("wrote {out_path}\n");

    let simd_report = simd_ablation(iters, &simd_out_path)?;
    if check_simd
        && simd_report.simd_available
        && simd_report.gemm_simd_ns > simd_report.gemm_scalar_ns
    {
        return Err(format!(
            "--check-simd: AVX2+FMA is available but the simd GEMM ({} ns) is \
             slower than scalar ({} ns)",
            simd_report.gemm_simd_ns, simd_report.gemm_scalar_ns
        )
        .into());
    }
    Ok(())
}
