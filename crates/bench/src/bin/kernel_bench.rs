//! Machine-readable kernel ablation.
//!
//! Times the tensor kernels on the hot-path shapes (repeated 128×128×128
//! GEMMs, a CIFAR-sized conv lowering, attack-sized elementwise ops) and
//! writes median nanoseconds per invocation to `BENCH_kernels.json`.
//! The headline number is `pooled_speedup_vs_spawn`: the same dense compute
//! kernel and row banding, run on the persistent worker pool versus
//! spawning fresh OS threads per call (the pre-pool behaviour).
//!
//! Run via `scripts/bench_kernels.sh`, or directly:
//!
//! ```text
//! cargo run --release -p advcomp-bench --bin kernel_bench -- [--out FILE] [--iters N]
//! ```

use advcomp_tensor::{im2col, pool, Conv2dGeometry, Init, MatmulKernel, Tensor};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct KernelTiming {
    name: String,
    median_ns: u64,
    iters: usize,
}

#[derive(Serialize)]
struct KernelReport {
    gemm_size: usize,
    threads: usize,
    pooled_median_ns: u64,
    spawn_median_ns: u64,
    pooled_speedup_vs_spawn: f64,
    kernels: Vec<KernelTiming>,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    // A few unmeasured runs warm caches and (for the pooled path) start the
    // worker threads, so thread creation is not billed to the pool.
    for _ in 0..iters.div_ceil(10).max(3) {
        f();
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn sparsify(a: &Tensor, density: f32) -> Tensor {
    let mut sparse = a.clone();
    let n = sparse.len();
    for i in 0..n {
        if (i as f32 / n as f32) >= density {
            sparse.data_mut()[i] = 0.0;
        }
    }
    sparse
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut iters = 200usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = args.next() {
                    out_path = v;
                }
            }
            "--iters" => {
                if let Some(v) = args.next() {
                    iters = v.parse()?;
                }
            }
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }

    const SIZE: usize = 128;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let init = Init::Uniform { lo: -1.0, hi: 1.0 };
    let a = init.tensor(&[SIZE, SIZE], &mut rng);
    let b = init.tensor(&[SIZE, SIZE], &mut rng);
    let pruned = sparsify(&a, 0.1);

    let mut kernels = Vec::new();
    let mut record = |name: &str, iters: usize, median: u64| {
        println!("{name:>28}: {median:>12} ns/iter  ({iters} iters)");
        kernels.push(KernelTiming {
            name: name.to_string(),
            median_ns: median,
            iters,
        });
    };

    let pooled = median_ns(iters, || {
        black_box(a.matmul(&b).unwrap());
    });
    record("matmul_pooled_128", iters, pooled);

    let spawned = median_ns(iters, || {
        black_box(a.matmul_spawn_per_call(&b).unwrap());
    });
    record("matmul_spawn_per_call_128", iters, spawned);

    record(
        "matmul_blocked_serial_128",
        iters,
        median_ns(iters, || {
            black_box(a.matmul_blocked_serial(&b).unwrap());
        }),
    );
    record(
        "matmul_naive_128",
        iters.min(50),
        median_ns(iters.min(50), || {
            black_box(a.matmul_naive(&b).unwrap());
        }),
    );
    record(
        "matmul_sparse_kernel_d0.1",
        iters,
        median_ns(iters, || {
            black_box(pruned.matmul_with_kernel(&b, MatmulKernel::Sparse).unwrap());
        }),
    );
    record(
        "matmul_dense_kernel_d0.1",
        iters,
        median_ns(iters, || {
            black_box(pruned.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap());
        }),
    );

    // Conv lowering at CIFAR-net geometry (batch 8, 3→, 32×32, 3×3 kernel).
    let geom = Conv2dGeometry::square(3, 32, 3, 1, 1);
    let x = init.tensor(&[8, 3, 32, 32], &mut rng);
    record(
        "im2col_cifar_b8",
        iters,
        median_ns(iters, || {
            black_box(im2col(&x, &geom).unwrap());
        }),
    );

    // Attack-step elementwise ops on a batch of CIFAR images.
    let g = init.tensor(&[64 * 3 * 32 * 32], &mut rng);
    let h = init.tensor(&[64 * 3 * 32 * 32], &mut rng);
    record(
        "elementwise_sign_196k",
        iters,
        median_ns(iters, || {
            black_box(g.sign());
        }),
    );
    record(
        "elementwise_add_196k",
        iters,
        median_ns(iters, || {
            black_box(g.add(&h).unwrap());
        }),
    );

    let report = KernelReport {
        gemm_size: SIZE,
        threads: pool::available_threads(),
        pooled_median_ns: pooled,
        spawn_median_ns: spawned,
        pooled_speedup_vs_spawn: spawned as f64 / pooled as f64,
        kernels,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&report)?)?;
    println!(
        "\npooled speedup vs spawn-per-call: {:.2}x  (threads={})",
        report.pooled_speedup_vs_spawn, report.threads
    );
    println!("wrote {out_path}");
    Ok(())
}
