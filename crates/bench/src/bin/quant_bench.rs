//! Machine-readable integer-execution ablation.
//!
//! Times the packed block-quantised paths against their dense f32
//! equivalents and writes `BENCH_quant.json`:
//!
//! * the fused int8 GEMM (`qmatmul_f32`, Q8_0 and Q4_0 weights with
//!   on-the-fly activation quantisation) vs the production dense f32 SIMD
//!   GEMM at the 128×128 hot-path shape;
//! * a full LeNet5 forward, dense vs frozen-packed at 8 and 4 bits, plus
//!   the same frozen forwards through a compiled `advcomp-graph`
//!   `ExecPlan` (the Q4 row also documents the before/after of routing
//!   Q4 through the plan's widened-code kernel — see `q4_fix_note`);
//! * the compression-ensemble guard's per-batch cost: baseline + two dense
//!   variants vs baseline + two packed variants (the serving engine's
//!   `run_batch` shape);
//! * checkpoint bytes: the f32 (v2) file vs the packed (v3) files.
//!
//! Run via `scripts/bench_quant.sh`, or directly:
//!
//! ```text
//! cargo run --release -p advcomp-bench --bin quant_bench -- \
//!     [--out FILE] [--iters N] [--check-quant]
//! ```
//!
//! `--check-quant` exits non-zero when AVX2 is detected but the packed Q8
//! GEMM is not faster than the dense f32 SIMD GEMM — the regression gate
//! `scripts/check.sh` relies on, mirroring `kernel_bench --check-simd`.

use advcomp_compress::Quantizer;
use advcomp_graph::ExecPlan;
use advcomp_models::{lenet5, Checkpoint};
use advcomp_nn::{Mode, Sequential};
use advcomp_qformat::QFormat;
use advcomp_tensor::{pool, qmatmul_f32, simd, Init, KernelBackend, MatmulKernel, QTensor};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct GemmSection {
    size: usize,
    f32_simd_ns: u64,
    q8_ns: u64,
    q4_ns: u64,
    q8_speedup_vs_f32: f64,
    q4_speedup_vs_f32: f64,
}

#[derive(Serialize)]
struct ForwardSection {
    model: String,
    batch: usize,
    dense_f32_ns: u64,
    q8_frozen_ns: u64,
    q4_frozen_ns: u64,
    q8_speedup: f64,
    q4_speedup: f64,
    /// Frozen forwards through the compiled `ExecPlan` (advcomp-graph):
    /// fused epilogues, static arena, and — for Q4 — weight nibbles
    /// widened to Q8 byte layout once at compile time instead of being
    /// re-unpacked in the GEMM inner loop on every call.
    q8_planned_ns: u64,
    q4_planned_ns: u64,
    q8_planned_speedup: f64,
    q4_planned_speedup: f64,
    q4_fix_note: String,
}

#[derive(Serialize)]
struct GuardSection {
    variants: usize,
    dense_ensemble_ns: u64,
    packed_ensemble_ns: u64,
    packed_speedup: f64,
}

#[derive(Serialize)]
struct CheckpointSection {
    f32_v2_bytes: usize,
    packed_v3_q8_bytes: usize,
    packed_v3_q4_bytes: usize,
    q8_ratio_vs_f32: f64,
}

#[derive(Serialize)]
struct QuantReport {
    /// Whether AVX2 was detected; without it every packed path falls back
    /// to scalar and the GEMM speedups are not meaningful as a gate.
    simd_available: bool,
    threads: usize,
    gemm: GemmSection,
    forward: ForwardSection,
    guard: GuardSection,
    checkpoint: CheckpointSection,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..iters.div_ceil(10).max(3) {
        f();
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn frozen_lenet(bits: u32, seed: u64) -> Sequential {
    let mut model = lenet5(1.0, seed);
    Quantizer::for_bitwidth(bits)
        .unwrap()
        .quantize_frozen(&mut model)
        .expect("lenet5 freezes at <= 8 bits");
    model
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out_path = String::from("BENCH_quant.json");
    let mut iters = 200usize;
    let mut check_quant = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = args.next() {
                    out_path = v;
                }
            }
            "--iters" => {
                if let Some(v) = args.next() {
                    iters = v.parse()?;
                }
            }
            "--check-quant" => check_quant = true,
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }

    // --- GEMM: packed int8 vs dense f32 SIMD at the hot-path shape. ---
    const SIZE: usize = 128;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let init = Init::Uniform { lo: -1.0, hi: 1.0 };
    let a = init.tensor(&[SIZE, SIZE], &mut rng);
    let b = init.tensor(&[SIZE, SIZE], &mut rng);
    let q8 = QFormat::for_bitwidth(8).unwrap();
    let q4 = QFormat::for_bitwidth(4).unwrap();
    let w8 = QTensor::quantize(b.data(), &[SIZE, SIZE], q8).unwrap();
    let w4 = QTensor::quantize(b.data(), &[SIZE, SIZE], q4).unwrap();

    let f32_ns = median_ns(iters, || {
        black_box(
            a.matmul_with(&b, MatmulKernel::Dense, KernelBackend::Simd)
                .unwrap(),
        );
    });
    let mut out = vec![0.0f32; SIZE * SIZE];
    let q8_ns = median_ns(iters, || {
        qmatmul_f32(KernelBackend::Simd, a.data(), SIZE, q8, &w8, &mut out).unwrap();
        black_box(&out);
    });
    let q4_ns = median_ns(iters, || {
        qmatmul_f32(KernelBackend::Simd, a.data(), SIZE, q4, &w4, &mut out).unwrap();
        black_box(&out);
    });
    let gemm = GemmSection {
        size: SIZE,
        f32_simd_ns: f32_ns,
        q8_ns,
        q4_ns,
        q8_speedup_vs_f32: f32_ns as f64 / q8_ns.max(1) as f64,
        q4_speedup_vs_f32: f32_ns as f64 / q4_ns.max(1) as f64,
    };
    println!(
        "gemm_{SIZE}: f32 {f32_ns} ns  q8 {q8_ns} ns ({:.2}x)  q4 {q4_ns} ns ({:.2}x)",
        gemm.q8_speedup_vs_f32, gemm.q4_speedup_vs_f32
    );

    // --- Full-model forward: dense vs frozen-packed LeNet5. ---
    const BATCH: usize = 8;
    let mut dense = lenet5(1.0, 7);
    let mut frozen8 = frozen_lenet(8, 7);
    let mut frozen4 = frozen_lenet(4, 7);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[BATCH, 1, 28, 28], &mut rng);
    let fwd_iters = (iters / 4).max(20);
    let dense_ns = median_ns(fwd_iters, || {
        black_box(dense.forward(&x, Mode::Eval).unwrap());
    });
    let q8_fwd_ns = median_ns(fwd_iters, || {
        black_box(frozen8.forward(&x, Mode::Eval).unwrap());
    });
    let q4_fwd_ns = median_ns(fwd_iters, || {
        black_box(frozen4.forward(&x, Mode::Eval).unwrap());
    });
    // The compiled plans: the q4 plan is the before/after story — the
    // layer path re-unpacks weight nibbles inside the GEMM inner loop
    // (q4_frozen_ns barely beats dense), while the plan widens the codes
    // to Q8 byte layout once at compile and runs the maddubs kernel.
    let mut plan8 = ExecPlan::compile(&frozen8, &[1, 28, 28]).expect("q8 lenet5 compiles");
    let mut plan4 = ExecPlan::compile(&frozen4, &[1, 28, 28]).expect("q4 lenet5 compiles");
    plan8.reserve_batch(BATCH);
    plan4.reserve_batch(BATCH);
    let q8_plan_ns = median_ns(fwd_iters, || {
        black_box(plan8.forward(&x).unwrap());
    });
    let q4_plan_ns = median_ns(fwd_iters, || {
        black_box(plan4.forward(&x).unwrap());
    });
    let forward = ForwardSection {
        model: "lenet5".into(),
        batch: BATCH,
        dense_f32_ns: dense_ns,
        q8_frozen_ns: q8_fwd_ns,
        q4_frozen_ns: q4_fwd_ns,
        q8_speedup: dense_ns as f64 / q8_fwd_ns.max(1) as f64,
        q4_speedup: dense_ns as f64 / q4_fwd_ns.max(1) as f64,
        q8_planned_ns: q8_plan_ns,
        q4_planned_ns: q4_plan_ns,
        q8_planned_speedup: dense_ns as f64 / q8_plan_ns.max(1) as f64,
        q4_planned_speedup: dense_ns as f64 / q4_plan_ns.max(1) as f64,
        q4_fix_note: format!(
            "before: layer path unpacked Q4 nibbles per GEMM inner loop, {q4_fwd_ns} ns \
             ({:.2}x vs dense); after: ExecPlan widens Q4 codes to Q8 bytes at compile \
             (bit-identical sums), {q4_plan_ns} ns ({:.2}x vs dense)",
            dense_ns as f64 / q4_fwd_ns.max(1) as f64,
            dense_ns as f64 / q4_plan_ns.max(1) as f64,
        ),
    };
    println!(
        "forward_lenet5_b{BATCH}: dense {dense_ns} ns  q8 {q8_fwd_ns} ns ({:.2}x)  \
         q4 {q4_fwd_ns} ns ({:.2}x)  planned q8 {q8_plan_ns} ns ({:.2}x)  \
         planned q4 {q4_plan_ns} ns ({:.2}x)",
        forward.q8_speedup,
        forward.q4_speedup,
        forward.q8_planned_speedup,
        forward.q4_planned_speedup
    );

    // --- Guard request cost: the engine's run_batch shape, baseline plus
    // two variants, dense ensemble vs packed ensemble. ---
    let mut dense_v1 = lenet5(1.0, 8);
    let mut dense_v2 = lenet5(1.0, 9);
    let dense_guard_ns = median_ns(fwd_iters, || {
        black_box(dense.forward(&x, Mode::Eval).unwrap());
        black_box(dense_v1.forward(&x, Mode::Eval).unwrap());
        black_box(dense_v2.forward(&x, Mode::Eval).unwrap());
    });
    let mut packed_v1 = frozen_lenet(8, 8);
    let mut packed_v2 = frozen_lenet(4, 9);
    let packed_guard_ns = median_ns(fwd_iters, || {
        black_box(dense.forward(&x, Mode::Eval).unwrap());
        black_box(packed_v1.forward(&x, Mode::Eval).unwrap());
        black_box(packed_v2.forward(&x, Mode::Eval).unwrap());
    });
    let guard = GuardSection {
        variants: 2,
        dense_ensemble_ns: dense_guard_ns,
        packed_ensemble_ns: packed_guard_ns,
        packed_speedup: dense_guard_ns as f64 / packed_guard_ns.max(1) as f64,
    };
    println!(
        "guard_batch_b{BATCH}: dense ensemble {dense_guard_ns} ns  packed ensemble \
         {packed_guard_ns} ns ({:.2}x)",
        guard.packed_speedup
    );

    // --- Checkpoint bytes: v2 f32 vs v3 packed. ---
    let v2 = Checkpoint::capture(&dense).to_bytes().len();
    let v3_q8 = Checkpoint::capture(&frozen8).to_bytes().len();
    let v3_q4 = Checkpoint::capture(&frozen4).to_bytes().len();
    let checkpoint = CheckpointSection {
        f32_v2_bytes: v2,
        packed_v3_q8_bytes: v3_q8,
        packed_v3_q4_bytes: v3_q4,
        q8_ratio_vs_f32: v2 as f64 / v3_q8.max(1) as f64,
    };
    println!(
        "checkpoint: v2 {v2} B  v3 q8 {v3_q8} B ({:.2}x)  v3 q4 {v3_q4} B",
        checkpoint.q8_ratio_vs_f32
    );

    let report = QuantReport {
        simd_available: simd::simd_available(),
        threads: pool::available_threads(),
        gemm,
        forward,
        guard,
        checkpoint,
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&report)?)?;
    println!("wrote {out_path}");

    if check_quant && report.simd_available && report.gemm.q8_ns > report.gemm.f32_simd_ns {
        return Err(format!(
            "--check-quant: AVX2 is available but the packed Q8 GEMM ({} ns) is \
             slower than the dense f32 SIMD GEMM ({} ns)",
            report.gemm.q8_ns, report.gemm.f32_simd_ns
        )
        .into());
    }
    Ok(())
}
