//! Fault-injection smoke test: proves the resilience stack end to end on a
//! seconds-scale sweep.
//!
//! Runs a tiny two-point pruning sweep with a **sticky panic** injected at
//! the `sweep_point` site (from `ADVCOMP_FAULTS` when set — the
//! `scripts/check.sh` path — or installed programmatically otherwise). The
//! run must complete with exit code 0, keep the surviving point on the
//! curve, and record the poisoned point as a failure with its retry count —
//! the partial-result contract a real overnight grid depends on.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_core::resilience::RetryPolicy;
use advcomp_core::sweep::{RunConfig, TransferMatrix};
use advcomp_core::ExperimentScale;
use advcomp_nn::faults::{install, FaultKind, FaultSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== fault smoke: injected panic must degrade to partial results ===");
    // Hit 1 = the second `sweep_point` invocation: point 0 computes, point 1
    // panics on every attempt (serial workers make the order deterministic).
    let _guard = if std::env::var("ADVCOMP_FAULTS").is_err() {
        println!("ADVCOMP_FAULTS unset; installing panic:sweep_point:1:sticky");
        Some(install(vec![FaultSpec::sticky(
            FaultKind::Panic,
            "sweep_point",
            1,
        )]))
    } else {
        None
    };
    // The injected panics are expected; keep their default backtrace spew
    // out of the log and report them ourselves below.
    std::panic::set_hook(Box::new(|_| {}));

    let mut scale = ExperimentScale::tiny();
    scale.max_workers = 1;
    let retry = RetryPolicy {
        max_attempts: 2,
        backoff_ms: 0,
    };
    let run_dir = std::env::temp_dir().join(format!("advcomp-faultsmoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);
    let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.3]);
    let cfg = RunConfig {
        seed: 7,
        run_dir: Some(run_dir.clone()),
        retry,
    };
    let run = matrix.run_resilient(&scale, &cfg)?;
    let _ = std::panic::take_hook();
    let _ = std::fs::remove_dir_all(&run_dir);

    println!(
        "computed: {}, resumed: {}, failed: {}",
        run.computed,
        run.resumed,
        run.failed.len()
    );
    for f in &run.failed {
        println!(
            "recorded failure: x={} ({}) after {} attempt(s): {}",
            f.x, f.compression, f.attempts, f.error
        );
    }

    assert!(
        !run.failed.is_empty(),
        "expected the injected fault to produce at least one recorded failure"
    );
    assert!(
        run.failed.iter().all(|f| f.attempts == retry.max_attempts),
        "failed points should have consumed the full retry budget"
    );
    assert!(
        run.results.iter().all(|r| !r.points.is_empty()),
        "expected the surviving point to stay on every curve"
    );
    println!("fault smoke OK: sweep degraded to partial results with the failure recorded");
    Ok(())
}
