//! Regenerates **Figure 6**: cumulative distribution functions of the
//! weights (a) and activations (b) of quantised CifarNet.
//!
//! Trains a CifarNet baseline, quantises it (QAT) at bitwidths 4, 8 and 16,
//! and emits CDF points for weights and for activations sampled over ten
//! validation images, plus the float32 baseline.

use advcomp_attacks::NetKind;
use advcomp_bench::{banner, ExhibitOptions};
use advcomp_core::cdf::{activation_values, cdf_points, weight_values, zero_fraction};
use advcomp_core::report::Table;
use advcomp_core::{Compression, TaskSetup, TrainedModel};

const CDF_RESOLUTION: usize = 128;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner(
        "Figure 6",
        "CDFs of quantised CifarNet weights & activations",
        &opts,
    );

    let setup = TaskSetup::new(NetKind::CifarNet, &opts.scale);
    let trained = TrainedModel::train(&setup, &opts.scale, 7)?;
    let finetune_cfg = setup.finetune_config(&opts.scale);
    // "Ten randomly chosen input images from the validation dataset were
    // used [to] generate CDF of activation values."
    let (images, _) = setup.test.slice(0, 10.min(setup.test.len()))?;

    let mut csv = Table::new(
        "Figure 6 (CDFs of weights and activations)",
        &["kind", "bitwidth", "value", "cumulative_fraction"],
    );
    let mut summary = Table::new(
        "Zero mass and value ranges per bitwidth",
        &[
            "bitwidth",
            "weights_zero_frac",
            "weights_max_abs",
            "acts_zero_frac",
            "acts_max",
        ],
    );

    for bitwidth in [4u32, 8, 16, 32] {
        let mut model = trained.instantiate()?;
        if bitwidth < 32 {
            Compression::Quant {
                bitwidth,
                weights_only: false,
            }
            .apply(&mut model, &setup.train, &finetune_cfg)?;
        }
        let weights = weight_values(&model);
        let acts = activation_values(&mut model, &images)?;
        for (value, cum) in cdf_points(&weights, CDF_RESOLUTION) {
            csv.push_row(vec![
                "weights".into(),
                bitwidth.to_string(),
                format!("{value}"),
                format!("{cum}"),
            ]);
        }
        for (value, cum) in cdf_points(&acts, CDF_RESOLUTION) {
            csv.push_row(vec![
                "activations".into(),
                bitwidth.to_string(),
                format!("{value}"),
                format!("{cum}"),
            ]);
        }
        let wmax = weights.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let amax = acts.iter().fold(0.0f32, |a, v| a.max(*v));
        summary.push_row(vec![
            bitwidth.to_string(),
            format!("{:.3}", zero_fraction(&weights)),
            format!("{wmax:.4}"),
            format!("{:.3}", zero_fraction(&acts)),
            format!("{amax:.4}"),
        ]);
    }

    print!("{}", summary.to_markdown());
    println!();
    csv.write_csv(&opts.csv_path("fig6"))?;
    println!(
        "wrote {} (full CDF series)",
        opts.csv_path("fig6").display()
    );
    Ok(())
}
