//! Distributed sweep harness: runs the attack×compression matrix through
//! the lease-based coordinator/worker layer (`advcomp_core::dist`).
//!
//! Modes:
//!
//! * default — local mode: coordinator plus `--workers N` in-process worker
//!   threads speaking the real TCP protocol;
//! * `--baseline` — the same matrix single-process via `run_resilient`,
//!   for bit-identity comparison against a distributed run;
//! * `dist_sweep coordinator` — coordinator only; prints the bound address
//!   and waits for external workers (finishing solo if none show up);
//! * `dist_sweep worker --addr <host:port>` — one external worker process.
//!
//! `--out <path>` writes the final curves (`Vec<SweepResult>` as pretty
//! JSON) — the artifact `scripts/check.sh` bit-compares across modes.
//! `--expect-redispatch` / `--expect-resumed-all` turn protocol
//! expectations into hard exit-code assertions for smoke tests.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_core::dist::{run_local, run_worker, Coordinator, DistRunConfig, WorkerOptions};
use advcomp_core::report::write_atomic;
use advcomp_core::resilience::RetryPolicy;
use advcomp_core::sweep::{MatrixRun, RunConfig, TransferMatrix};
use advcomp_core::ExperimentScale;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    fn subcommand(&self) -> Option<&str> {
        self.raw
            .first()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for {flag}")),
        }
    }
}

fn parse_scale(name: &str) -> Result<ExperimentScale, String> {
    match name {
        "tiny" => Ok(ExperimentScale::tiny()),
        "quick" => Ok(ExperimentScale::quick()),
        "paper" => Ok(ExperimentScale::paper()),
        other => Err(format!("unknown scale '{other}' (tiny|quick|paper)")),
    }
}

fn parse_matrix(args: &Args) -> Result<TransferMatrix, String> {
    let net = match args.value("--net").unwrap_or("lenet5") {
        "lenet5" => NetKind::LeNet5,
        "cifarnet" => NetKind::CifarNet,
        other => return Err(format!("unknown net '{other}' (lenet5|cifarnet)")),
    };
    let attacks = args
        .value("--attacks")
        .unwrap_or("ifgsm")
        .split(',')
        .map(|a| match a {
            "ifgsm" => Ok(AttackKind::Ifgsm),
            "ifgm" => Ok(AttackKind::Ifgm),
            "deepfool" => Ok(AttackKind::DeepFool),
            other => Err(format!("unknown attack '{other}' (ifgsm|ifgm|deepfool)")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let densities = args
        .value("--densities")
        .unwrap_or("1.0,0.5,0.3,0.1")
        .split(',')
        .map(|d| {
            d.parse::<f64>()
                .map_err(|_| format!("bad density '{d}' in --densities"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TransferMatrix::pruning(net, attacks, &densities))
}

fn dist_config(args: &Args) -> Result<DistRunConfig, String> {
    let run_dir = args
        .value("--run-dir")
        .map(PathBuf::from)
        .ok_or("--run-dir <dir> is required for distributed modes")?;
    let mut cfg = DistRunConfig::new(run_dir);
    cfg.seed = args.num("--seed", cfg.seed)?;
    cfg.dist.lease_ms = args.num("--lease-ms", cfg.dist.lease_ms)?;
    cfg.dist.heartbeat_ms = args.num("--heartbeat-ms", cfg.dist.heartbeat_ms)?;
    cfg.dist.straggler_ms = args.num("--straggler-ms", cfg.dist.straggler_ms)?;
    cfg.dist.solo_grace_ms = args.num("--solo-grace-ms", cfg.dist.solo_grace_ms)?;
    cfg.worker_slow_ms = args.num("--slow-ms", 0)?;
    if let Some(listen) = args.value("--listen") {
        cfg.listen = listen.to_string();
    }
    Ok(cfg)
}

fn write_results(args: &Args, run: &MatrixRun) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(out) = args.value("--out") {
        // Curves only: the execution report is timing-dependent and lives
        // in dist_report.json; this file is the bit-compared artifact.
        let json = serde_json::to_string_pretty(&run.results)?;
        write_atomic(&PathBuf::from(out), &json)?;
        println!("wrote {out}");
    }
    Ok(())
}

fn summarize(run: &MatrixRun) {
    println!(
        "sweep done: resumed {}, computed {}, failed {}, health events {}",
        run.resumed,
        run.computed,
        run.failed.len(),
        run.health.len()
    );
    for f in &run.failed {
        println!(
            "recorded failure: x={} ({}) after {} attempt(s): {}",
            f.x, f.compression, f.attempts, f.error
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    // Injected worker panics (ADVCOMP_FAULTS) are the thing under test in
    // fault runs; keep their backtraces out of the harness output.
    if std::env::var("ADVCOMP_FAULTS").is_ok() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let scale = parse_scale(args.value("--scale").unwrap_or("tiny"))?;
    let matrix = parse_matrix(&args)?;

    match args.subcommand() {
        Some("worker") => {
            let addr = args
                .value("--addr")
                .ok_or("worker mode requires --addr <host:port>")?;
            let seed = args.num("--seed", 7u64)?;
            let opts = WorkerOptions {
                id: args.value("--id").unwrap_or("ext-worker").to_string(),
                heartbeat_ms: args.num("--heartbeat-ms", 250)?,
                slow_ms: args.num("--slow-ms", 0)?,
                ..WorkerOptions::default()
            };
            println!("worker '{}': preparing matrix (seed {seed})...", opts.id);
            let prepared = matrix.prepare(&scale, seed)?;
            let summary = run_worker(addr, &prepared, &opts)?;
            println!(
                "worker '{}' done: completed {}, failed {}, heartbeats {}",
                opts.id, summary.completed, summary.failed, summary.heartbeats_sent
            );
        }
        Some("coordinator") => {
            let cfg = dist_config(&args)?;
            let prepared = Arc::new(matrix.prepare(&scale, cfg.seed)?);
            let coordinator = Coordinator::bind(&cfg.listen, prepared, &cfg)?;
            println!("coordinator listening on {}", coordinator.addr());
            let outcome = coordinator.run()?;
            println!("{}", report_line(&outcome.report));
            summarize(&outcome.run);
            check_expectations(&args, &outcome.run, Some(&outcome.report))?;
            write_results(&args, &outcome.run)?;
        }
        Some(other) => return Err(format!("unknown subcommand '{other}'").into()),
        None if args.has("--baseline") => {
            let cfg = RunConfig {
                seed: args.num("--seed", 7)?,
                run_dir: args.value("--run-dir").map(PathBuf::from),
                retry: RetryPolicy::sweep_default(),
            };
            let run = matrix.run_resilient(&scale, &cfg)?;
            summarize(&run);
            check_expectations(&args, &run, None)?;
            write_results(&args, &run)?;
        }
        None => {
            let workers = args.num("--workers", 3usize)?;
            let cfg = dist_config(&args)?;
            let outcome = run_local(&matrix, &scale, &cfg, workers)?;
            println!("{}", report_line(&outcome.report));
            summarize(&outcome.run);
            check_expectations(&args, &outcome.run, Some(&outcome.report))?;
            write_results(&args, &outcome.run)?;
        }
    }
    Ok(())
}

fn report_line(r: &advcomp_core::dist::DistReport) -> String {
    format!(
        "dist report: points {}, resumed {}, remote {}, solo {}, workers joined {} lost {}, \
         leases {} expired {}, redispatches {}, speculative {}, duplicates {} divergent {}, \
         failures reported {} permanent {}",
        r.points,
        r.resumed,
        r.computed_remote,
        r.computed_solo,
        r.workers_joined,
        r.workers_lost,
        r.leases_granted,
        r.leases_expired,
        r.redispatches,
        r.speculative,
        r.duplicates,
        r.divergent,
        r.reported_failures,
        r.permanent_failures
    )
}

/// Turns smoke-test expectations into exit-code assertions.
fn check_expectations(
    args: &Args,
    run: &MatrixRun,
    report: Option<&advcomp_core::dist::DistReport>,
) -> Result<(), String> {
    if args.has("--expect-redispatch") {
        let r = report.ok_or("--expect-redispatch needs a distributed mode")?;
        if r.redispatches == 0 {
            return Err(format!(
                "expected at least one re-dispatch, got none ({})",
                report_line(r)
            ));
        }
    }
    if args.has("--expect-resumed-all") {
        let points = report.map_or(run.resumed + run.computed, |r| r.points);
        if run.resumed != points || run.computed != 0 {
            return Err(format!(
                "expected all {points} point(s) resumed from the journal, \
                 got resumed {} computed {}",
                run.resumed, run.computed
            ));
        }
    }
    if let Some(r) = report {
        if r.divergent > 0 {
            return Err(format!(
                "determinism violation: {} divergent duplicate(s)",
                r.divergent
            ));
        }
    }
    Ok(())
}
