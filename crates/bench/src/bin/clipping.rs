//! Extension exhibit: activation-saturation instrumentation for the §4.2
//! clipping hypothesis.
//!
//! The paper *hypothesises* that low-bitwidth defence comes from activation
//! clipping: "clipping the activation values forces the attacker to find
//! more subtle ways of achieving differential activation". This binary
//! measures it directly: for each bitwidth, the fraction of activations
//! sitting exactly at the format's saturation ceiling, on clean inputs and
//! on IFGSM adversarial inputs. If the hypothesis holds, adversarial inputs
//! should push markedly more activations into saturation — the attack is
//! "overdriving" activations and the format caps them.

use advcomp_attacks::{AttackKind, NetKind, PaperParams};
use advcomp_bench::{banner, ExhibitOptions};
use advcomp_core::cdf::activation_values;
use advcomp_core::report::{pct, Table};
use advcomp_core::{Compression, TaskSetup, TrainedModel};
use advcomp_qformat::QFormat;

fn saturation_fraction(values: &[f32], fmt: QFormat) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ceiling = fmt.max_value();
    values.iter().filter(|&&v| v >= ceiling).count() as f64 / values.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner(
        "Clipping",
        "activation saturation under attack (tests the §4.2 hypothesis)",
        &opts,
    );

    let setup = TaskSetup::new(NetKind::CifarNet, &opts.scale);
    let baseline = TrainedModel::train(&setup, &opts.scale, 7)?;
    let finetune_cfg = setup.finetune_config(&opts.scale);
    let n = opts.scale.deepfool_eval.min(setup.test.len());
    let (x, y) = setup.test.slice(0, n)?;
    println!(
        "cifarnet baseline accuracy: {}%\n",
        pct(baseline.test_accuracy)
    );

    let mut table = Table::new(
        "Fraction of activations at the format's saturation ceiling",
        &[
            "bitwidth",
            "ceiling",
            "clean saturated%",
            "adversarial saturated%",
            "clean acc%",
            "adv acc%",
        ],
    );
    for bitwidth in [4u32, 6, 8, 12] {
        let fmt = QFormat::for_bitwidth(bitwidth)?;
        let mut model = baseline.instantiate()?;
        Compression::Quant {
            bitwidth,
            weights_only: false,
        }
        .apply(&mut model, &setup.train, &finetune_cfg)?;

        let attack = PaperParams::build_adapted(NetKind::CifarNet, AttackKind::Ifgsm);
        let adv = attack.generate(&mut model, &x, &y)?;

        let clean_acts = activation_values(&mut model, &x)?;
        let clean_logits_acc = {
            let logits = model.forward(&x, advcomp_nn::Mode::Eval)?;
            advcomp_nn::accuracy(&logits, &y)?
        };
        let adv_acts = activation_values(&mut model, &adv)?;
        let adv_acc = {
            let logits = model.forward(&adv, advcomp_nn::Mode::Eval)?;
            advcomp_nn::accuracy(&logits, &y)?
        };

        table.push_row(vec![
            bitwidth.to_string(),
            format!("{:.3}", fmt.max_value()),
            pct(saturation_fraction(&clean_acts, fmt)),
            pct(saturation_fraction(&adv_acts, fmt)),
            pct(clean_logits_acc),
            pct(adv_acc),
        ]);
    }

    print!("{}", table.to_markdown());
    table.write_csv(&opts.csv_path("clipping"))?;
    println!("\nwrote {}", opts.csv_path("clipping").display());
    Ok(())
}
