//! Regenerates **Table 1** of the paper: the attack hyper-parameters used
//! by every experiment.

use advcomp_attacks::{AttackKind, NetKind, PaperParams};
use advcomp_bench::{banner, ExhibitOptions};
use advcomp_core::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner("Table 1", "Attack hyper-parameters", &opts);

    let mut table = Table::new(
        "Attack hyper-parameters (paper Table 1)",
        &["network", "attack", "epsilon", "iterations"],
    );
    for net in [NetKind::LeNet5, NetKind::CifarNet] {
        for kind in AttackKind::ALL {
            let p = PaperParams::lookup(net, kind);
            table.push_row(vec![
                net.id().into(),
                kind.id().into(),
                format!("{}", p.epsilon),
                p.iterations.to_string(),
            ]);
        }
    }
    print!("{}", table.to_markdown());
    table.write_csv(&opts.csv_path("table1"))?;
    println!("\nwrote {}", opts.csv_path("table1").display());
    Ok(())
}
