//! Digest of all generated exhibits: reads `results/*.csv` and prints one
//! compact paper-vs-reproduction verdict table (the machine-checkable
//! backbone of EXPERIMENTS.md).

use advcomp_bench::ExhibitOptions;
use advcomp_core::report::Table;
use std::collections::HashMap;
use std::path::Path;

/// Minimal CSV reader for the files this workspace writes (no embedded
/// newlines; quotes only around comma-bearing cells).
fn read_csv(path: &Path) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let parse = |line: &str| -> Vec<String> {
        let mut out = Vec::new();
        let mut cell = String::new();
        let mut quoted = false;
        for ch in line.chars() {
            match ch {
                '"' => quoted = !quoted,
                ',' if !quoted => out.push(std::mem::take(&mut cell)),
                _ => cell.push(ch),
            }
        }
        out.push(cell);
        out
    };
    let headers = parse(lines.next()?);
    let rows = lines.map(parse).collect();
    Some((headers, rows))
}

/// Pulls one named numeric column as f64, keyed by a composite of the other
/// selector columns.
fn column_map(
    headers: &[String],
    rows: &[Vec<String>],
    keys: &[&str],
    value: &str,
) -> HashMap<String, f64> {
    let key_idx: Vec<usize> = keys
        .iter()
        .filter_map(|k| headers.iter().position(|h| h == k))
        .collect();
    let val_idx = headers.iter().position(|h| h == value);
    let mut out = HashMap::new();
    if key_idx.len() != keys.len() {
        return out;
    }
    let Some(val_idx) = val_idx else { return out };
    for row in rows {
        if row.len() <= val_idx {
            continue;
        }
        let key = key_idx
            .iter()
            .map(|&i| row[i].as_str())
            .collect::<Vec<_>>()
            .join("/");
        if let Ok(v) = row[val_idx].parse::<f64>() {
            out.insert(key, v);
        }
    }
    out
}

fn verdict(ok: bool) -> String {
    if ok {
        "✓".into()
    } else {
        "✗ (check data)".into()
    }
}

fn main() {
    let opts = ExhibitOptions::from_args();
    let dir = &opts.results_dir;
    let mut table = Table::new(
        "Paper-claim verdicts from generated CSVs",
        &["exhibit", "claim", "measured", "verdict"],
    );

    // Figure 2: attacks transfer at moderate density; sparse models stop
    // transferring to the baseline.
    if let Some((h, rows)) = read_csv(&dir.join("fig2.csv")) {
        let s3 = column_map(&h, &rows, &["net", "attack", "density"], "comp_to_full");
        if let (Some(&dense), Some(&sparse)) =
            (s3.get("lenet5/ifgsm/1"), s3.get("lenet5/ifgsm/0.02"))
        {
            table.push_row(vec![
                "fig2".into(),
                "sparse models' samples stop working on baseline".into(),
                format!(
                    "comp→full adv acc {:.0}% (d=1.0) vs {:.0}% (d=0.02)",
                    100.0 * dense,
                    100.0 * sparse
                ),
                verdict(sparse > dense + 0.3),
            ]);
        }
    }

    // Figure 5: 4-bit clipping defence exists for weights+activations...
    let wa4 = read_csv(&dir.join("fig5.csv"))
        .map(|(h, rows)| column_map(&h, &rows, &["net", "attack", "bitwidth"], "comp_to_full"));
    if let Some(wa) = &wa4 {
        if let (Some(&b4), Some(&b32)) = (wa.get("lenet5/ifgsm/4"), wa.get("lenet5/ifgsm/32")) {
            table.push_row(vec![
                "fig5".into(),
                "low integer precision marginally limits transfer".into(),
                format!(
                    "comp→full adv acc {:.0}% (4-bit) vs {:.0}% (float32)",
                    100.0 * b4,
                    100.0 * b32
                ),
                verdict(b4 > b32 + 0.1),
            ]);
        }
    }
    // ... and vanishes when only weights are quantised.
    if let (Some(wa), Some((h, rows))) = (&wa4, read_csv(&dir.join("fig5_weights_only.csv"))) {
        let wo = column_map(&h, &rows, &["net", "attack", "bitwidth"], "comp_to_full");
        if let (Some(&full), Some(&weights_only)) =
            (wa.get("lenet5/ifgsm/4"), wo.get("lenet5/ifgsm/4"))
        {
            table.push_row(vec![
                "fig5 ablation".into(),
                "defence comes from activation clipping".into(),
                format!(
                    "4-bit comp→full: {:.0}% (w+a) vs {:.0}% (weights only)",
                    100.0 * full,
                    100.0 * weights_only
                ),
                verdict(full > weights_only + 0.2),
            ]);
        }
    }

    // Cross-seed: LeNet5 transfer << CifarNet transfer.
    if let Some((h, rows)) = read_csv(&dir.join("crossseed.csv")) {
        let tr = column_map(&h, &rows, &["net"], "transfer_rate");
        if let (Some(&l), Some(&c)) = (tr.get("lenet5"), tr.get("cifarnet")) {
            table.push_row(vec![
                "crossseed".into(),
                "DeepFool cross-seed transfer: LeNet5 ≪ CifarNet".into(),
                format!("{l}% vs {c}%"),
                verdict(l < c),
            ]);
        }
    }

    // Figure 6: 4-bit zero mass far above 16-bit.
    if let Some((h, rows)) = read_csv(&dir.join("fig6.csv")) {
        // fig6.csv is a raw CDF table; check the value-0 cumulative mass.
        let _ = (h, rows); // covered qualitatively in EXPERIMENTS.md
        table.push_row(vec![
            "fig6".into(),
            "CDF series generated (weights + activations × 4 bitwidths)".into(),
            "results/fig6.csv".into(),
            "✓".into(),
        ]);
    }

    if table.rows.is_empty() {
        println!(
            "no CSVs found under {} — run the exhibit binaries first",
            dir.display()
        );
        return;
    }
    print!("{}", table.to_markdown());
}
