//! Regenerates **Figure 5**: transferability properties when quantising
//! both weights and activations.
//!
//! Sweeps fixed-point bitwidth (paper §3.2 integer-bit schedule; 32 denotes
//! the float32 baseline) for both networks and all three attacks. Pass
//! `--weights-only` for the ablation that leaves activations in float32 —
//! isolating the activation-clipping defence the paper credits in §4.2.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_bench::{banner, bitwidth_grid, run_matrix, ExhibitOptions, RunSummary};
use advcomp_core::plot::{ascii_chart, Series};
use advcomp_core::report::{pct, Table};
use advcomp_core::sweep::TransferMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    let weights_only = opts.has_flag("--weights-only");
    let what = if weights_only {
        "weights-only quantisation (ablation)"
    } else {
        "quantising both weights and activations"
    };
    banner("Figure 5", what, &opts);

    let bitwidths = bitwidth_grid();
    let mut csv = Table::new(
        format!("Figure 5 ({what})"),
        &[
            "net",
            "attack",
            "bitwidth",
            "compression",
            "base_acc",
            "comp_to_comp",
            "full_to_comp",
            "comp_to_full",
        ],
    );

    let name = if weights_only {
        "fig5_weights_only"
    } else {
        "fig5"
    };
    let mut summary = RunSummary::new(name, &opts);
    let nets: Vec<NetKind> = if opts.has_flag("--lenet5-only") {
        vec![NetKind::LeNet5]
    } else if opts.has_flag("--cifarnet-only") {
        vec![NetKind::CifarNet]
    } else {
        vec![NetKind::LeNet5, NetKind::CifarNet]
    };
    for net in nets {
        let matrix = if weights_only {
            TransferMatrix::quantisation_weights_only(net, AttackKind::ALL.to_vec(), &bitwidths)
        } else {
            TransferMatrix::quantisation(net, AttackKind::ALL.to_vec(), &bitwidths)
        };
        let started = std::time::Instant::now();
        let run = run_matrix(&matrix, &opts)?;
        summary.absorb(&run);
        let results = run.results;
        println!(
            "{}: baseline accuracy {}% (final training loss {:.4}) [{:.0}s]\n",
            net.id(),
            pct(results[0].baseline_accuracy),
            results[0].baseline_loss,
            started.elapsed().as_secs_f64(),
        );
        for result in &results {
            let mut table = Table::new(
                format!("{} / {} — accuracy vs bitwidth", net.id(), result.attack),
                &[
                    "bitwidth",
                    "base_acc%",
                    "comp→comp%",
                    "full→comp%",
                    "comp→full%",
                ],
            );
            for p in &result.points {
                table.push_row(vec![
                    format!("{:.0}", p.x),
                    pct(p.base_accuracy),
                    pct(p.comp_to_comp),
                    pct(p.full_to_comp),
                    pct(p.comp_to_full),
                ]);
                csv.push_row(vec![
                    result.net.clone(),
                    result.attack.clone(),
                    format!("{}", p.x),
                    p.compression.clone(),
                    format!("{}", p.base_accuracy),
                    format!("{}", p.comp_to_comp),
                    format!("{}", p.full_to_comp),
                    format!("{}", p.comp_to_full),
                ]);
            }
            print!("{}", table.to_markdown());
            println!();
            // Render the same panel as the paper draws it: accuracy vs
            // sweep coordinate, one glyph per line.
            let series = vec![
                Series::new(
                    "base acc",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.base_accuracy))
                        .collect(),
                ),
                Series::new(
                    "comp->comp (S1)",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.comp_to_comp))
                        .collect(),
                ),
                Series::new(
                    "full->comp (S2)",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.full_to_comp))
                        .collect(),
                ),
                Series::new(
                    "comp->full (S3)",
                    result
                        .points
                        .iter()
                        .map(|p| (p.x, p.comp_to_full))
                        .collect(),
                ),
            ];
            println!(
                "{}",
                ascii_chart(
                    &format!(
                        "{} / {} (y: accuracy, x: bitwidth)",
                        net.id(),
                        result.attack
                    ),
                    &series,
                    60,
                    14,
                )
            );
        }
    }

    csv.write_csv(&opts.csv_path(name))?;
    println!("wrote {}", opts.csv_path(name).display());
    let summary_path = summary.write(&opts)?;
    println!(
        "wrote {} (resumed: {}, computed: {}, failed: {})",
        summary_path.display(),
        summary.resumed,
        summary.computed,
        summary.failed.len()
    );
    Ok(())
}
