//! Regenerates **Figure 4**: CifarNet base accuracy versus adversarial
//! accuracy per pruning density (IFGSM and DeepFool), the view in which the
//! paper reads off the "preferred density" protective knee.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_bench::{banner, density_grid, ExhibitOptions};
use advcomp_core::report::{pct, Table};
use advcomp_core::sweep::TransferMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner(
        "Figure 4",
        "CifarNet base vs adversarial accuracy (IFGSM, DeepFool)",
        &opts,
    );

    let matrix = TransferMatrix::pruning(
        NetKind::CifarNet,
        vec![AttackKind::Ifgsm, AttackKind::DeepFool],
        &density_grid(),
    );
    let results = matrix.run(&opts.scale)?;

    let mut csv = Table::new(
        "Figure 4 (CifarNet base accuracy vs adversarial accuracy)",
        &[
            "attack",
            "density",
            "base_acc",
            "comp_to_comp",
            "full_to_comp",
            "comp_to_full",
        ],
    );
    for result in &results {
        let mut table = Table::new(
            format!(
                "{} — (base accuracy, adversarial accuracy) per density",
                result.attack
            ),
            &[
                "density",
                "base_acc%",
                "comp→comp%",
                "full→comp%",
                "comp→full%",
            ],
        );
        // Figure 4 plots base accuracy on the horizontal axis; keep the
        // rows sorted by base accuracy for readability.
        let mut points = result.points.clone();
        points.sort_by(|a, b| a.base_accuracy.total_cmp(&b.base_accuracy));
        for p in &points {
            table.push_row(vec![
                format!("{:.2}", p.x),
                pct(p.base_accuracy),
                pct(p.comp_to_comp),
                pct(p.full_to_comp),
                pct(p.comp_to_full),
            ]);
            csv.push_row(vec![
                result.attack.clone(),
                format!("{}", p.x),
                format!("{}", p.base_accuracy),
                format!("{}", p.comp_to_comp),
                format!("{}", p.full_to_comp),
                format!("{}", p.comp_to_full),
            ]);
        }
        print!("{}", table.to_markdown());
        println!();
    }

    csv.write_csv(&opts.csv_path("fig4"))?;
    println!("wrote {}", opts.csv_path("fig4").display());
    Ok(())
}
