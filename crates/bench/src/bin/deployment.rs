//! Extension exhibit: deployment storage of compressed models.
//!
//! Not a figure in the paper, but the premise of its introduction — "pruned
//! and quantised models are becoming ubiquitous on edge devices" via
//! EIE/SCNN-style encodings. This binary compresses LeNet5 across the
//! Figure 2/5 grids and reports what actually ships: dense float32 vs CSR
//! sparse vs packed fixed-point vs Huffman-coded bytes, with compression
//! ratios in the 9–13× range Deep Compression reports for comparable
//! settings.

use advcomp_attacks::NetKind;
use advcomp_bench::{banner, ExhibitOptions};
use advcomp_core::report::Table;
use advcomp_core::{Compression, TaskSetup, TrainedModel};
use advcomp_qformat::QFormat;
use advcomp_sparse::ModelSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExhibitOptions::from_args();
    banner(
        "Deployment",
        "storage of compressed LeNet5 artefacts",
        &opts,
    );

    let setup = TaskSetup::new(NetKind::LeNet5, &opts.scale);
    let baseline = TrainedModel::train(&setup, &opts.scale, 7)?;
    let finetune_cfg = setup.finetune_config(&opts.scale);
    println!(
        "baseline accuracy: {:.2}%\n",
        100.0 * baseline.test_accuracy
    );

    let mut table = Table::new(
        "Shipping sizes per compression recipe (weights only)",
        &[
            "recipe",
            "acc%",
            "density",
            "dense f32 B",
            "CSR B",
            "packed Qbits B",
            "huffman B",
            "entropy b/sym",
            "best ratio",
        ],
    );

    let mut recipes: Vec<(String, Option<Compression>, Option<u32>)> =
        vec![("float32 dense".into(), None, None)];
    for d in [0.3f64, 0.1, 0.05] {
        recipes.push((
            format!("DNS d={d}"),
            Some(Compression::DnsPrune { density: d }),
            None,
        ));
    }
    for bw in [8u32, 4] {
        recipes.push((
            format!("quant {bw}-bit"),
            Some(Compression::Quant {
                bitwidth: bw,
                weights_only: false,
            }),
            Some(bw),
        ));
    }
    // The full Deep-Compression-style pipeline: prune, then post-training
    // quantise (preserving zeros), then entropy-code.
    recipes.push((
        "DNS d=0.1 + 8-bit".into(),
        Some(Compression::DnsPrune { density: 0.1 }),
        Some(8),
    ));

    for (name, recipe, bitwidth) in recipes {
        let mut model = baseline.instantiate()?;
        if let Some(recipe) = &recipe {
            recipe.apply(&mut model, &setup.train, &finetune_cfg)?;
        }
        if let (Some(bw), Some(Compression::DnsPrune { .. })) = (bitwidth, &recipe) {
            // Stacked pipeline: quantise post-training to keep the mask.
            advcomp_compress::Quantizer::for_bitwidth(bw)?.quantize(&mut model);
        }
        let fmt = bitwidth.map(QFormat::for_bitwidth).transpose()?;
        let report = ModelSize::measure(&model, fmt)?;
        let acc = advcomp_core::evaluate_model(&mut model, &setup.test, 64)?;
        table.push_row(vec![
            name,
            format!("{:.2}", 100.0 * acc),
            format!(
                "{:.3}",
                report.nonzero as f64 / report.elements.max(1) as f64
            ),
            report.dense_f32_bytes.to_string(),
            report.csr_bytes.to_string(),
            report.quantized_bytes.map_or("-".into(), |v| v.to_string()),
            report.huffman_bytes.map_or("-".into(), |v| v.to_string()),
            report
                .code_entropy_bits
                .map_or("-".into(), |v| format!("{v:.2}")),
            format!("{:.1}x", report.best_ratio()),
        ]);
    }

    print!("{}", table.to_markdown());
    table.write_csv(&opts.csv_path("deployment"))?;
    println!("\nwrote {}", opts.csv_path("deployment").display());
    Ok(())
}
