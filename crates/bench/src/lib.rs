//! Shared plumbing for the exhibit binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it: `table1`, `fig2`, `fig3`, `fig4`, `fig5`, `fig6` and
//! `crossseed`. Each prints the paper's rows/series as a Markdown table and
//! writes a CSV under `results/`. Criterion micro-benchmarks for the
//! underlying kernels live in `benches/`.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p advcomp-bench --bin fig2 -- --scale quick
//! ADVCOMP_SCALE=paper cargo run --release -p advcomp-bench --bin fig5
//! ```

use advcomp_core::resilience::RetryPolicy;
use advcomp_core::sweep::{MatrixRun, PointFailure, RunConfig, TransferMatrix};
use advcomp_core::ExperimentScale;
use serde::Serialize;
use std::path::PathBuf;

/// Parsed command-line options shared by all exhibit binaries.
#[derive(Debug, Clone)]
pub struct ExhibitOptions {
    /// Scaling profile.
    pub scale: ExperimentScale,
    /// Name of the selected profile (for logging).
    pub scale_name: String,
    /// Output directory for CSV files.
    pub results_dir: PathBuf,
    /// Checkpoint/resume journal directory (`--run-dir`); sweep exhibits
    /// persist each completed point here and skip it on re-runs.
    pub run_dir: Option<PathBuf>,
    /// Extra flags (exhibit-specific, e.g. `--weights-only`).
    pub flags: Vec<String>,
}

impl ExhibitOptions {
    /// Parses `--scale tiny|quick|paper` (default: env `ADVCOMP_SCALE`,
    /// then `quick`), `--results <dir>`, `--run-dir <dir>` and collects
    /// remaining flags.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale_name = std::env::var("ADVCOMP_SCALE").unwrap_or_else(|_| "quick".into());
        let mut results_dir = PathBuf::from("results");
        let mut run_dir = None;
        let mut flags = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = it.next() {
                        scale_name = v;
                    }
                }
                "--results" => {
                    if let Some(v) = it.next() {
                        results_dir = PathBuf::from(v);
                    }
                }
                "--run-dir" => {
                    if let Some(v) = it.next() {
                        run_dir = Some(PathBuf::from(v));
                    }
                }
                other => flags.push(other.to_string()),
            }
        }
        let scale = match scale_name.as_str() {
            "paper" => ExperimentScale::paper(),
            "tiny" => ExperimentScale::tiny(),
            "quick" => ExperimentScale::quick(),
            other => {
                eprintln!(
                    "warning: unrecognised scale profile '{other}' \
                     (expected tiny|quick|paper); falling back to 'quick'"
                );
                scale_name = "quick".into();
                ExperimentScale::quick()
            }
        };
        ExhibitOptions {
            scale,
            scale_name,
            results_dir,
            run_dir,
            flags,
        }
    }

    /// `true` when `flag` was passed on the command line.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The value following `flag` (e.g. `--dist 3`), if both are present.
    pub fn flag_value(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|f| f == flag)
            .and_then(|i| self.flags.get(i + 1))
            .map(String::as_str)
    }

    /// Worker count from `--dist N`; `None` when absent or unparseable
    /// (single-process execution).
    pub fn dist_workers(&self) -> Option<usize> {
        self.flag_value("--dist")
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
    }

    /// Path for an exhibit's CSV output.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.results_dir.join(format!("{name}.csv"))
    }
}

/// Runs `matrix` under the full resilience stack (supervised workers with
/// retries; journalled checkpoint/resume when `--run-dir` was given) and
/// prints the resilience bookkeeping — `resumed`/`computed` counts, failed
/// points, health incidents — before handing the curves back. With
/// `--dist N` (requires `--run-dir`), execution goes through the
/// lease-based coordinator with `N` local worker threads instead; the
/// curves are bit-identical either way.
///
/// # Errors
///
/// Propagates configuration, baseline-training and journal errors;
/// per-point failures are reported in the returned [`MatrixRun`] instead.
pub fn run_matrix(
    matrix: &TransferMatrix,
    opts: &ExhibitOptions,
) -> advcomp_core::Result<MatrixRun> {
    let run = if let Some(workers) = opts.dist_workers() {
        // `--dist N`: run the same matrix through the lease-based
        // coordinator with N local worker threads. The journal is the
        // idempotency story, so a run directory is mandatory here.
        let Some(run_dir) = opts.run_dir.clone() else {
            return Err(advcomp_core::CoreError::InvalidConfig(
                "--dist requires --run-dir <dir> (the journal provides exactly-once results)"
                    .into(),
            ));
        };
        let cfg = advcomp_core::dist::DistRunConfig::new(run_dir);
        let outcome = advcomp_core::dist::run_local(matrix, &opts.scale, &cfg, workers)?;
        let r = &outcome.report;
        println!(
            "dist: {workers} worker(s) — remote {}, solo {}, leases {} \
             (expired {}, redispatched {}, speculative {}), workers lost {}",
            r.computed_remote,
            r.computed_solo,
            r.leases_granted,
            r.leases_expired,
            r.redispatches,
            r.speculative,
            r.workers_lost
        );
        outcome.run
    } else {
        let cfg = RunConfig {
            seed: 7,
            run_dir: opts.run_dir.clone(),
            retry: RetryPolicy::sweep_default(),
        };
        matrix.run_resilient(&opts.scale, &cfg)?
    };
    if opts.run_dir.is_some() {
        println!(
            "journal: resumed {} point(s), computed {}",
            run.resumed, run.computed
        );
    }
    for f in &run.failed {
        eprintln!(
            "warning: sweep point x={} ({}) failed after {} attempt(s): {}",
            f.x, f.compression, f.attempts, f.error
        );
    }
    for h in &run.health {
        eprintln!("health: {h}");
    }
    Ok(run)
}

/// Aggregated resilience summary across an exhibit's matrices, written as
/// JSON next to the CSV so re-runs document what was resumed, what was
/// recomputed and what failed.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Exhibit name (e.g. `fig2`).
    pub exhibit: String,
    /// Scale profile the run used.
    pub scale: String,
    /// Points loaded from the journal instead of recomputed.
    pub resumed: usize,
    /// Points executed this run.
    pub computed: usize,
    /// Permanently-failed points with their final error and attempt count.
    pub failed: Vec<PointFailure>,
    /// Resilience incidents (rollbacks, guard events, journal degradations).
    pub health: Vec<String>,
}

impl RunSummary {
    /// An empty summary for `exhibit`.
    pub fn new(exhibit: &str, opts: &ExhibitOptions) -> Self {
        RunSummary {
            exhibit: exhibit.into(),
            scale: opts.scale_name.clone(),
            resumed: 0,
            computed: 0,
            failed: Vec::new(),
            health: Vec::new(),
        }
    }

    /// Folds one matrix run's bookkeeping into the summary.
    pub fn absorb(&mut self, run: &MatrixRun) {
        self.resumed += run.resumed;
        self.computed += run.computed;
        self.failed.extend(run.failed.iter().cloned());
        self.health.extend(run.health.iter().cloned());
    }

    /// Writes the summary as `<results>/<exhibit>_run.json` (crash-safely)
    /// and reports the path.
    ///
    /// # Errors
    ///
    /// Returns I/O errors.
    pub fn write(&self, opts: &ExhibitOptions) -> advcomp_core::Result<PathBuf> {
        let path = opts.results_dir.join(format!("{}_run.json", self.exhibit));
        advcomp_core::report::write_json(self, &path)?;
        Ok(path)
    }
}

/// Prints a standard exhibit banner.
pub fn banner(exhibit: &str, what: &str, opts: &ExhibitOptions) {
    println!("=== {exhibit}: {what} ===");
    println!(
        "scale profile: {} (train={}, test={}, eval={}, epochs={}/{})",
        opts.scale_name,
        opts.scale.train_size,
        opts.scale.test_size,
        opts.scale.attack_eval,
        opts.scale.baseline_epochs,
        opts.scale.finetune_epochs
    );
    println!();
}

/// The density grid used by Figures 2 and 4 (paper sweeps densities from
/// 1.0 down to the low single-percent range).
pub fn density_grid() -> Vec<f64> {
    vec![1.0, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02]
}

/// The bitwidth grid used by Figure 5 (32 = float32 baseline).
pub fn bitwidth_grid() -> Vec<u32> {
    vec![4, 6, 8, 12, 16, 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_paper_ranges() {
        let d = density_grid();
        assert_eq!(d[0], 1.0);
        assert!(*d.last().unwrap() <= 0.02);
        let b = bitwidth_grid();
        assert!(b.contains(&4) && b.contains(&8) && b.contains(&32));
    }

    #[test]
    fn csv_path_joins() {
        let opts = ExhibitOptions {
            scale: ExperimentScale::tiny(),
            scale_name: "tiny".into(),
            results_dir: PathBuf::from("/tmp/r"),
            run_dir: None,
            flags: vec!["--weights-only".into()],
        };
        assert_eq!(opts.csv_path("fig2"), PathBuf::from("/tmp/r/fig2.csv"));
        assert!(opts.has_flag("--weights-only"));
        assert!(!opts.has_flag("--nope"));
    }
}
