//! Shared plumbing for the exhibit binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it: `table1`, `fig2`, `fig3`, `fig4`, `fig5`, `fig6` and
//! `crossseed`. Each prints the paper's rows/series as a Markdown table and
//! writes a CSV under `results/`. Criterion micro-benchmarks for the
//! underlying kernels live in `benches/`.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p advcomp-bench --bin fig2 -- --scale quick
//! ADVCOMP_SCALE=paper cargo run --release -p advcomp-bench --bin fig5
//! ```

use advcomp_core::ExperimentScale;
use std::path::PathBuf;

/// Parsed command-line options shared by all exhibit binaries.
#[derive(Debug, Clone)]
pub struct ExhibitOptions {
    /// Scaling profile.
    pub scale: ExperimentScale,
    /// Name of the selected profile (for logging).
    pub scale_name: String,
    /// Output directory for CSV files.
    pub results_dir: PathBuf,
    /// Extra flags (exhibit-specific, e.g. `--weights-only`).
    pub flags: Vec<String>,
}

impl ExhibitOptions {
    /// Parses `--scale tiny|quick|paper` (default: env `ADVCOMP_SCALE`,
    /// then `quick`), `--results <dir>` and collects remaining flags.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale_name = std::env::var("ADVCOMP_SCALE").unwrap_or_else(|_| "quick".into());
        let mut results_dir = PathBuf::from("results");
        let mut flags = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = it.next() {
                        scale_name = v;
                    }
                }
                "--results" => {
                    if let Some(v) = it.next() {
                        results_dir = PathBuf::from(v);
                    }
                }
                other => flags.push(other.to_string()),
            }
        }
        let scale = match scale_name.as_str() {
            "paper" => ExperimentScale::paper(),
            "tiny" => ExperimentScale::tiny(),
            "quick" => ExperimentScale::quick(),
            other => {
                eprintln!(
                    "warning: unrecognised scale profile '{other}' \
                     (expected tiny|quick|paper); falling back to 'quick'"
                );
                scale_name = "quick".into();
                ExperimentScale::quick()
            }
        };
        ExhibitOptions {
            scale,
            scale_name,
            results_dir,
            flags,
        }
    }

    /// `true` when `flag` was passed on the command line.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Path for an exhibit's CSV output.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.results_dir.join(format!("{name}.csv"))
    }
}

/// Prints a standard exhibit banner.
pub fn banner(exhibit: &str, what: &str, opts: &ExhibitOptions) {
    println!("=== {exhibit}: {what} ===");
    println!(
        "scale profile: {} (train={}, test={}, eval={}, epochs={}/{})",
        opts.scale_name,
        opts.scale.train_size,
        opts.scale.test_size,
        opts.scale.attack_eval,
        opts.scale.baseline_epochs,
        opts.scale.finetune_epochs
    );
    println!();
}

/// The density grid used by Figures 2 and 4 (paper sweeps densities from
/// 1.0 down to the low single-percent range).
pub fn density_grid() -> Vec<f64> {
    vec![1.0, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02]
}

/// The bitwidth grid used by Figure 5 (32 = float32 baseline).
pub fn bitwidth_grid() -> Vec<u32> {
    vec![4, 6, 8, 12, 16, 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_paper_ranges() {
        let d = density_grid();
        assert_eq!(d[0], 1.0);
        assert!(*d.last().unwrap() <= 0.02);
        let b = bitwidth_grid();
        assert!(b.contains(&4) && b.contains(&8) && b.contains(&32));
    }

    #[test]
    fn csv_path_joins() {
        let opts = ExhibitOptions {
            scale: ExperimentScale::tiny(),
            scale_name: "tiny".into(),
            results_dir: PathBuf::from("/tmp/r"),
            flags: vec!["--weights-only".into()],
        };
        assert_eq!(opts.csv_path("fig2"), PathBuf::from("/tmp/r/fig2.csv"));
        assert!(opts.has_flag("--weights-only"));
        assert!(!opts.has_flag("--nope"));
    }
}
