//! The attack × compression detection-evaluation grid.
//!
//! For one trained task this builds the deployed ensemble — dense
//! baseline plus every configured compression variant (optionally plus an
//! adversarially fine-tuned variant) — calibrates the detector on held-out
//! traffic, then measures, for every `(attack, surrogate)` cell, how well
//! the calibrated ensemble guard detects adversarial traffic crafted on
//! that surrogate:
//!
//! * **AUC** of the detector score (attacked vs. clean traffic);
//! * **detection rate** at the calibrated threshold;
//! * **attack success** — fraction of eval samples the baseline
//!   misclassifies after the attack;
//!
//! plus the **UAP transfer matrix**: the fool rate of a universal
//! perturbation crafted on member *i* when applied to member *j* (the
//! paper's transfer question, asked of universal instead of per-sample
//! perturbations).
//!
//! Cells run under the core resilience stack — supervised workers with
//! panic isolation and retries — and, when a run directory is given, a
//! checkpoint/resume journal with the same bit-exact resume guarantee as
//! the sweep grids: per-member records persist as soon as they complete
//! and are loaded instead of recomputed on re-runs.

use crate::{
    detector_by_name, DetectError, Detector, DetectorCalibration, Result, RocCurve, VariantEnsemble,
};
use advcomp_attacks::{craft_uap, Attack, Ifgm, Ifgsm, NetKind, PlannedEval, UapConfig};
use advcomp_core::advtrain::{adversarial_finetune, AdvTrainConfig};
use advcomp_core::journal::{point_key, Journal, PointRecord, PointStatus};
use advcomp_core::{
    run_supervised, Compression, CoreError, ExperimentScale, RetryPolicy, TaskSetup, TrainedModel,
};
use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;
use std::path::PathBuf;

/// Attack identifiers evaluated per grid cell, in column order.
pub const GRID_ATTACKS: [&str; 3] = ["ifgsm", "ifgm", "uap"];

/// Configuration of one detection-grid run.
#[derive(Debug, Clone)]
pub struct DetectionGridConfig {
    /// Network/task to train the ensemble on.
    pub net: NetKind,
    /// Compression recipes producing the ensemble's variants (the
    /// baseline is always a member and needs no entry here).
    pub compressions: Vec<Compression>,
    /// Detector to calibrate and evaluate (a [`detector_by_name`] name).
    pub detector: String,
    /// Per-iteration attack step (IFGSM/IFGM) and UAP L∞ budget.
    pub epsilon: f32,
    /// Iterations for IFGSM/IFGM crafting.
    pub steps: usize,
    /// Epochs of UAP crafting over the crafting set.
    pub uap_epochs: usize,
    /// False-positive-rate budget for the calibrated operating point.
    pub target_fpr: f64,
    /// Seed for training, compression fine-tuning, and UAP crafting.
    pub seed: u64,
    /// Samples (from the training set) used to craft universal
    /// perturbations.
    pub craft_len: usize,
    /// Samples (from the test set) per evaluation batch; the calibration
    /// batch is the *next* `eval_len` test samples, so calibration traffic
    /// is held out from grid measurement.
    pub eval_len: usize,
    /// Also build an adversarially fine-tuned (hardened) variant and
    /// include it as an ensemble member and grid surrogate.
    pub include_hardened: bool,
    /// Journal directory for checkpoint/resume; `None` disables
    /// journaling.
    pub run_dir: Option<PathBuf>,
    /// Retry policy for grid-cell jobs.
    pub retry: RetryPolicy,
}

impl Default for DetectionGridConfig {
    fn default() -> Self {
        DetectionGridConfig {
            net: NetKind::LeNet5,
            compressions: vec![
                Compression::OneShotPrune { density: 0.5 },
                Compression::Quant {
                    bitwidth: 8,
                    weights_only: false,
                },
            ],
            detector: "disagreement".into(),
            epsilon: 0.05,
            steps: 8,
            uap_epochs: 4,
            target_fpr: 0.05,
            seed: 0,
            craft_len: 64,
            eval_len: 64,
            include_hardened: false,
            run_dir: None,
            retry: RetryPolicy::none(),
        }
    }
}

impl DetectionGridConfig {
    fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(DetectError::InvalidConfig(format!(
                "epsilon {} must be positive and finite",
                self.epsilon
            )));
        }
        if self.steps == 0 || self.uap_epochs == 0 {
            return Err(DetectError::InvalidConfig(
                "steps and uap_epochs must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.target_fpr) {
            return Err(DetectError::InvalidConfig(format!(
                "target FPR must be in [0, 1], got {}",
                self.target_fpr
            )));
        }
        if self.craft_len == 0 || self.eval_len < 2 {
            return Err(DetectError::InvalidConfig(
                "craft_len must be >= 1 and eval_len >= 2".into(),
            ));
        }
        if self.compressions.is_empty() && !self.include_hardened {
            return Err(DetectError::InvalidConfig(
                "grid needs at least one compression variant (or include_hardened)".into(),
            ));
        }
        if detector_by_name(&self.detector).is_none() {
            return Err(DetectError::InvalidConfig(format!(
                "unknown detector {:?}",
                self.detector
            )));
        }
        Ok(())
    }
}

/// One `(surrogate, attack)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Ensemble member the attack was crafted on.
    pub surrogate: String,
    /// Attack identifier (one of [`GRID_ATTACKS`]).
    pub attack: &'static str,
    /// Detector-score AUC: attacked vs. clean eval traffic.
    pub auc: f64,
    /// Fraction of attacked traffic flagged at the calibrated threshold.
    pub detection_rate: f64,
    /// Fraction of eval samples the baseline misclassifies post-attack.
    pub attack_success: f64,
}

/// A grid cell that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct GridFailure {
    /// Ensemble member whose cells failed.
    pub surrogate: String,
    /// Final error (or panic) message.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
}

/// Result of one detection-grid run.
#[derive(Debug, Clone)]
pub struct DetectionGrid {
    /// The calibration chosen on held-out traffic (what serve deploys).
    pub calibration: DetectorCalibration,
    /// Ensemble member names, baseline first.
    pub members: Vec<String>,
    /// Clean eval-batch accuracy per member (same order as `members`).
    pub clean_accuracy: Vec<f64>,
    /// All completed cells, surrogate-major in `members` ×
    /// [`GRID_ATTACKS`] order.
    pub cells: Vec<GridCell>,
    /// `transfer[i][j]` = fool rate on member *j* of the UAP crafted on
    /// member *i* (rows for failed members are empty).
    pub transfer: Vec<Vec<f64>>,
    /// Members restored from the journal instead of recomputed.
    pub resumed: usize,
    /// Members whose cells permanently failed.
    pub failed: Vec<GridFailure>,
}

impl DetectionGrid {
    /// The completed cell for `(surrogate, attack)`, if any.
    pub fn cell(&self, surrogate: &str, attack: &str) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| c.surrogate == surrogate && c.attack == attack)
    }
}

/// One ensemble member: name, sweep coordinate, and its model.
struct Member {
    name: String,
    x: f64,
    model: Sequential,
}

/// Per-member outcome produced by one supervised job.
struct MemberOutcome {
    clean_accuracy: f64,
    /// `(auc, detection_rate, attack_success)` per [`GRID_ATTACKS`] entry.
    attacks: Vec<(f64, f64, f64)>,
    /// UAP fool rate on each ensemble member.
    transfer: Vec<f64>,
}

struct PreparedGrid<'a> {
    cfg: &'a DetectionGridConfig,
    members: Vec<Member>,
    x_eval: Tensor,
    y_eval: Vec<usize>,
    x_craft: Tensor,
    y_craft: Vec<usize>,
    sample_shape: Vec<usize>,
    clean_scores: Vec<f64>,
    calibration: DetectorCalibration,
}

fn to_job_error(e: DetectError) -> CoreError {
    CoreError::Job(e.to_string())
}

impl PreparedGrid<'_> {
    fn detector(&self) -> Box<dyn Detector> {
        detector_by_name(&self.cfg.detector).expect("validated detector name")
    }

    /// Journal key for member `i`: hashes everything that determines its
    /// cells, including the detector, attack budgets, operating point, and
    /// ensemble roster (the transfer row's length and meaning depend on
    /// the full member list).
    fn key(&self, i: usize, scale: &ExperimentScale) -> String {
        let roster: Vec<&str> = self.members.iter().map(|m| m.name.as_str()).collect();
        let recipe = format!(
            "detect|member={}|det={}|eps={:?}|steps={}|uap_epochs={}|fpr={:?}|craft={}|eval={}|roster={}",
            self.members[i].name,
            self.cfg.detector,
            self.cfg.epsilon,
            self.cfg.steps,
            self.cfg.uap_epochs,
            self.cfg.target_fpr,
            self.cfg.craft_len,
            self.cfg.eval_len,
            roster.join(","),
        );
        point_key(
            &format!("detect:{}", self.net_id()),
            &GRID_ATTACKS,
            self.members[i].x,
            &recipe,
            self.cfg.seed,
            scale,
        )
    }

    fn net_id(&self) -> &'static str {
        self.cfg.net.id()
    }

    /// A journalled record is resumable only if it carries exactly the
    /// triples this roster expects (3 attacks + one transfer entry per
    /// member).
    fn resumable(&self, rec: &PointRecord) -> bool {
        rec.status == PointStatus::Ok
            && rec.scenarios.len() == GRID_ATTACKS.len() + self.members.len()
    }

    /// Computes every cell for member `i`: craft each attack on the
    /// member's model, score the attacked traffic with the *full*
    /// ensemble, and measure the UAP's transfer to every member.
    fn run_member(&self, i: usize) -> advcomp_core::Result<MemberOutcome> {
        self.run_member_inner(i).map_err(to_job_error)
    }

    fn run_member_inner(&self, i: usize) -> Result<MemberOutcome> {
        let detector = self.detector();
        // Each job owns clones: crafting mutates gradient state and plans
        // are per-thread.
        let mut surrogate = self.members[i].model.clone();
        let mut ensemble = VariantEnsemble::new(
            self.members[0].name.clone(),
            self.members[0].model.clone(),
            &self.sample_shape,
        );
        for m in &self.members[1..] {
            ensemble.push_variant(m.name.clone(), m.model.clone());
        }

        let clean_accuracy = PlannedEval::compile(&self.members[i].model, &self.sample_shape)
            .accuracy(
                &mut self.members[i].model.clone(),
                &self.x_eval,
                &self.y_eval,
            )?;

        let mut attacks = Vec::with_capacity(GRID_ATTACKS.len());
        let mut transfer = Vec::with_capacity(self.members.len());
        for attack in GRID_ATTACKS {
            let adv = match attack {
                "ifgsm" => Ifgsm::new(self.cfg.epsilon, self.cfg.steps)?.generate(
                    &mut surrogate,
                    &self.x_eval,
                    &self.y_eval,
                )?,
                "ifgm" => Ifgm::new(self.cfg.epsilon, self.cfg.steps)?.generate(
                    &mut surrogate,
                    &self.x_eval,
                    &self.y_eval,
                )?,
                "uap" => {
                    let uap_cfg = UapConfig {
                        epsilon: self.cfg.epsilon,
                        step: self.cfg.epsilon / 4.0,
                        epochs: self.cfg.uap_epochs,
                        batch: 32,
                        seed: self.cfg.seed,
                    };
                    let uap = craft_uap(&mut surrogate, &self.x_craft, &self.y_craft, &uap_cfg)?;
                    // The universal delta is what transfers: measure its
                    // fool rate on every member while we hold it.
                    for m in &self.members {
                        transfer.push(uap.fool_rate(&mut m.model.clone(), &self.x_eval)?);
                    }
                    uap.apply(&self.x_eval)?
                }
                _ => unreachable!("GRID_ATTACKS is fixed"),
            };
            let scores = ensemble.score(detector.as_ref(), &adv)?;
            let auc = RocCurve::from_scores(&self.clean_scores, &scores)?.auc();
            let detection_rate = scores
                .iter()
                .filter(|&&s| s >= self.calibration.threshold)
                .count() as f64
                / scores.len() as f64;
            let attack_success = 1.0 - ensemble.baseline_accuracy(&adv, &self.y_eval)?;
            attacks.push((auc, detection_rate, attack_success));
        }
        Ok(MemberOutcome {
            clean_accuracy,
            attacks,
            transfer,
        })
    }

    fn record_ok(
        &self,
        i: usize,
        out: &MemberOutcome,
        attempts: u32,
        scale: &ExperimentScale,
    ) -> PointRecord {
        let mut scenarios = out.attacks.clone();
        scenarios.extend(out.transfer.iter().map(|&f| (f, 0.0, 0.0)));
        PointRecord {
            key: self.key(i, scale),
            x: self.members[i].x,
            compression: self.members[i].name.clone(),
            status: PointStatus::Ok,
            attempts,
            base_accuracy: out.clean_accuracy,
            scenarios,
            health: Vec::new(),
            error: None,
        }
    }

    fn outcome_from_record(&self, rec: &PointRecord) -> MemberOutcome {
        MemberOutcome {
            clean_accuracy: rec.base_accuracy,
            attacks: rec.scenarios[..GRID_ATTACKS.len()].to_vec(),
            transfer: rec.scenarios[GRID_ATTACKS.len()..]
                .iter()
                .map(|t| t.0)
                .collect(),
        }
    }
}

/// Coordinate a compression recipe occupies on the grid's x axis (density
/// for pruning, bitwidth for quantisation, 1.0 for the identity recipe).
fn coordinate(c: &Compression) -> f64 {
    match c {
        Compression::None => 1.0,
        Compression::DnsPrune { density } | Compression::OneShotPrune { density } => *density,
        Compression::Quant { bitwidth, .. } => f64::from(*bitwidth),
    }
}

/// Trains the task, builds the ensemble, calibrates the detector on
/// held-out traffic, and evaluates every `(attack, surrogate)` cell under
/// the supervised-worker resilience stack (journaled when
/// [`DetectionGridConfig::run_dir`] is set).
///
/// # Errors
///
/// Rejects invalid configurations; propagates training, compression,
/// calibration, and journal errors. Per-cell compute failures do *not*
/// error — they land in [`DetectionGrid::failed`].
pub fn run_detection_grid(
    cfg: &DetectionGridConfig,
    scale: &ExperimentScale,
) -> Result<DetectionGrid> {
    cfg.validate()?;
    let journal = match &cfg.run_dir {
        Some(dir) => Some(Journal::open(dir).map_err(DetectError::Core)?),
        None => None,
    };

    let setup = TaskSetup::new(cfg.net, scale);
    let trained = TrainedModel::train(&setup, scale, cfg.seed)?;
    let baseline = trained.instantiate()?;
    let finetune = setup.finetune_config(scale);

    let mut members = vec![Member {
        name: "baseline".into(),
        x: 1.0,
        model: baseline.clone(),
    }];
    for c in &cfg.compressions {
        let mut model = baseline.clone();
        c.apply(&mut model, &setup.train, &finetune)?;
        members.push(Member {
            name: c.id(),
            x: coordinate(c),
            model,
        });
    }
    if cfg.include_hardened {
        let mut model = baseline.clone();
        let attack = Ifgsm::new(cfg.epsilon, cfg.steps)?;
        let adv_cfg = AdvTrainConfig {
            seed: cfg.seed,
            ..AdvTrainConfig::default()
        };
        adversarial_finetune(&mut model, &setup.train, &attack, &adv_cfg)?;
        members.push(Member {
            name: "hardened".into(),
            x: 0.0,
            model,
        });
    }

    let (x_eval, y_eval) = setup
        .test
        .slice(0, cfg.eval_len)
        .map_err(|e| DetectError::InvalidConfig(format!("eval slice: {e}")))?;
    let (x_cal, y_cal) = setup
        .test
        .slice(cfg.eval_len, cfg.eval_len)
        .map_err(|e| DetectError::InvalidConfig(format!("calibration slice: {e}")))?;
    let (x_craft, y_craft) = setup
        .train
        .slice(0, cfg.craft_len)
        .map_err(|e| DetectError::InvalidConfig(format!("craft slice: {e}")))?;
    let sample_shape: Vec<usize> = x_eval.shape()[1..].to_vec();

    // Calibrate on the held-out batch: clean scores vs. IFGSM-on-baseline
    // scores, operating point at the configured FPR budget.
    let detector = detector_by_name(&cfg.detector).expect("validated detector name");
    let mut ensemble = VariantEnsemble::new(
        members[0].name.clone(),
        members[0].model.clone(),
        &sample_shape,
    );
    for m in &members[1..] {
        ensemble.push_variant(m.name.clone(), m.model.clone());
    }
    let cal_clean = ensemble.score(detector.as_ref(), &x_cal)?;
    let cal_attack = Ifgsm::new(cfg.epsilon, cfg.steps)?;
    let x_cal_adv = cal_attack.generate(&mut members[0].model.clone(), &x_cal, &y_cal)?;
    let cal_adv = ensemble.score(detector.as_ref(), &x_cal_adv)?;
    let calibration =
        DetectorCalibration::calibrate(&cfg.detector, &cal_clean, &cal_adv, cfg.target_fpr)?;

    // Clean reference scores on the *measurement* batch, shared by every
    // cell's AUC computation.
    let clean_scores = ensemble.score(detector.as_ref(), &x_eval)?;

    let prepared = PreparedGrid {
        cfg,
        members,
        x_eval,
        y_eval,
        x_craft,
        y_craft,
        sample_shape,
        clean_scores,
        calibration,
    };

    // Fill member slots from the journal, then compute the rest under
    // supervision.
    let n = prepared.members.len();
    let mut slots: Vec<Option<MemberOutcome>> = (0..n).map(|_| None).collect();
    let mut resumed = 0usize;
    if let Some(j) = &journal {
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some(rec) = j.load(&prepared.key(i, scale)).map_err(DetectError::Core)? {
                if prepared.resumable(&rec) {
                    *slot = Some(prepared.outcome_from_record(&rec));
                    resumed += 1;
                }
            }
        }
    }
    let pending: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
    let jobs: Vec<_> = pending
        .iter()
        .map(|&i| {
            let prepared = &prepared;
            move || prepared.run_member(i)
        })
        .collect();
    let outcomes = run_supervised(jobs, scale.workers(), &cfg.retry);

    let mut failed = Vec::new();
    for (&i, outcome) in pending.iter().zip(outcomes) {
        match outcome {
            Ok((out, attempts)) => {
                if let Some(j) = &journal {
                    // Best-effort persistence, same policy as the sweeps: a
                    // journal-write failure degrades resume, never the run.
                    let _ = j.store(&prepared.record_ok(i, &out, attempts, scale));
                }
                slots[i] = Some(out);
            }
            Err(f) => failed.push(GridFailure {
                surrogate: prepared.members[i].name.clone(),
                error: f.error,
                attempts: f.attempts,
            }),
        }
    }

    let member_names: Vec<String> = prepared.members.iter().map(|m| m.name.clone()).collect();
    let mut cells = Vec::new();
    let mut clean_accuracy = vec![0.0; n];
    let mut transfer = vec![Vec::new(); n];
    for (i, slot) in slots.into_iter().enumerate() {
        let Some(out) = slot else { continue };
        clean_accuracy[i] = out.clean_accuracy;
        transfer[i] = out.transfer;
        for (attack, &(auc, detection_rate, attack_success)) in
            GRID_ATTACKS.iter().zip(&out.attacks)
        {
            cells.push(GridCell {
                surrogate: member_names[i].clone(),
                attack,
                auc,
                detection_rate,
                attack_success,
            });
        }
    }

    Ok(DetectionGrid {
        calibration: prepared.calibration,
        members: member_names,
        clean_accuracy,
        cells,
        transfer,
        resumed,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DetectionGridConfig {
        DetectionGridConfig {
            compressions: vec![Compression::OneShotPrune { density: 0.5 }],
            epsilon: 0.05,
            steps: 6,
            uap_epochs: 2,
            craft_len: 48,
            eval_len: 32,
            seed: 5,
            ..DetectionGridConfig::default()
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let base = tiny_cfg();
        for bad in [
            DetectionGridConfig {
                epsilon: 0.0,
                ..base.clone()
            },
            DetectionGridConfig {
                steps: 0,
                ..base.clone()
            },
            DetectionGridConfig {
                target_fpr: 1.5,
                ..base.clone()
            },
            DetectionGridConfig {
                eval_len: 1,
                ..base.clone()
            },
            DetectionGridConfig {
                compressions: vec![],
                include_hardened: false,
                ..base.clone()
            },
            DetectionGridConfig {
                detector: "nope".into(),
                ..base.clone()
            },
        ] {
            assert!(run_detection_grid(&bad, &ExperimentScale::tiny()).is_err());
        }
    }

    #[test]
    fn grid_runs_and_resumes_bit_exactly() {
        let scale = ExperimentScale::tiny();
        let dir = std::env::temp_dir().join(format!("advcomp_detect_grid_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = DetectionGridConfig {
            run_dir: Some(dir.clone()),
            // Divergence is the continuous score: with a single variant the
            // disagreement score is binary and its tiny-scale AUC is noisy.
            detector: "divergence".into(),
            ..tiny_cfg()
        };
        let grid = run_detection_grid(&cfg, &scale).unwrap();
        assert_eq!(grid.members, vec!["baseline", "oneshot-d0.500"]);
        assert_eq!(grid.resumed, 0);
        assert!(grid.failed.is_empty());
        assert_eq!(grid.cells.len(), 2 * GRID_ATTACKS.len());
        for c in &grid.cells {
            assert!((0.0..=1.0).contains(&c.auc), "{c:?}");
            assert!((0.0..=1.0).contains(&c.detection_rate), "{c:?}");
            assert!((0.0..=1.0).contains(&c.attack_success), "{c:?}");
        }
        // The calibrated threshold honours the FPR budget on its own set.
        assert!(grid.calibration.observed_fpr <= cfg.target_fpr);
        // The white-box IFGSM-on-baseline cell is the calibration's own
        // regime: it must separate well at tiny scale.
        let wb = grid.cell("baseline", "ifgsm").unwrap();
        assert!(wb.auc > 0.6, "white-box AUC collapsed: {wb:?}");
        // Transfer matrix is square with unit-interval entries.
        assert_eq!(grid.transfer.len(), 2);
        for row in &grid.transfer {
            assert_eq!(row.len(), 2);
            assert!(row.iter().all(|f| (0.0..=1.0).contains(f)));
        }
        assert!(
            grid.clean_accuracy.iter().all(|&a| a > 0.5),
            "{:?}",
            grid.clean_accuracy
        );

        // Second run resumes every member from the journal, bit-exactly.
        let again = run_detection_grid(&cfg, &scale).unwrap();
        assert_eq!(again.resumed, 2);
        assert_eq!(again.cells, grid.cells);
        assert_eq!(again.transfer, grid.transfer);
        assert_eq!(again.clean_accuracy, grid.clean_accuracy);
        std::fs::remove_dir_all(&dir).ok();
    }
}
