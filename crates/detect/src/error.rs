use advcomp_attacks::AttackError;
use advcomp_core::CoreError;
use advcomp_nn::NnError;
use advcomp_tensor::TensorError;
use std::fmt;

/// Errors from the detection subsystem.
#[derive(Debug)]
pub enum DetectError {
    /// A model forward failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Attack crafting failed while building evaluation traffic.
    Attack(AttackError),
    /// The core train/compress pipeline failed inside the grid.
    Core(CoreError),
    /// File I/O failed.
    Io(std::io::Error),
    /// A calibration artifact is not decodable (bad magic, truncation,
    /// CRC mismatch). Mirrors `CheckpointError::Corrupt`: corruption is an
    /// explicit error, never a silently-default calibration.
    Artifact(String),
    /// Bad detector/calibration/grid configuration.
    InvalidConfig(String),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Nn(e) => write!(f, "network error: {e}"),
            DetectError::Tensor(e) => write!(f, "tensor error: {e}"),
            DetectError::Attack(e) => write!(f, "attack error: {e}"),
            DetectError::Core(e) => write!(f, "pipeline error: {e}"),
            DetectError::Io(e) => write!(f, "io error: {e}"),
            DetectError::Artifact(msg) => write!(f, "corrupt calibration artifact: {msg}"),
            DetectError::InvalidConfig(msg) => write!(f, "invalid detect configuration: {msg}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Nn(e) => Some(e),
            DetectError::Tensor(e) => Some(e),
            DetectError::Attack(e) => Some(e),
            DetectError::Core(e) => Some(e),
            DetectError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DetectError {
    fn from(e: NnError) -> Self {
        DetectError::Nn(e)
    }
}

impl From<TensorError> for DetectError {
    fn from(e: TensorError) -> Self {
        DetectError::Tensor(e)
    }
}

impl From<AttackError> for DetectError {
    fn from(e: AttackError) -> Self {
        DetectError::Attack(e)
    }
}

impl From<CoreError> for DetectError {
    fn from(e: CoreError) -> Self {
        DetectError::Core(e)
    }
}

impl From<std::io::Error> for DetectError {
    fn from(e: std::io::Error) -> Self {
        DetectError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: DetectError = NnError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("network error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = DetectError::Artifact("crc mismatch".into());
        assert!(e.to_string().contains("corrupt calibration artifact"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
