//! Detector scores over a compression ensemble.
//!
//! A [`Detector`] turns one batch of logits — the dense baseline's plus
//! each compressed variant's, for the same inputs — into one per-sample
//! suspicion score in `[0, 1]`. Scoring is a pure function of logits, so
//! the same detector runs online inside the serve engine (which already
//! has every ensemble member's logits in hand) and offline over a
//! [`VariantEnsemble`] whose forwards go through compiled `advcomp-graph`
//! plans.
//!
//! Three scores are provided:
//!
//! * [`DisagreementDetector`] — the fraction of variants whose top-1 label
//!   disagrees with the baseline's (the serve guard's historical score:
//!   adversarial samples transfer imperfectly across compression levels,
//!   so disagreement is a cheap attack signal);
//! * [`DivergenceDetector`] — mean symmetric KL divergence between the
//!   baseline's and each variant's softmax, squashed to `[0, 1)`; unlike
//!   disagreement it moves *before* the top-1 label flips, so it separates
//!   borderline adversarial traffic at finer granularity;
//! * [`MarginDetector`] — one minus the baseline's top-1/top-2 softmax
//!   margin; a baseline-only energy score that needs no variants at all.

use crate::{DetectError, Result};
use advcomp_attacks::PlannedEval;
use advcomp_nn::{softmax, Sequential};
use advcomp_tensor::Tensor;

/// A per-sample adversarial-suspicion score over ensemble logits.
///
/// `baseline` is `[N, C]` logits of the dense model; `variants` holds the
/// same-shape logits of each compressed variant, in ensemble order.
/// Implementations return one score in `[0, 1]` per row (higher = more
/// suspect) and must be deterministic functions of their inputs.
pub trait Detector: Send + Sync {
    /// Short identifier, e.g. `"disagreement"` — recorded in calibration
    /// artifacts so a serve deployment can verify it loaded the score it
    /// was calibrated for.
    fn name(&self) -> &'static str;

    /// Scores one batch.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] on shape mismatches or (for scores
    /// that need them) an empty variant list.
    fn score(&self, baseline: &Tensor, variants: &[Tensor]) -> Result<Vec<f64>>;
}

fn check_shapes(baseline: &Tensor, variants: &[Tensor]) -> Result<(usize, usize)> {
    if baseline.ndim() != 2 {
        return Err(DetectError::InvalidConfig(format!(
            "detector expects [N, C] logits, got shape {:?}",
            baseline.shape()
        )));
    }
    for v in variants {
        if v.shape() != baseline.shape() {
            return Err(DetectError::InvalidConfig(format!(
                "variant logits shape {:?} does not match baseline {:?}",
                v.shape(),
                baseline.shape()
            )));
        }
    }
    Ok((baseline.shape()[0], baseline.shape()[1]))
}

/// Fraction of variants whose top-1 label disagrees with the baseline's.
///
/// This is the serve engine's ensemble-guard score, factored out so the
/// online guard and the offline calibration pipeline share one
/// implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DisagreementDetector;

impl Detector for DisagreementDetector {
    fn name(&self) -> &'static str {
        "disagreement"
    }

    fn score(&self, baseline: &Tensor, variants: &[Tensor]) -> Result<Vec<f64>> {
        let (n, _) = check_shapes(baseline, variants)?;
        if variants.is_empty() {
            return Err(DetectError::InvalidConfig(
                "disagreement score needs at least one variant".into(),
            ));
        }
        let base = baseline.argmax_rows()?;
        let mut disagree = vec![0usize; n];
        for v in variants {
            for (d, (vl, bl)) in disagree.iter_mut().zip(v.argmax_rows()?.iter().zip(&base)) {
                if vl != bl {
                    *d += 1;
                }
            }
        }
        Ok(disagree
            .into_iter()
            .map(|d| d as f64 / variants.len() as f64)
            .collect())
    }
}

/// Mean symmetric KL divergence between baseline and variant softmax
/// distributions, mapped to `[0, 1)` via `1 - exp(-skl)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DivergenceDetector;

impl Detector for DivergenceDetector {
    fn name(&self) -> &'static str {
        "divergence"
    }

    fn score(&self, baseline: &Tensor, variants: &[Tensor]) -> Result<Vec<f64>> {
        let (n, c) = check_shapes(baseline, variants)?;
        if variants.is_empty() {
            return Err(DetectError::InvalidConfig(
                "divergence score needs at least one variant".into(),
            ));
        }
        let p = softmax(baseline)?;
        let mut acc = vec![0.0f64; n];
        for v in variants {
            let q = softmax(v)?;
            for (row, acc_row) in acc.iter_mut().enumerate() {
                let mut skl = 0.0f64;
                for k in 0..c {
                    // Softmax outputs are strictly positive, but clamp
                    // anyway so a degenerate distribution cannot emit NaN.
                    let pv = f64::from(p.data()[row * c + k]).max(1e-12);
                    let qv = f64::from(q.data()[row * c + k]).max(1e-12);
                    skl += (pv - qv) * (pv / qv).ln();
                }
                *acc_row += skl;
            }
        }
        Ok(acc
            .into_iter()
            .map(|skl| 1.0 - (-(skl / variants.len() as f64)).exp())
            .collect())
    }
}

/// One minus the baseline's top-1/top-2 softmax margin — a baseline-only
/// confidence-energy score (adversarial iterates sit near decision
/// boundaries, where the margin collapses). Ignores variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarginDetector;

impl Detector for MarginDetector {
    fn name(&self) -> &'static str {
        "margin"
    }

    fn score(&self, baseline: &Tensor, variants: &[Tensor]) -> Result<Vec<f64>> {
        let (n, c) = check_shapes(baseline, variants)?;
        if c < 2 {
            return Err(DetectError::InvalidConfig(
                "margin score needs at least two classes".into(),
            ));
        }
        let p = softmax(baseline)?;
        let mut out = Vec::with_capacity(n);
        for row in p.data().chunks(c) {
            let (mut top1, mut top2) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
            for &v in row {
                if v > top1 {
                    top2 = top1;
                    top1 = v;
                } else if v > top2 {
                    top2 = v;
                }
            }
            out.push(f64::from(1.0 - (top1 - top2)).clamp(0.0, 1.0));
        }
        Ok(out)
    }
}

/// Returns the built-in detector with `name`, for wiring a calibration
/// artifact back to its score implementation.
pub fn detector_by_name(name: &str) -> Option<Box<dyn Detector>> {
    match name {
        "disagreement" => Some(Box::new(DisagreementDetector)),
        "divergence" => Some(Box::new(DivergenceDetector)),
        "margin" => Some(Box::new(MarginDetector)),
        _ => None,
    }
}

/// An owning compression ensemble for offline scoring: the dense baseline
/// plus its compressed variants, each paired with a compiled
/// `advcomp-graph` eval plan ([`PlannedEval`]; models the compiler cannot
/// lower fall back to the layer-at-a-time forward transparently).
pub struct VariantEnsemble {
    baseline: (String, Sequential, PlannedEval),
    variants: Vec<(String, Sequential, PlannedEval)>,
    sample_shape: Vec<usize>,
}

impl VariantEnsemble {
    /// Builds the ensemble around `baseline`, compiling its eval plan for
    /// per-sample inputs of `sample_shape` (no batch axis).
    pub fn new(name: impl Into<String>, baseline: Sequential, sample_shape: &[usize]) -> Self {
        let plan = PlannedEval::compile(&baseline, sample_shape);
        VariantEnsemble {
            baseline: (name.into(), baseline, plan),
            variants: Vec::new(),
            sample_shape: sample_shape.to_vec(),
        }
    }

    /// Adds one compressed variant (compiled on insertion).
    pub fn push_variant(&mut self, name: impl Into<String>, model: Sequential) {
        let plan = PlannedEval::compile(&model, &self.sample_shape);
        self.variants.push((name.into(), model, plan));
    }

    /// Ensemble member names, baseline first.
    pub fn names(&self) -> Vec<&str> {
        std::iter::once(self.baseline.0.as_str())
            .chain(self.variants.iter().map(|(n, _, _)| n.as_str()))
            .collect()
    }

    /// Number of compressed variants.
    pub fn num_variants(&self) -> usize {
        self.variants.len()
    }

    /// Mutable access to a member's model (index 0 = baseline, then
    /// variants in insertion order) — attack crafting needs the
    /// forward/backward machinery.
    pub fn model_mut(&mut self, index: usize) -> Option<&mut Sequential> {
        if index == 0 {
            Some(&mut self.baseline.1)
        } else {
            self.variants.get_mut(index - 1).map(|(_, m, _)| m)
        }
    }

    /// Eval logits of every member for `x`: `(baseline, variants)`.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn logits(&mut self, x: &Tensor) -> Result<(Tensor, Vec<Tensor>)> {
        let (_, model, plan) = &mut self.baseline;
        let base = plan.logits(model, x)?;
        let mut variants = Vec::with_capacity(self.variants.len());
        for (_, model, plan) in &mut self.variants {
            variants.push(plan.logits(model, x)?);
        }
        Ok((base, variants))
    }

    /// Per-sample scores of `detector` over the full ensemble for `x`.
    ///
    /// # Errors
    ///
    /// Propagates forward and detector errors.
    pub fn score(&mut self, detector: &dyn Detector, x: &Tensor) -> Result<Vec<f64>> {
        let (base, variants) = self.logits(x)?;
        detector.score(&base, &variants)
    }

    /// Baseline top-1 accuracy on `(x, labels)` (eval plan path).
    ///
    /// # Errors
    ///
    /// Propagates forward errors and label/batch mismatches.
    pub fn baseline_accuracy(&mut self, x: &Tensor, labels: &[usize]) -> Result<f64> {
        let (_, model, plan) = &mut self.baseline;
        plan.accuracy(model, x, labels).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{Dense, Relu};
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(6, 12, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(12, 4, &mut rng)),
        ])
    }

    fn logits(rows: &[[f32; 4]]) -> Tensor {
        Tensor::new(
            &[rows.len(), 4],
            rows.iter().flatten().copied().collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn disagreement_counts_label_flips() {
        let base = logits(&[[5.0, 0.0, 0.0, 0.0], [0.0, 5.0, 0.0, 0.0]]);
        let agree = logits(&[[9.0, 0.0, 0.0, 0.0], [0.0, 9.0, 0.0, 0.0]]);
        let flip_first = logits(&[[0.0, 9.0, 0.0, 0.0], [0.0, 9.0, 0.0, 0.0]]);
        let scores = DisagreementDetector
            .score(&base, &[agree.clone(), flip_first])
            .unwrap();
        assert_eq!(scores, vec![0.5, 0.0]);
        let scores = DisagreementDetector.score(&base, &[agree]).unwrap();
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn divergence_orders_by_distribution_shift() {
        let base = logits(&[[3.0, 0.0, 0.0, 0.0]]);
        let near = logits(&[[2.9, 0.1, 0.0, 0.0]]);
        let far = logits(&[[0.0, 3.0, 0.0, 0.0]]);
        let near_s = DivergenceDetector.score(&base, &[near]).unwrap()[0];
        let far_s = DivergenceDetector.score(&base, &[far]).unwrap()[0];
        assert!(far_s > near_s, "{far_s} vs {near_s}");
        for s in [near_s, far_s] {
            assert!((0.0..1.0).contains(&s));
        }
        // Identical distributions score ~0.
        let same = DivergenceDetector
            .score(&base, std::slice::from_ref(&base))
            .unwrap()[0];
        assert!(same.abs() < 1e-9);
    }

    #[test]
    fn margin_scores_confidence_energy() {
        let confident = logits(&[[9.0, 0.0, 0.0, 0.0]]);
        let boundary = logits(&[[1.0, 1.0, 0.0, 0.0]]);
        let hi = MarginDetector.score(&confident, &[]).unwrap()[0];
        let lo = MarginDetector.score(&boundary, &[]).unwrap()[0];
        assert!(lo > hi, "boundary sample must score higher: {lo} vs {hi}");
    }

    #[test]
    fn detectors_reject_bad_shapes_and_empty_ensembles() {
        let base = logits(&[[1.0, 0.0, 0.0, 0.0]]);
        let wrong = Tensor::zeros(&[2, 4]);
        for det in [&DisagreementDetector as &dyn Detector, &DivergenceDetector] {
            assert!(det.score(&base, &[]).is_err(), "{}", det.name());
            assert!(det.score(&base, std::slice::from_ref(&wrong)).is_err());
        }
        assert!(MarginDetector.score(&Tensor::zeros(&[2]), &[]).is_err());
        assert!(MarginDetector.score(&Tensor::zeros(&[2, 1]), &[]).is_err());
    }

    #[test]
    fn detector_by_name_round_trips() {
        for name in ["disagreement", "divergence", "margin"] {
            assert_eq!(detector_by_name(name).unwrap().name(), name);
        }
        assert!(detector_by_name("nope").is_none());
    }

    #[test]
    fn ensemble_scores_through_compiled_plans() {
        let mut ens = VariantEnsemble::new("dense", net(1), &[6]);
        ens.push_variant("v0", net(2));
        ens.push_variant("v1", net(3));
        assert_eq!(ens.names(), vec!["dense", "v0", "v1"]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let x = advcomp_tensor::Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[5, 6], &mut rng);
        let scores = ens.score(&DisagreementDetector, &x).unwrap();
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        // Plan output must match the direct Sequential forward: the scores
        // of a manually-assembled logits set are identical.
        let (base, variants) = ens.logits(&x).unwrap();
        let direct = ens
            .model_mut(0)
            .unwrap()
            .forward(&x, advcomp_nn::Mode::Eval)
            .unwrap();
        assert_eq!(base.data(), direct.data());
        assert_eq!(
            DisagreementDetector.score(&base, &variants).unwrap(),
            scores
        );
        // Accuracy helper runs.
        let labels = vec![0usize; 5];
        let acc = ens.baseline_accuracy(&x, &labels).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
