//! Calibrated adversarial detection over compression ensembles.
//!
//! The paper's defensive observation — adversarial samples transfer
//! imperfectly between a dense model and its compressed variants — turns
//! into a deployable detector in three layers:
//!
//! * **Detectors** — pure score functions over ensemble logits: the serve
//!   guard's [`DisagreementDetector`] (factored out of the engine so
//!   online and offline paths share one implementation), the softer
//!   [`DivergenceDetector`] (softmax divergence moves before labels
//!   flip), and the baseline-only [`MarginDetector`]. Offline scoring
//!   runs through compiled `advcomp-graph` plans via [`VariantEnsemble`].
//! * **Calibration** — [`RocCurve`] sweeps from labelled clean/attacked
//!   traffic, trapezoid AUC (differentially tested against the rank-based
//!   [`reference_auc`]), and the operating point for a target false
//!   positive rate, frozen into a CRC-checked [`DetectorCalibration`]
//!   artifact (`.advd`) that `advcomp-serve` loads next to checkpoints.
//! * **Evaluation grid** — the attack × compression grid:
//!   [`run_detection_grid`] trains a task, builds the ensemble (including
//!   universal perturbations from `advcomp_attacks::craft_uap` and an
//!   optional adversarially fine-tuned member), calibrates on held-out
//!   traffic, and journals per-member detection rate / AUC / UAP-transfer
//!   cells through the core resilience machinery.

#![warn(missing_docs)]

mod calibration;
mod detector;
mod error;
mod grid;

pub use calibration::{reference_auc, DetectorCalibration, RocCurve, RocPoint};
pub use detector::{
    detector_by_name, Detector, DisagreementDetector, DivergenceDetector, MarginDetector,
    VariantEnsemble,
};
pub use error::DetectError;
pub use grid::{
    run_detection_grid, DetectionGrid, DetectionGridConfig, GridCell, GridFailure, GRID_ATTACKS,
};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DetectError>;
