//! ROC calibration of detector scores and the serialised calibration
//! artifact serve loads next to its checkpoints.
//!
//! Given labelled traffic — detector scores on known-clean and
//! known-adversarial batches — [`RocCurve::from_scores`] sweeps every
//! distinct score as a threshold to produce the full ROC curve, its
//! trapezoid [`RocCurve::auc`], and a chosen operating point
//! ([`RocCurve::operating_point`]: the highest-TPR threshold whose false
//! positive rate stays at or under a target). The result is frozen into a
//! versioned [`DetectorCalibration`] artifact (magic `ADVD`, CRC-32
//! footer, same corruption discipline as model checkpoints) that the
//! serve registry loads to turn raw guard scores into calibrated
//! verdicts.

use crate::{DetectError, Result};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One ROC point: the rates achieved by flagging `score >= threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False positive rate: fraction of clean traffic flagged.
    pub fpr: f64,
    /// True positive rate: fraction of adversarial traffic flagged.
    pub tpr: f64,
}

/// A full ROC curve over one detector's scores.
#[derive(Debug, Clone)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    clean: usize,
    adversarial: usize,
}

impl RocCurve {
    /// Builds the curve from labelled score samples.
    ///
    /// Thresholds sweep descending over the distinct observed scores, so
    /// the curve starts at `(0, 0)` (threshold `+inf`: nothing flagged)
    /// and ends at `(1, 1)` (threshold at the minimum score: everything
    /// flagged). Ties between clean and adversarial samples at the same
    /// score land on a single point, which is what makes the trapezoid
    /// [`Self::auc`] equal the Mann-Whitney statistic with ties counted
    /// one-half.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] if either class is empty or any
    /// score is non-finite.
    pub fn from_scores(clean: &[f64], adversarial: &[f64]) -> Result<Self> {
        if clean.is_empty() || adversarial.is_empty() {
            return Err(DetectError::InvalidConfig(
                "ROC needs at least one clean and one adversarial score".into(),
            ));
        }
        if clean.iter().chain(adversarial).any(|s| !s.is_finite()) {
            return Err(DetectError::InvalidConfig(
                "ROC scores must be finite".into(),
            ));
        }
        // (score, is_adversarial), descending by score.
        let mut samples: Vec<(f64, bool)> = clean
            .iter()
            .map(|&s| (s, false))
            .chain(adversarial.iter().map(|&s| (s, true)))
            .collect();
        samples.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));

        let (nc, na) = (clean.len() as f64, adversarial.len() as f64);
        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        let (mut fp, mut tp) = (0usize, 0usize);
        let mut i = 0;
        while i < samples.len() {
            let threshold = samples[i].0;
            // Consume the whole tie group before emitting a point.
            while i < samples.len() && samples[i].0 == threshold {
                if samples[i].1 {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                fpr: fp as f64 / nc,
                tpr: tp as f64 / na,
            });
        }
        Ok(RocCurve {
            points,
            clean: clean.len(),
            adversarial: adversarial.len(),
        })
    }

    /// The curve's points, in threshold-descending (rate-ascending) order.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Number of clean samples the curve was built from.
    pub fn clean_count(&self) -> usize {
        self.clean
    }

    /// Number of adversarial samples the curve was built from.
    pub fn adversarial_count(&self) -> usize {
        self.adversarial
    }

    /// Area under the curve by trapezoid rule — equivalently the
    /// probability a random adversarial sample outscores a random clean
    /// one, ties counted one-half.
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        area
    }

    /// The operating point for a target false-positive rate: the last
    /// curve point (highest TPR) with `fpr <= target_fpr`.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] if `target_fpr` is not in `[0, 1]`.
    pub fn operating_point(&self, target_fpr: f64) -> Result<RocPoint> {
        if !(0.0..=1.0).contains(&target_fpr) {
            return Err(DetectError::InvalidConfig(format!(
                "target FPR must be in [0, 1], got {target_fpr}"
            )));
        }
        Ok(*self
            .points
            .iter()
            .rev()
            .find(|p| p.fpr <= target_fpr)
            .expect("curve starts at fpr 0"))
    }
}

/// Rank-based AUC in pure f64 — the Mann-Whitney U statistic computed
/// independently of the trapezoid path, used as the differential-test
/// reference for [`RocCurve::auc`].
///
/// # Errors
///
/// Same validation as [`RocCurve::from_scores`].
pub fn reference_auc(clean: &[f64], adversarial: &[f64]) -> Result<f64> {
    if clean.is_empty() || adversarial.is_empty() {
        return Err(DetectError::InvalidConfig(
            "ROC needs at least one clean and one adversarial score".into(),
        ));
    }
    if clean.iter().chain(adversarial).any(|s| !s.is_finite()) {
        return Err(DetectError::InvalidConfig(
            "ROC scores must be finite".into(),
        ));
    }
    let mut u = 0.0f64;
    for &a in adversarial {
        for &c in clean {
            if a > c {
                u += 1.0;
            } else if a == c {
                u += 0.5;
            }
        }
    }
    Ok(u / (clean.len() as f64 * adversarial.len() as f64))
}

const ARTIFACT_MAGIC: &[u8; 4] = b"ADVD";
const ARTIFACT_VERSION: u32 = 1;

/// A frozen detector operating point, ready to deploy.
///
/// Produced by [`DetectorCalibration::calibrate`] from labelled traffic
/// and shipped to serve as a small binary artifact so the online guard
/// flags at exactly the threshold the ROC sweep chose.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorCalibration {
    /// Name of the detector the calibration applies to (must match
    /// [`crate::Detector::name`] at load time).
    pub detector: String,
    /// Deployed decision threshold: flag when `score >= threshold`.
    pub threshold: f64,
    /// The false-positive-rate budget the operating point was chosen for.
    pub target_fpr: f64,
    /// FPR actually achieved on the calibration set.
    pub observed_fpr: f64,
    /// TPR actually achieved on the calibration set.
    pub observed_tpr: f64,
    /// Full-curve AUC on the calibration set.
    pub auc: f64,
    /// Clean calibration samples.
    pub clean_count: u32,
    /// Adversarial calibration samples.
    pub adversarial_count: u32,
}

impl DetectorCalibration {
    /// Calibrates `detector_name` from labelled scores: builds the ROC
    /// curve, picks the `target_fpr` operating point, and freezes it.
    ///
    /// # Errors
    ///
    /// Propagates ROC construction/operating-point errors.
    pub fn calibrate(
        detector_name: &str,
        clean: &[f64],
        adversarial: &[f64],
        target_fpr: f64,
    ) -> Result<Self> {
        let curve = RocCurve::from_scores(clean, adversarial)?;
        let op = curve.operating_point(target_fpr)?;
        Ok(DetectorCalibration {
            detector: detector_name.to_string(),
            threshold: op.threshold,
            target_fpr,
            observed_fpr: op.fpr,
            observed_tpr: op.tpr,
            auc: curve.auc(),
            clean_count: curve.clean_count() as u32,
            adversarial_count: curve.adversarial_count() as u32,
        })
    }

    /// Serialises to the versioned binary artifact format.
    ///
    /// Layout (all little-endian): magic `ADVD`, version `u32`, detector
    /// name (`u16` length + UTF-8 bytes), five `f64` fields (threshold,
    /// target/observed FPR, observed TPR, AUC), two `u32` sample counts,
    /// CRC-32 of everything preceding the footer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.detector.len());
        buf.extend_from_slice(ARTIFACT_MAGIC);
        buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let name = self.detector.as_bytes();
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        for v in [
            self.threshold,
            self.target_fpr,
            self.observed_fpr,
            self.observed_tpr,
            self.auc,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&self.clean_count.to_le_bytes());
        buf.extend_from_slice(&self.adversarial_count.to_le_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes an artifact, verifying magic, version, and CRC.
    ///
    /// # Errors
    ///
    /// [`DetectError::Artifact`] on any structural defect — bad magic,
    /// unknown version, truncation, trailing bytes, or CRC mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != ARTIFACT_MAGIC {
            return Err(DetectError::Artifact(format!(
                "bad magic {magic:02x?}, expected {ARTIFACT_MAGIC:02x?}"
            )));
        }
        let version = r.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(DetectError::Artifact(format!(
                "unsupported artifact version {version} (expected {ARTIFACT_VERSION})"
            )));
        }
        let name_len = r.u16()? as usize;
        let detector = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| DetectError::Artifact("detector name is not UTF-8".into()))?;
        let threshold = r.f64()?;
        let target_fpr = r.f64()?;
        let observed_fpr = r.f64()?;
        let observed_tpr = r.f64()?;
        let auc = r.f64()?;
        let clean_count = r.u32()?;
        let adversarial_count = r.u32()?;
        let body_end = r.pos;
        let stored = r.u32()?;
        if r.pos != bytes.len() {
            return Err(DetectError::Artifact(format!(
                "{} trailing bytes after footer",
                bytes.len() - r.pos
            )));
        }
        let actual = crc32(&bytes[..body_end]);
        if stored != actual {
            return Err(DetectError::Artifact(format!(
                "CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        Ok(DetectorCalibration {
            detector,
            threshold,
            target_fpr,
            observed_fpr,
            observed_tpr,
            auc,
            clean_count,
            adversarial_count,
        })
    }

    /// Writes the artifact atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`DetectError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and verifies an artifact from disk.
    ///
    /// # Errors
    ///
    /// [`DetectError::Io`] on read failure, [`DetectError::Artifact`] on
    /// corruption.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&fs::read(path)?)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DetectError::Artifact(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Bitwise CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — self-contained
/// so the artifact format has no dependency on the checkpoint crate's
/// private implementation, while producing identical digests.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let curve = RocCurve::from_scores(&[0.0, 0.1, 0.2], &[0.8, 0.9]).unwrap();
        assert_eq!(curve.auc(), 1.0);
        let op = curve.operating_point(0.0).unwrap();
        assert_eq!(op.tpr, 1.0);
        assert_eq!(op.fpr, 0.0);
        assert!(op.threshold > 0.2 && op.threshold <= 0.8);
    }

    #[test]
    fn identical_distributions_give_auc_half() {
        let s = [0.3, 0.5, 0.7];
        let curve = RocCurve::from_scores(&s, &s).unwrap();
        assert!((curve.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_spans_unit_square() {
        let clean = [0.1, 0.2, 0.2, 0.35, 0.5];
        let adv = [0.2, 0.4, 0.6, 0.6, 0.9];
        let curve = RocCurve::from_scores(&clean, &adv).unwrap();
        let pts = curve.points();
        assert_eq!((pts[0].fpr, pts[0].tpr), (0.0, 0.0));
        let last = pts.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].threshold < w[0].threshold);
        }
    }

    #[test]
    fn auc_matches_rank_reference() {
        // Deterministic pseudo-random scores with ties.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64 / (1u64 << 24) as f64 * 20.0).round() / 20.0
        };
        let clean: Vec<f64> = (0..40).map(|_| next()).collect();
        let adv: Vec<f64> = (0..30).map(|_| (next() + 0.2).min(1.0)).collect();
        let curve = RocCurve::from_scores(&clean, &adv).unwrap();
        let reference = reference_auc(&clean, &adv).unwrap();
        assert!(
            (curve.auc() - reference).abs() < 1e-12,
            "trapezoid {} vs rank {}",
            curve.auc(),
            reference
        );
    }

    #[test]
    fn operating_point_respects_fpr_budget() {
        let clean = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        let adv = [0.55, 0.65, 0.75, 0.85, 0.95];
        let curve = RocCurve::from_scores(&clean, &adv).unwrap();
        let op = curve.operating_point(0.2).unwrap();
        assert!(op.fpr <= 0.2);
        // Every point with a lower threshold must overshoot the budget.
        for p in curve.points() {
            if p.threshold < op.threshold {
                assert!(p.fpr > 0.2);
            }
        }
        assert!(curve.operating_point(1.5).is_err());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(RocCurve::from_scores(&[], &[0.5]).is_err());
        assert!(RocCurve::from_scores(&[0.5], &[]).is_err());
        assert!(RocCurve::from_scores(&[f64::NAN], &[0.5]).is_err());
        assert!(reference_auc(&[0.5], &[f64::INFINITY]).is_err());
    }

    fn sample_calibration() -> DetectorCalibration {
        let clean = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45];
        let adv = [0.3, 0.5, 0.6, 0.7, 0.8];
        DetectorCalibration::calibrate("disagreement", &clean, &adv, 0.1).unwrap()
    }

    #[test]
    fn artifact_round_trips_bit_exactly() {
        let cal = sample_calibration();
        assert!(cal.observed_fpr <= 0.1);
        let bytes = cal.to_bytes();
        let back = DetectorCalibration::from_bytes(&bytes).unwrap();
        assert_eq!(cal, back);
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn artifact_rejects_corruption() {
        let cal = sample_calibration();
        let good = cal.to_bytes();
        // Every single-byte flip must be caught (magic, version, fields,
        // or CRC itself).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(
                DetectorCalibration::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncation and trailing garbage.
        assert!(DetectorCalibration::from_bytes(&good[..good.len() - 1]).is_err());
        let mut extended = good.clone();
        extended.push(0);
        assert!(DetectorCalibration::from_bytes(&extended).is_err());
        assert!(DetectorCalibration::from_bytes(b"").is_err());
    }

    #[test]
    fn artifact_save_load_round_trip() {
        let dir = std::env::temp_dir().join("advcomp_detect_cal_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("guard.advd");
        let cal = sample_calibration();
        cal.save(&path).unwrap();
        assert_eq!(DetectorCalibration::load(&path).unwrap(), cal);
        fs::remove_file(&path).unwrap();
        assert!(matches!(
            DetectorCalibration::load(&path),
            Err(DetectError::Io(_))
        ));
    }
}
