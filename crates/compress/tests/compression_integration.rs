//! Integration tests across pruning, quantisation and fine-tuning — the
//! ablation-style comparisons DESIGN.md calls out, asserted as invariants.

use advcomp_compress::{
    evaluate, train_baseline, DnsPruner, OneShotPruner, PruneMask, QuantConfig, Quantizer,
    TrainConfig,
};
use advcomp_data::{Dataset, DatasetConfig, SynthDigits};
use advcomp_nn::{Dense, FakeQuant, Flatten, Relu, Sequential, StepDecay};
use advcomp_qformat::QFormat;
use rand::SeedableRng;

fn mlp(seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc1", 28 * 28, 32, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc2", 32, 10, &mut rng)),
    ])
}

fn digits() -> (Dataset, Dataset) {
    SynthDigits::generate(&DatasetConfig {
        train: 300,
        test: 150,
        seed: 17,
        noise: 0.05,
    })
}

fn cfg(epochs: usize, lr: f32) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        schedule: StepDecay::new(lr, 0.1, vec![epochs.max(2) - 1]),
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 0,
    }
}

fn trained_mlp() -> (Sequential, Dataset, Dataset) {
    let (train, test) = digits();
    let mut model = mlp(1);
    train_baseline(&mut model, &train, &cfg(8, 0.05)).unwrap();
    (model, train, test)
}

#[test]
fn dns_not_worse_than_one_shot_at_aggressive_density() {
    // The DNS paper's selling point: recoverable masks tolerate aggressive
    // pruning better than frozen masks under an equal fine-tune budget.
    // At 5% density the gap should be visible (allowing a small tolerance
    // for run-to-run noise at this scale).
    let (model, train, test) = trained_mlp();
    let density = 0.05;

    let mut dns_model = mlp(1);
    dns_model.import_params(&model.export_params()).unwrap();
    DnsPruner::new(density)
        .prune_and_finetune(&mut dns_model, &train, &cfg(4, 0.01))
        .unwrap();
    let dns_acc = evaluate(&mut dns_model, &test, 64).unwrap();

    let mut os_model = mlp(1);
    os_model.import_params(&model.export_params()).unwrap();
    OneShotPruner::new(density)
        .prune_and_finetune(&mut os_model, &train, &cfg(4, 0.01))
        .unwrap();
    let os_acc = evaluate(&mut os_model, &test, 64).unwrap();

    assert!(
        dns_acc >= os_acc - 0.08,
        "DNS ({dns_acc}) should not trail one-shot ({os_acc}) at density {density}"
    );
}

#[test]
fn both_pruners_hit_target_density_exactly_enough() {
    let (model, train, _) = trained_mlp();
    for density in [0.5, 0.2, 0.05] {
        let mut m = mlp(1);
        m.import_params(&model.export_params()).unwrap();
        let mask = DnsPruner::new(density)
            .prune_and_finetune(&mut m, &train, &cfg(2, 0.01))
            .unwrap();
        assert!(
            (mask.overall_density() - density).abs() < 0.04,
            "DNS density {} vs target {density}",
            mask.overall_density()
        );
        let w = &m.param("fc1.weight").unwrap().value;
        assert!((w.density() - density).abs() < 0.05);
    }
}

#[test]
fn quantised_model_weights_live_on_grid_for_all_bitwidths() {
    let (model, train, test) = trained_mlp();
    let base = {
        let mut m = mlp(1);
        m.import_params(&model.export_params()).unwrap();
        evaluate(&mut m, &test, 64).unwrap()
    };
    for bitwidth in [4u32, 6, 8, 12, 16] {
        let mut m = mlp(1);
        m.import_params(&model.export_params()).unwrap();
        Quantizer::for_bitwidth(bitwidth)
            .unwrap()
            .quantize_and_finetune(&mut m, &train, &cfg(2, 0.005))
            .unwrap();
        let fmt = QFormat::for_bitwidth(bitwidth).unwrap();
        for p in m.params() {
            if p.kind == advcomp_nn::ParamKind::Weight {
                assert!(
                    p.value.data().iter().all(|&v| fmt.is_representable(v)),
                    "{} off-grid at {bitwidth} bits",
                    p.name
                );
            }
        }
        let acc = evaluate(&mut m, &test, 64).unwrap();
        // Even 4-bit QAT should retain most of the accuracy on this task.
        assert!(
            acc > base - 0.3,
            "{bitwidth}-bit QAT collapsed: {base} -> {acc}"
        );
    }
}

#[test]
fn weights_only_quant_leaves_activations_float() {
    let (model, train, _) = trained_mlp();
    let mut m = mlp(1);
    m.import_params(&model.export_params()).unwrap();
    let q = Quantizer::new(QuantConfig::weights_only(4).unwrap());
    q.quantize_and_finetune(&mut m, &train, &cfg(1, 0.005))
        .unwrap();
    for layer in m.layers() {
        assert!(layer.activation_format().is_none());
    }
}

#[test]
fn full_quant_installs_activation_format_everywhere() {
    let (model, train, _) = trained_mlp();
    let mut m = mlp(1);
    m.import_params(&model.export_params()).unwrap();
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_and_finetune(&mut m, &train, &cfg(1, 0.005))
        .unwrap();
    let fmt = QFormat::for_bitwidth(8).unwrap();
    let installed: Vec<_> = m
        .layers()
        .iter()
        .filter_map(|l| l.activation_format())
        .collect();
    assert_eq!(installed, vec![fmt, fmt]);
}

#[test]
fn pruned_then_quantised_composes() {
    // The paper treats pruning and quantisation separately, but a real
    // deployment pipeline may stack them; the library must compose.
    let (model, train, test) = trained_mlp();
    let mut m = mlp(1);
    m.import_params(&model.export_params()).unwrap();
    DnsPruner::new(0.3)
        .prune_and_finetune(&mut m, &train, &cfg(2, 0.01))
        .unwrap();
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_and_finetune(&mut m, &train, &cfg(2, 0.005))
        .unwrap();
    let acc = evaluate(&mut m, &test, 64).unwrap();
    assert!(acc > 0.5, "stacked compression collapsed accuracy: {acc}");
    // Note: QAT fine-tuning regrows some pruned weights (no mask is
    // enforced during quantisation), so we assert usability, not density.
}

#[test]
fn mask_reuse_on_reimported_model() {
    // A mask captured from one model instance applies cleanly to a
    // checkpoint-restored twin (same names and shapes).
    let (model, _, _) = trained_mlp();
    let mask = PruneMask::from_magnitude(&model, 0.4).unwrap();
    let mut twin = mlp(99);
    twin.import_params(&model.export_params()).unwrap();
    mask.apply(&mut twin).unwrap();
    let w = &twin.param("fc1.weight").unwrap().value;
    assert!((w.density() - 0.4).abs() < 0.03);
}
