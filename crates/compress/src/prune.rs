//! Fine-grained weight pruning: one-shot (Han et al.) and Dynamic Network
//! Surgery (Guo et al.), the method the paper generates its pruned models
//! with (§2.1).

use crate::finetune::TrainConfig;
use crate::{CompressError, Result};
use advcomp_data::{Batches, Dataset};
use advcomp_nn::{softmax_cross_entropy, LrSchedule, Mode, ParamKind, Sequential};
use advcomp_tensor::Tensor;
use std::collections::HashMap;

/// Magnitude threshold that keeps approximately `density · len` of the
/// largest-magnitude values.
///
/// Returns 0 at density ≥ 1 (keep everything) and `+∞` at density ≤ 0
/// (prune everything).
pub fn magnitude_threshold(values: &[f32], density: f64) -> f32 {
    if values.is_empty() || density >= 1.0 {
        return 0.0;
    }
    if density <= 0.0 {
        return f32::INFINITY;
    }
    let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    mags.sort_by(f32::total_cmp);
    let keep = ((values.len() as f64) * density).round() as usize;
    let keep = keep.clamp(1, values.len());
    mags[values.len() - keep]
}

/// Per-parameter binary masks over a model's weight tensors (biases are
/// never pruned, matching the paper's tooling).
#[derive(Debug, Clone, Default)]
pub struct PruneMask {
    masks: HashMap<String, Tensor>,
}

impl PruneMask {
    /// Builds masks keeping the largest-magnitude `density` fraction of each
    /// weight tensor (per-layer density, as Mayo/DNS apply it).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `0 ≤ density ≤ 1`.
    pub fn from_magnitude(model: &Sequential, density: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&density) {
            return Err(CompressError::InvalidConfig(format!(
                "density {density} must be in [0, 1]"
            )));
        }
        let mut masks = HashMap::new();
        for p in model.params() {
            if p.kind != ParamKind::Weight {
                continue;
            }
            let t = magnitude_threshold(p.value.data(), density);
            let mask = p.value.map(|v| if v.abs() >= t { 1.0 } else { 0.0 });
            masks.insert(p.name.clone(), mask);
        }
        Ok(PruneMask { masks })
    }

    /// Mask tensor for a parameter, if present.
    pub fn mask(&self, name: &str) -> Option<&Tensor> {
        self.masks.get(name)
    }

    /// Names of all masked parameters.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.masks.keys().map(String::as_str)
    }

    /// Zeroes masked weights in the model (`W ← W ⊙ M`, Equation 1).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::MaskMismatch`] when a masked parameter is
    /// missing from the model or shaped differently.
    pub fn apply(&self, model: &mut Sequential) -> Result<()> {
        for (name, mask) in &self.masks {
            let p = model
                .param_mut(name)
                .ok_or_else(|| CompressError::MaskMismatch(format!("no parameter {name}")))?;
            p.value = p.value.mul(mask).map_err(|_| {
                CompressError::MaskMismatch(format!(
                    "mask shape {:?} vs value {:?} for {name}",
                    mask.shape(),
                    p.value.shape()
                ))
            })?;
        }
        Ok(())
    }

    /// Fraction of weight entries kept, over all masked tensors.
    pub fn overall_density(&self) -> f64 {
        let total: usize = self.masks.values().map(Tensor::len).sum();
        if total == 0 {
            return 1.0;
        }
        let kept: usize = self.masks.values().map(Tensor::l0_norm).sum();
        kept as f64 / total as f64
    }
}

/// One-shot magnitude pruning (Han et al. 2016): threshold once, then
/// fine-tune with the mask frozen — masked weights receive no updates and
/// never recover.
#[derive(Debug, Clone, Copy)]
pub struct OneShotPruner {
    /// Target per-layer weight density in `[0, 1]`.
    pub density: f64,
}

impl OneShotPruner {
    /// Creates a pruner targeting the given density.
    pub fn new(density: f64) -> Self {
        OneShotPruner { density }
    }

    /// Prunes `model` and fine-tunes it on `data`, returning the mask.
    ///
    /// # Errors
    ///
    /// Propagates configuration, data and network errors.
    pub fn prune_and_finetune(
        &self,
        model: &mut Sequential,
        data: &Dataset,
        cfg: &TrainConfig,
    ) -> Result<PruneMask> {
        let mask = PruneMask::from_magnitude(model, self.density)?;
        mask.apply(model)?;
        let mut state = MaskedSgdState::capture(model, &mask);
        run_masked_finetune(model, data, cfg, &mut state, MaskPolicy::Frozen, 0)?;
        state.writeback(model)?;
        Ok(mask)
    }
}

/// Dynamic Network Surgery (Guo et al. 2016).
///
/// Maintains full-precision "dense" master weights underneath the mask.
/// Every `update_every` steps the mask is recomputed with hysteresis
/// thresholds `α = (1−h)·t`, `β = (1+h)·t` around the density-matching
/// magnitude threshold `t` (Equation 3 of the paper): entries below `α` are
/// pruned, entries above `β` are (re-)spliced in, entries in between keep
/// their previous state. Crucially, gradients of the masked loss are applied
/// to the **dense** weights, so pruned weights continue learning and can
/// recover — the property that distinguishes DNS from one-shot pruning.
///
/// Mask updates stop after `freeze_after` of the fine-tuning budget (the
/// DNS paper anneals its splicing probability to zero for the same reason):
/// a mask flipped in the last steps leaves the surviving weights no time to
/// adapt, which measurably hurts at aggressive densities.
#[derive(Debug, Clone, Copy)]
pub struct DnsPruner {
    /// Target per-layer weight density in `[0, 1]`.
    pub density: f64,
    /// Mask-update period, in optimiser steps.
    pub update_every: usize,
    /// Hysteresis half-width `h` (`α`/`β` sit at `∓h` around the threshold).
    pub hysteresis: f32,
    /// Fraction of total fine-tuning steps after which masks freeze.
    pub freeze_after: f64,
}

impl DnsPruner {
    /// Creates a DNS pruner with defaults calibrated on this crate's test
    /// tasks: mask updates every 64 steps, 30% hysteresis, masks frozen
    /// over the last half of fine-tuning. (Tighter hysteresis makes the
    /// density-matching threshold churn borderline weights in and out every
    /// update, which measurably costs accuracy at aggressive densities —
    /// the same pathology the original paper counters by annealing its
    /// splicing probability to zero.)
    pub fn new(density: f64) -> Self {
        DnsPruner {
            density,
            update_every: 64,
            hysteresis: 0.3,
            freeze_after: 0.5,
        }
    }

    /// Prunes `model` by DNS while fine-tuning on `data`; returns the final
    /// mask (already applied to the model).
    ///
    /// # Errors
    ///
    /// Propagates configuration, data and network errors.
    pub fn prune_and_finetune(
        &self,
        model: &mut Sequential,
        data: &Dataset,
        cfg: &TrainConfig,
    ) -> Result<PruneMask> {
        if self.update_every == 0 {
            return Err(CompressError::InvalidConfig(
                "update_every must be >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.freeze_after) {
            return Err(CompressError::InvalidConfig(
                "freeze_after must be in [0, 1]".into(),
            ));
        }
        let mask = PruneMask::from_magnitude(model, self.density)?;
        let mut state = MaskedSgdState::capture(model, &mask);
        state.mask = mask;
        let steps_per_epoch = data.len().div_ceil(cfg.batch_size.max(1));
        let total_steps = steps_per_epoch * cfg.epochs;
        let freeze_at = (total_steps as f64 * self.freeze_after).ceil() as usize;
        run_masked_finetune(
            model,
            data,
            cfg,
            &mut state,
            MaskPolicy::Dns {
                density: self.density,
                hysteresis: self.hysteresis,
                freeze_at,
            },
            self.update_every,
        )?;
        // After freezing, surviving weights may have drifted below the
        // final threshold; the mask, not the magnitudes, is authoritative.
        state.writeback(model)?;
        Ok(state.mask)
    }
}

/// How masks evolve during fine-tuning.
enum MaskPolicy {
    /// One-shot: mask never changes, masked gradients are dropped.
    Frozen,
    /// DNS: masks recomputed with hysteresis until `freeze_at` steps,
    /// gradients always applied to the dense master weights.
    Dns {
        density: f64,
        hysteresis: f32,
        freeze_at: usize,
    },
}

/// Dense master weights plus momentum buffers for the masked fine-tune.
struct MaskedSgdState {
    dense: HashMap<String, Tensor>,
    velocity: HashMap<String, Tensor>,
    mask: PruneMask,
}

impl MaskedSgdState {
    fn capture(model: &Sequential, mask: &PruneMask) -> Self {
        let mut dense = HashMap::new();
        let mut velocity = HashMap::new();
        for p in model.params() {
            dense.insert(p.name.clone(), p.value.clone());
            velocity.insert(p.name.clone(), Tensor::zeros(p.value.shape()));
        }
        MaskedSgdState {
            dense,
            velocity,
            mask: mask.clone(),
        }
    }

    /// Installs `dense ⊙ mask` into the model's weight params (and plain
    /// dense values for biases).
    fn install(&self, model: &mut Sequential) -> Result<()> {
        for p in model.params_mut() {
            let dense = self
                .dense
                .get(&p.name)
                .ok_or_else(|| CompressError::MaskMismatch(format!("no master for {}", p.name)))?;
            p.value = match self.mask.mask(&p.name) {
                Some(m) => dense.mul(m)?,
                None => dense.clone(),
            };
        }
        Ok(())
    }

    fn writeback(&self, model: &mut Sequential) -> Result<()> {
        self.install(model)
    }
}

fn run_masked_finetune(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &TrainConfig,
    state: &mut MaskedSgdState,
    policy: MaskPolicy,
    update_every: usize,
) -> Result<()> {
    if data.is_empty() {
        return Err(CompressError::Data("empty fine-tuning set".into()));
    }
    if cfg.batch_size == 0 {
        return Err(CompressError::InvalidConfig(
            "batch_size must be >= 1".into(),
        ));
    }
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        let lr = cfg.schedule.lr_at(epoch);
        let plan = Batches::shuffled(
            data.len(),
            cfg.batch_size,
            cfg.seed.wrapping_add(epoch as u64),
        );
        for (x, y) in plan.iter(data) {
            state.install(model)?;
            let logits = model.forward(&x, Mode::Train)?;
            let loss = softmax_cross_entropy(&logits, &y)?;
            model.zero_grad();
            model.backward(&loss.grad)?;

            // SGD with momentum over the dense master weights.
            for p in model.params_mut() {
                let dense = state.dense.get_mut(&p.name).expect("captured");
                let vel = state.velocity.get_mut(&p.name).expect("captured");
                let mask = state.mask.mask(&p.name);
                let decay = match p.kind {
                    ParamKind::Weight => cfg.weight_decay,
                    ParamKind::Bias => 0.0,
                };
                let dd = dense.data_mut();
                let vd = vel.data_mut();
                let gd = p.grad.data();
                for i in 0..dd.len() {
                    let mut g = gd[i] + decay * dd[i];
                    if let (MaskPolicy::Frozen, Some(m)) = (&policy, mask) {
                        // One-shot: pruned weights receive no gradient.
                        g *= m.data()[i];
                    }
                    vd[i] = cfg.momentum * vd[i] + g;
                    dd[i] -= lr * vd[i];
                }
            }

            step += 1;
            if let MaskPolicy::Dns {
                density,
                hysteresis,
                freeze_at,
            } = policy
            {
                if update_every > 0 && step.is_multiple_of(update_every) && step <= freeze_at {
                    update_dns_masks(state, density, hysteresis);
                }
            }
        }
    }
    Ok(())
}

/// Recomputes every mask from the dense master weights with hysteresis
/// (Equation 3 of the paper).
fn update_dns_masks(state: &mut MaskedSgdState, density: f64, hysteresis: f32) {
    let names: Vec<String> = state.mask.names().map(str::to_owned).collect();
    for name in names {
        let dense = state.dense.get(&name).expect("captured master");
        let t = magnitude_threshold(dense.data(), density);
        let alpha = t * (1.0 - hysteresis);
        let beta = t * (1.0 + hysteresis);
        let old = state.mask.masks.get(&name).expect("mask exists").clone();
        let new = dense
            .zip_map(&old, |w, m| {
                let a = w.abs();
                if a < alpha {
                    0.0
                } else if a > beta {
                    1.0
                } else {
                    m
                }
            })
            .expect("mask shape matches dense by construction");
        state.mask.masks.insert(name, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finetune::evaluate;
    use advcomp_data::{DatasetConfig, SynthDigits};
    use advcomp_nn::{Dense, Flatten, Relu, StepDecay};
    use rand::SeedableRng;

    #[test]
    fn threshold_quantiles() {
        let vals = vec![0.1, -0.2, 0.3, -0.4, 0.5];
        assert_eq!(magnitude_threshold(&vals, 1.0), 0.0);
        assert_eq!(magnitude_threshold(&vals, 0.0), f32::INFINITY);
        // Keep top 2 of 5 → threshold at |−0.4|.
        let t = magnitude_threshold(&vals, 0.4);
        assert!((t - 0.4).abs() < 1e-6);
        assert_eq!(magnitude_threshold(&[], 0.5), 0.0);
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc1", 28 * 28, 24, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::with_name("fc2", 24, 10, &mut rng)),
        ])
    }

    fn digits() -> (Dataset, Dataset) {
        SynthDigits::generate(&DatasetConfig {
            train: 200,
            test: 100,
            seed: 3,
            noise: 0.05,
        })
    }

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 32,
            schedule: StepDecay::new(0.05, 0.1, vec![epochs.saturating_sub(1).max(1)]),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
        }
    }

    #[test]
    fn mask_density_close_to_target() {
        let model = mlp(1);
        for &d in &[0.1f64, 0.3, 0.5, 0.9] {
            let mask = PruneMask::from_magnitude(&model, d).unwrap();
            assert!(
                (mask.overall_density() - d).abs() < 0.02,
                "target {d}, got {}",
                mask.overall_density()
            );
        }
    }

    #[test]
    fn mask_apply_zeroes_weights() {
        let mut model = mlp(2);
        let mask = PruneMask::from_magnitude(&model, 0.5).unwrap();
        mask.apply(&mut model).unwrap();
        let w = &model.param("fc1.weight").unwrap().value;
        let density = w.density();
        assert!((density - 0.5).abs() < 0.02, "density {density}");
        // Biases untouched.
        assert!(mask.mask("fc1.bias").is_none());
    }

    #[test]
    fn invalid_density_rejected() {
        let model = mlp(3);
        assert!(PruneMask::from_magnitude(&model, -0.1).is_err());
        assert!(PruneMask::from_magnitude(&model, 1.5).is_err());
    }

    #[test]
    fn mask_mismatch_detected() {
        let model = mlp(4);
        let mask = PruneMask::from_magnitude(&model, 0.5).unwrap();
        let mut other = Sequential::new(vec![Box::new(Flatten::new())]);
        assert!(matches!(
            mask.apply(&mut other),
            Err(CompressError::MaskMismatch(_))
        ));
    }

    #[test]
    fn one_shot_keeps_mask_fixed_and_model_learns() {
        let (train, test) = digits();
        let mut model = mlp(5);
        crate::train_baseline(&mut model, &train, &quick_cfg(6)).unwrap();
        let base_acc = evaluate(&mut model, &test, 64).unwrap();

        let pruner = OneShotPruner::new(0.5);
        let mask = pruner
            .prune_and_finetune(&mut model, &train, &quick_cfg(4))
            .unwrap();
        // Weights obey the mask exactly after fine-tuning.
        let w = &model.param("fc1.weight").unwrap().value;
        let m = mask.mask("fc1.weight").unwrap();
        for (wv, mv) in w.data().iter().zip(m.data()) {
            if *mv == 0.0 {
                assert_eq!(*wv, 0.0);
            }
        }
        let pruned_acc = evaluate(&mut model, &test, 64).unwrap();
        assert!(
            pruned_acc > base_acc - 0.15,
            "pruning collapsed accuracy: {base_acc} -> {pruned_acc}"
        );
    }

    #[test]
    fn dns_prunes_to_target_density() {
        let (train, _) = digits();
        let mut model = mlp(6);
        crate::train_baseline(&mut model, &train, &quick_cfg(4)).unwrap();
        let pruner = DnsPruner::new(0.3);
        let mask = pruner
            .prune_and_finetune(&mut model, &train, &quick_cfg(3))
            .unwrap();
        let d = mask.overall_density();
        assert!((d - 0.3).abs() < 0.05, "density {d}");
        let w = &model.param("fc1.weight").unwrap().value;
        assert!(
            (w.density() - 0.3).abs() < 0.06,
            "weight density {}",
            w.density()
        );
    }

    #[test]
    fn dns_allows_recovery() {
        // A weight that is masked at step 0 but has large gradient pressure
        // can re-enter: verify masks actually change across updates.
        let (train, _) = digits();
        let mut model = mlp(7);
        crate::train_baseline(&mut model, &train, &quick_cfg(2)).unwrap();
        let initial = PruneMask::from_magnitude(&model, 0.3).unwrap();
        let pruner = DnsPruner {
            density: 0.3,
            update_every: 4,
            hysteresis: 0.1,
            freeze_after: 0.6,
        };
        let final_mask = pruner
            .prune_and_finetune(&mut model, &train, &quick_cfg(3))
            .unwrap();
        let im = initial.mask("fc1.weight").unwrap();
        let fm = final_mask.mask("fc1.weight").unwrap();
        let flips = im
            .data()
            .iter()
            .zip(fm.data())
            .filter(|(a, b)| a != b)
            .count();
        assert!(flips > 0, "DNS mask never changed");
        // Some previously-pruned weights recovered.
        let recovered = im
            .data()
            .iter()
            .zip(fm.data())
            .filter(|(a, b)| **a == 0.0 && **b == 1.0)
            .count();
        assert!(recovered > 0, "no weight recovered under DNS");
    }

    #[test]
    fn dns_zero_update_every_rejected() {
        let (train, _) = digits();
        let mut model = mlp(8);
        let pruner = DnsPruner {
            density: 0.5,
            update_every: 0,
            hysteresis: 0.1,
            freeze_after: 0.6,
        };
        assert!(pruner
            .prune_and_finetune(&mut model, &train, &quick_cfg(1))
            .is_err());
    }

    #[test]
    fn density_one_is_identity_mask() {
        let mut model = mlp(9);
        let before = model.param("fc1.weight").unwrap().value.clone();
        let mask = PruneMask::from_magnitude(&model, 1.0).unwrap();
        mask.apply(&mut model).unwrap();
        assert_eq!(
            model.param("fc1.weight").unwrap().value.data(),
            before.data()
        );
        assert_eq!(mask.overall_density(), 1.0);
    }
}
