//! Neural-network compression: pruning and fixed-point quantisation.
//!
//! This crate implements the two compression families the paper studies
//! (§2.1–2.2, §3.2), plus the fine-tuning loops they require:
//!
//! * **Fine-grained pruning** of weights:
//!   * [`OneShotPruner`] — Han et al. 2016: threshold once, mask fixed,
//!     masked weights never recover.
//!   * [`DnsPruner`] — Guo et al. 2016 *Dynamic Network Surgery*, the method
//!     the paper actually uses: masks are recomputed during fine-tuning with
//!     hysteresis thresholds (Equation 3) and gradients keep flowing to
//!     masked weights so they can recover.
//! * **Fixed-point quantisation** of *both weights and activations*
//!   ([`Quantizer`]): weights are rounded to a [`advcomp_qformat::QFormat`]
//!   with full-precision master copies and a straight-through estimator;
//!   activations are quantised by the model's `FakeQuant` layers.
//!
//! [`train_baseline`] provides the plain training loop used for baseline
//! models (and reused by the experiment harness in `advcomp-core`).

mod error;
mod finetune;
mod prune;
mod quant;

pub use error::CompressError;
pub use finetune::{
    evaluate, train_baseline, train_epoch, validate_train_config, EpochStats, TrainConfig,
    TrainStats,
};
pub use prune::{magnitude_threshold, DnsPruner, OneShotPruner, PruneMask};
pub use quant::{QuantConfig, Quantizer};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CompressError>;
