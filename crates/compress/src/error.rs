use advcomp_nn::NnError;
use advcomp_qformat::QFormatError;
use advcomp_tensor::TensorError;
use std::fmt;

/// Errors from compression passes and their fine-tuning loops.
#[derive(Debug)]
pub enum CompressError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A fixed-point format was invalid.
    QFormat(QFormatError),
    /// A dataset problem (empty dataset, bad batch size...).
    Data(String),
    /// Invalid compression configuration (density out of range, ...).
    InvalidConfig(String),
    /// A mask refers to a parameter the model doesn't have, or shapes
    /// disagree.
    MaskMismatch(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Nn(e) => write!(f, "network error: {e}"),
            CompressError::Tensor(e) => write!(f, "tensor error: {e}"),
            CompressError::QFormat(e) => write!(f, "fixed-point format error: {e}"),
            CompressError::Data(msg) => write!(f, "data error: {msg}"),
            CompressError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CompressError::MaskMismatch(msg) => write!(f, "mask mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Nn(e) => Some(e),
            CompressError::Tensor(e) => Some(e),
            CompressError::QFormat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CompressError {
    fn from(e: NnError) -> Self {
        CompressError::Nn(e)
    }
}

impl From<TensorError> for CompressError {
    fn from(e: TensorError) -> Self {
        CompressError::Tensor(e)
    }
}

impl From<QFormatError> for CompressError {
    fn from(e: QFormatError) -> Self {
        CompressError::QFormat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CompressError = NnError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("network error"));
        let e: CompressError = TensorError::Empty("max").into();
        assert!(e.to_string().contains("tensor error"));
        let e: CompressError = QFormatError::NoIntegerBits.into();
        assert!(e.to_string().contains("fixed-point"));
        assert!(CompressError::InvalidConfig("density".into())
            .to_string()
            .contains("density"));
    }
}
