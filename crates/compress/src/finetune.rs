//! Shared training configuration and the baseline training loop.

use crate::{CompressError, Result};
use advcomp_data::{Batches, Dataset};
use advcomp_nn::{accuracy, softmax_cross_entropy, LrSchedule, Mode, Sequential, Sgd, StepDecay};

/// Hyper-parameters for a training or fine-tuning run.
///
/// Defaults mirror the paper's setup shape: SGD momentum 0.9, learning rate
/// 0.01 with three scheduled 10× decays (§3.2), small weight decay.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepDecay,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay (weights only, not biases).
    pub weight_decay: f32,
    /// Seed for batch shuffling.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper-shaped config for a given epoch budget.
    pub fn paper(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            schedule: StepDecay::paper(epochs),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
        }
    }

    fn validate(&self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(CompressError::Data("empty training set".into()));
        }
        if self.batch_size == 0 {
            return Err(CompressError::InvalidConfig(
                "batch_size must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean loss over the final epoch.
    pub final_loss: f32,
    /// Training accuracy measured over the final epoch's batches.
    pub final_train_accuracy: f64,
    /// Epochs actually run.
    pub epochs: usize,
}

/// Summary of one epoch from [`train_epoch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean loss over the epoch's batches.
    pub mean_loss: f32,
    /// Training accuracy over the epoch's batches.
    pub train_accuracy: f64,
    /// Batches processed.
    pub batches: usize,
}

/// Runs one epoch of SGD over `data`: the shared loop body of
/// [`train_baseline`] and the health-guarded trainer in `advcomp-core`
/// (which interleaves epochs with checkpoint/rollback logic). The caller
/// owns the optimiser — and in particular its learning rate, which a
/// recovery path may deliberately scale down — so this function only
/// shuffles (seeded by `cfg.seed + epoch`, exactly as the monolithic loop
/// always did), steps, and reports.
///
/// Hosts the `train_step` fault-injection site (poisons one batch's logits
/// with NaN, which surfaces as the same `NonFinite` error a real numerical
/// blow-up produces).
///
/// # Errors
///
/// Propagates network errors (shape mismatches, non-finite losses).
pub fn train_epoch(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &TrainConfig,
    opt: &mut Sgd,
    epoch: usize,
) -> Result<EpochStats> {
    let plan = Batches::shuffled(
        data.len(),
        cfg.batch_size,
        cfg.seed.wrapping_add(epoch as u64),
    );
    let mut epoch_loss = 0.0f32;
    let mut epoch_correct = 0.0f64;
    let mut batches = 0usize;
    let mut samples = 0usize;
    for (x, y) in plan.iter(data) {
        let mut logits = model.forward(&x, Mode::Train)?;
        advcomp_nn::faults::corrupt("train_step", logits.data_mut());
        let loss = softmax_cross_entropy(&logits, &y)?;
        epoch_loss += loss.loss;
        epoch_correct += accuracy(&logits, &y)? * y.len() as f64;
        samples += y.len();
        batches += 1;
        model.zero_grad();
        model.backward(&loss.grad)?;
        opt.step(model.params_mut())?;
    }
    Ok(EpochStats {
        mean_loss: epoch_loss / batches.max(1) as f32,
        train_accuracy: epoch_correct / samples.max(1) as f64,
        batches,
    })
}

/// Trains `model` from its current parameters on `data` — the baseline
/// (uncompressed, dense, float32) training the paper's taxonomy is anchored
/// on.
///
/// # Errors
///
/// Returns [`CompressError::Data`] for an empty dataset and propagates
/// network errors (shape mismatches, non-finite losses).
pub fn train_baseline(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainStats> {
    cfg.validate(data)?;
    let mut opt = Sgd::new(cfg.schedule.lr_at(0), cfg.momentum, cfg.weight_decay)?;
    let mut final_loss = 0.0f32;
    let mut final_acc = 0.0f64;
    for epoch in 0..cfg.epochs {
        opt.set_lr(cfg.schedule.lr_at(epoch));
        let stats = train_epoch(model, data, cfg, &mut opt, epoch)?;
        final_loss = stats.mean_loss;
        final_acc = stats.train_accuracy;
    }
    Ok(TrainStats {
        final_loss,
        final_train_accuracy: final_acc,
        epochs: cfg.epochs,
    })
}

/// Re-validates a config for callers that drive [`train_epoch`] directly.
///
/// # Errors
///
/// Same conditions as [`train_baseline`]'s up-front validation.
pub fn validate_train_config(cfg: &TrainConfig, data: &Dataset) -> Result<()> {
    cfg.validate(data)
}

/// Evaluates classification accuracy of `model` over `data` in mini-batches.
///
/// # Errors
///
/// Propagates network errors.
pub fn evaluate(model: &mut Sequential, data: &Dataset, batch_size: usize) -> Result<f64> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let plan = Batches::sequential(data.len(), batch_size.max(1));
    let mut correct = 0.0f64;
    for (x, y) in plan.iter(data) {
        let logits = model.forward(&x, Mode::Eval)?;
        correct += accuracy(&logits, &y)? * y.len() as f64;
    }
    Ok(correct / data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_data::{DatasetConfig, SynthDigits};
    use advcomp_nn::{Dense, Flatten, Relu};
    use rand::SeedableRng;

    fn small_mlp() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc1", 28 * 28, 32, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::with_name("fc2", 32, 10, &mut rng)),
        ])
    }

    fn digits() -> (Dataset, Dataset) {
        SynthDigits::generate(&DatasetConfig {
            train: 200,
            test: 100,
            seed: 7,
            noise: 0.05,
        })
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let (train, test) = digits();
        let mut model = small_mlp();
        let before = evaluate(&mut model, &test, 64).unwrap();
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 32,
            schedule: StepDecay::new(0.05, 0.1, vec![6]),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
        };
        let stats = train_baseline(&mut model, &train, &cfg).unwrap();
        let after = evaluate(&mut model, &test, 64).unwrap();
        assert!(stats.final_loss < 1.0, "final loss {}", stats.final_loss);
        assert!(after > before + 0.3, "accuracy {before} -> {after}");
        assert!(after > 0.7, "test accuracy only {after}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let (train, _) = digits();
        let empty = train.take(0).unwrap();
        let mut model = small_mlp();
        assert!(matches!(
            train_baseline(&mut model, &empty, &TrainConfig::paper(1)),
            Err(CompressError::Data(_))
        ));
    }

    #[test]
    fn zero_batch_size_rejected() {
        let (train, _) = digits();
        let mut cfg = TrainConfig::paper(1);
        cfg.batch_size = 0;
        let mut model = small_mlp();
        assert!(train_baseline(&mut model, &train, &cfg).is_err());
    }

    #[test]
    fn deterministic_given_seeds() {
        let (train, _) = digits();
        let cfg = TrainConfig::paper(2);
        let mut a = small_mlp();
        let mut b = small_mlp();
        train_baseline(&mut a, &train, &cfg).unwrap();
        train_baseline(&mut b, &train, &cfg).unwrap();
        let wa = &a.param("fc1.weight").unwrap().value;
        let wb = &b.param("fc1.weight").unwrap().value;
        assert_eq!(wa.data(), wb.data());
    }
}
