//! Fixed-point quantisation of weights and activations (§2.2, §3.2).

use crate::finetune::TrainConfig;
use crate::{CompressError, Result};
use advcomp_data::{Batches, Dataset};
use advcomp_nn::{softmax_cross_entropy, LrSchedule, Mode, ParamKind, Sequential};
use advcomp_qformat::QFormat;
use advcomp_tensor::Tensor;
use std::collections::HashMap;

/// Formats used for a quantised model.
///
/// The paper quantises weights and activations to the *same* bitwidth with
/// the §3.2 integer-bit schedule; [`QuantConfig::for_bitwidth`] reproduces
/// that, while the struct stays open to asymmetric configurations for
/// ablations (e.g. weights-only quantisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    /// Format applied to weight tensors (biases stay full-precision).
    pub weight_format: QFormat,
    /// Format applied to activations via `FakeQuant` layers; `None` leaves
    /// activations in float32 (the weights-only ablation).
    pub activation_format: Option<QFormat>,
}

impl QuantConfig {
    /// The paper's symmetric weight+activation configuration for a bitwidth.
    ///
    /// # Errors
    ///
    /// Propagates invalid-bitwidth errors from [`QFormat::for_bitwidth`].
    pub fn for_bitwidth(bitwidth: u32) -> Result<Self> {
        let fmt = QFormat::for_bitwidth(bitwidth)?;
        Ok(QuantConfig {
            weight_format: fmt,
            activation_format: Some(fmt),
        })
    }

    /// Weights-only variant (ablation: isolates the activation-clipping
    /// effect the paper credits with the low-bitwidth defence).
    ///
    /// # Errors
    ///
    /// Propagates invalid-bitwidth errors from [`QFormat::for_bitwidth`].
    pub fn weights_only(bitwidth: u32) -> Result<Self> {
        let fmt = QFormat::for_bitwidth(bitwidth)?;
        Ok(QuantConfig {
            weight_format: fmt,
            activation_format: None,
        })
    }
}

/// Applies fixed-point quantisation to a model, with optional
/// quantisation-aware fine-tuning.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    cfg: QuantConfig,
}

impl Quantizer {
    /// Creates a quantiser from an explicit configuration.
    pub fn new(cfg: QuantConfig) -> Self {
        Quantizer { cfg }
    }

    /// Creates the paper's symmetric quantiser for a bitwidth.
    ///
    /// # Errors
    ///
    /// Propagates invalid-bitwidth errors.
    pub fn for_bitwidth(bitwidth: u32) -> Result<Self> {
        Ok(Quantizer::new(QuantConfig::for_bitwidth(bitwidth)?))
    }

    /// The configuration in use.
    pub fn config(&self) -> QuantConfig {
        self.cfg
    }

    /// Rounds every weight tensor to the weight format, in place (biases
    /// are left in full precision). Post-training quantisation.
    pub fn quantize_weights(&self, model: &mut Sequential) {
        for p in model.params_mut() {
            if p.kind == ParamKind::Weight {
                self.cfg.weight_format.quantize_slice(p.value.data_mut());
            }
        }
    }

    /// Installs the activation format on every `FakeQuant` point, returning
    /// how many points were enabled.
    pub fn enable_activations(&self, model: &mut Sequential) -> usize {
        model.set_activation_format(self.cfg.activation_format)
    }

    /// Post-training quantisation: weights rounded, activations enabled.
    /// No fine-tuning.
    pub fn quantize(&self, model: &mut Sequential) {
        self.quantize_weights(model);
        self.enable_activations(model);
    }

    /// Post-training quantisation into **packed integer execution**:
    /// applies [`Quantizer::quantize`], then freezes every `Dense`/`Conv2d`
    /// into block-quantised form so forward passes run the fused int8 GEMM
    /// instead of dense f32 on rounded values. Returns how many layers were
    /// frozen.
    ///
    /// Because the packed codes are exactly the `QFormat` codes of the
    /// rounded weights, the frozen forward is bit-exact with the simulated
    /// path on the scalar backend (see `tensor::quant`). The int8 kernels
    /// quantise activations on entry using the configured activation
    /// format, or the weight format in the weights-only configuration.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (already frozen, or a weight format wider
    /// than the 8-bit packed ceiling).
    pub fn quantize_frozen(&self, model: &mut Sequential) -> Result<usize> {
        self.quantize(model);
        let act = self.cfg.activation_format.unwrap_or(self.cfg.weight_format);
        Ok(model.freeze_quantized(self.cfg.weight_format, act)?)
    }

    /// Quantisation-aware fine-tuning, the pipeline the paper uses:
    /// activations run through their fixed-point format with an STE, weight
    /// forward passes see quantised values while full-precision master
    /// copies accumulate the (straight-through) gradients. Finishes with
    /// quantised weights installed.
    ///
    /// # Errors
    ///
    /// Propagates data and network errors.
    pub fn quantize_and_finetune(
        &self,
        model: &mut Sequential,
        data: &Dataset,
        cfg: &TrainConfig,
    ) -> Result<()> {
        if data.is_empty() {
            return Err(CompressError::Data("empty fine-tuning set".into()));
        }
        if cfg.batch_size == 0 {
            return Err(CompressError::InvalidConfig(
                "batch_size must be >= 1".into(),
            ));
        }
        self.enable_activations(model);

        // Full-precision master weights and momentum buffers.
        let mut master: HashMap<String, Tensor> = HashMap::new();
        let mut velocity: HashMap<String, Tensor> = HashMap::new();
        for p in model.params() {
            master.insert(p.name.clone(), p.value.clone());
            velocity.insert(p.name.clone(), Tensor::zeros(p.value.shape()));
        }

        let wf = self.cfg.weight_format;
        let (lo, hi) = (wf.min_value(), wf.max_value());
        for epoch in 0..cfg.epochs {
            let lr = cfg.schedule.lr_at(epoch);
            let plan = Batches::shuffled(
                data.len(),
                cfg.batch_size,
                cfg.seed.wrapping_add(epoch as u64),
            );
            for (x, y) in plan.iter(data) {
                // Install quantised weights from masters.
                for p in model.params_mut() {
                    let m = master.get(&p.name).expect("captured");
                    p.value = match p.kind {
                        ParamKind::Weight => m.map(|v| wf.quantize(v)),
                        ParamKind::Bias => m.clone(),
                    };
                }
                let logits = model.forward(&x, Mode::Train)?;
                let loss = softmax_cross_entropy(&logits, &y)?;
                model.zero_grad();
                model.backward(&loss.grad)?;
                // Clipped STE into the masters.
                for p in model.params_mut() {
                    let m = master.get_mut(&p.name).expect("captured");
                    let v = velocity.get_mut(&p.name).expect("captured");
                    let decay = match p.kind {
                        ParamKind::Weight => cfg.weight_decay,
                        ParamKind::Bias => 0.0,
                    };
                    let is_weight = p.kind == ParamKind::Weight;
                    let md = m.data_mut();
                    let vd = v.data_mut();
                    let gd = p.grad.data();
                    for i in 0..md.len() {
                        let mut g = gd[i] + decay * md[i];
                        if is_weight && !(lo..=hi).contains(&md[i]) {
                            // Master saturated: stop pushing it further out.
                            g = 0.0;
                        }
                        vd[i] = cfg.momentum * vd[i] + g;
                        md[i] -= lr * vd[i];
                    }
                }
            }
        }
        // Final install: quantised weights, full-precision biases.
        for p in model.params_mut() {
            let m = master.get(&p.name).expect("captured");
            p.value = match p.kind {
                ParamKind::Weight => m.map(|v| wf.quantize(v)),
                ParamKind::Bias => m.clone(),
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finetune::evaluate;
    use crate::TrainConfig;
    use advcomp_data::{DatasetConfig, SynthDigits};
    use advcomp_nn::{Dense, FakeQuant, Flatten, Relu, StepDecay};
    use rand::SeedableRng;

    fn mlp_with_fq(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(FakeQuant::new()),
            Box::new(Dense::with_name("fc1", 28 * 28, 24, &mut rng)),
            Box::new(Relu::new()),
            Box::new(FakeQuant::new()),
            Box::new(Dense::with_name("fc2", 24, 10, &mut rng)),
        ])
    }

    fn digits() -> (advcomp_data::Dataset, advcomp_data::Dataset) {
        SynthDigits::generate(&DatasetConfig {
            train: 200,
            test: 100,
            seed: 13,
            noise: 0.05,
        })
    }

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 32,
            schedule: StepDecay::new(0.02, 0.1, vec![epochs.max(2) - 1]),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
        }
    }

    #[test]
    fn config_schedules() {
        let c = QuantConfig::for_bitwidth(4).unwrap();
        assert_eq!(c.weight_format.int_bits(), 1);
        assert_eq!(c.activation_format.unwrap().int_bits(), 1);
        let w = QuantConfig::weights_only(8).unwrap();
        assert!(w.activation_format.is_none());
        assert!(QuantConfig::for_bitwidth(1).is_err());
    }

    #[test]
    fn quantize_weights_rounds_to_levels() {
        let mut model = mlp_with_fq(1);
        let q = Quantizer::for_bitwidth(4).unwrap();
        q.quantize_weights(&mut model);
        let fmt = QFormat::for_bitwidth(4).unwrap();
        let w = &model.param("fc1.weight").unwrap().value;
        assert!(w.data().iter().all(|&v| fmt.is_representable(v)));
    }

    #[test]
    fn enable_activations_counts_points() {
        let mut model = mlp_with_fq(2);
        let q = Quantizer::for_bitwidth(8).unwrap();
        assert_eq!(q.enable_activations(&mut model), 2);
        // Weights-only config installs None — still 2 points touched.
        let q = Quantizer::new(QuantConfig::weights_only(8).unwrap());
        assert_eq!(q.enable_activations(&mut model), 2);
        assert!(model.layers()[1].activation_format().is_none());
    }

    #[test]
    fn qat_preserves_accuracy_at_moderate_bitwidth() {
        let (train, test) = digits();
        let mut model = mlp_with_fq(3);
        crate::train_baseline(&mut model, &train, &quick_cfg(6)).unwrap();
        let base = evaluate(&mut model, &test, 64).unwrap();

        let q = Quantizer::for_bitwidth(8).unwrap();
        q.quantize_and_finetune(&mut model, &train, &quick_cfg(3))
            .unwrap();
        let quant = evaluate(&mut model, &test, 64).unwrap();
        assert!(
            quant > base - 0.1,
            "8-bit quantisation collapsed accuracy {base} -> {quant}"
        );
        // Weights really are on the grid.
        let fmt = QFormat::for_bitwidth(8).unwrap();
        let w = &model.param("fc2.weight").unwrap().value;
        assert!(w.data().iter().all(|&v| fmt.is_representable(v)));
    }

    #[test]
    fn four_bit_has_more_zeros_than_sixteen_bit() {
        // The Figure 6 observation: the 4-bit model has many more exact
        // zeros because of its coarse step.
        let (train, _) = digits();
        let mut model = mlp_with_fq(4);
        crate::train_baseline(&mut model, &train, &quick_cfg(4)).unwrap();
        let mut m4 = mlp_with_fq(4);
        m4.import_params(&model.export_params()).unwrap();
        let mut m16 = mlp_with_fq(4);
        m16.import_params(&model.export_params()).unwrap();
        Quantizer::for_bitwidth(4)
            .unwrap()
            .quantize_weights(&mut m4);
        Quantizer::for_bitwidth(16)
            .unwrap()
            .quantize_weights(&mut m16);
        let z4 = m4.param("fc1.weight").unwrap().value.len()
            - m4.param("fc1.weight").unwrap().value.l0_norm();
        let z16 = m16.param("fc1.weight").unwrap().value.len()
            - m16.param("fc1.weight").unwrap().value.l0_norm();
        assert!(z4 > z16, "zeros at 4-bit {z4} vs 16-bit {z16}");
    }

    #[test]
    fn empty_data_rejected() {
        let (train, _) = digits();
        let empty = train.take(0).unwrap();
        let mut model = mlp_with_fq(5);
        let q = Quantizer::for_bitwidth(8).unwrap();
        assert!(q
            .quantize_and_finetune(&mut model, &empty, &quick_cfg(1))
            .is_err());
    }
}
