//! Hot-swap under load: atomically replacing a served model's v2 float
//! checkpoint with its packed v3 quantised form must (a) never error or
//! drop an in-flight request, (b) take effect at the next batch
//! boundary, and (c) produce responses bit-identical to a fresh engine
//! that loaded the v3 checkpoint from cold — the swap path may not
//! perturb weights in any way a forward pass can see.

use advcomp_compress::Quantizer;
use advcomp_models::{mlp, Checkpoint};
use advcomp_serve::{Engine, ModelRegistry, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SAMPLE: usize = 28 * 28;
const HIDDEN: usize = 24;
const SEED: u64 = 11;

fn input_for(i: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; SAMPLE];
    for (j, x) in v.iter_mut().enumerate() {
        *x = ((i * 37 + j * 13) % 101) as f32 / 101.0;
    }
    v
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        queue_depth: 64,
        guard: None, // bit-exactness is about the baseline forward
        ..ServeConfig::default()
    }
}

#[test]
fn swap_v2_for_packed_v3_under_load_is_atomic_and_bit_exact() {
    // The same seeded architecture twice: one stays dense (v2), one is
    // frozen into block-quantised int8 form (v3 checkpoint).
    let dir = std::env::temp_dir().join(format!("advcomp_hot_swap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dense = mlp(HIDDEN, SEED);
    let mut quant = mlp(HIDDEN, SEED);
    let frozen = Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_frozen(&mut quant)
        .unwrap();
    assert!(frozen > 0, "no layers froze");
    let v2_path = dir.join("dense.advc");
    let v3_path = dir.join("dense_q8.advc");
    Checkpoint::capture(&dense).save(&v2_path).unwrap();
    Checkpoint::capture(&quant).save(&v3_path).unwrap();

    let mut registry = ModelRegistry::new(&[1, 28, 28]).unwrap();
    registry
        .load_baseline("dense", mlp(HIDDEN, 0), &v2_path)
        .unwrap();
    let engine = Engine::start(&registry, serve_config()).unwrap();

    // Reference probabilities before anything moves.
    let pre_swap = engine.submit(input_for(0), true).unwrap().probs.unwrap();

    // Load: four clients hammer the engine across the swap; every single
    // response must be a clean `Ok` — the swap drains nothing and errors
    // nothing.
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..4usize {
        let engine = engine.clone();
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut answered = 0u64;
            let mut i = t;
            while !stop.load(Ordering::Relaxed) {
                engine
                    .submit(input_for(i % 16), false)
                    .expect("request errored across the hot swap");
                answered += 1;
                i += 1;
            }
            answered
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    // The swap itself: CRC-validated v3 load, atomic publish, no drain.
    registry.swap("dense", mlp(HIDDEN, 0), &v3_path).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let mut answered = 0;
    for c in clients {
        answered += c.join().unwrap();
    }
    assert!(answered > 0, "load generator never ran");
    assert_eq!(registry.swaps(), 1);

    // Post-swap forwards run the packed int8 path: bit-identical to a
    // fresh engine cold-loading the same v3 checkpoint, and actually
    // different from the dense pre-swap weights.
    let mut fresh_registry = ModelRegistry::new(&[1, 28, 28]).unwrap();
    fresh_registry
        .load_baseline("dense", mlp(HIDDEN, 0), &v3_path)
        .unwrap();
    let fresh = Engine::start(&fresh_registry, serve_config()).unwrap();
    for i in 0..16 {
        let swapped = engine.submit(input_for(i), true).unwrap();
        let cold = fresh.submit(input_for(i), true).unwrap();
        assert_eq!(
            swapped.probs, cold.probs,
            "hot-swapped weights diverge from a cold v3 load on input {i}"
        );
        assert_eq!(swapped.label, cold.label);
    }
    let post_swap = engine.submit(input_for(0), true).unwrap().probs.unwrap();
    assert_ne!(
        pre_swap, post_swap,
        "quantised swap produced identical probabilities; swap not observable"
    );

    fresh.shutdown();
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The swap is also safe through the full server stack: live TCP
/// clients keep getting `ok` responses while the checkpoint underneath
/// them changes, and the metrics snapshot records the swap.
#[test]
fn swap_under_tcp_load_reports_in_metrics() {
    use advcomp_serve::json::Json;
    use advcomp_serve::protocol::Command;
    use advcomp_serve::Client;

    let dir = std::env::temp_dir().join(format!("advcomp_hot_swap_tcp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dense = mlp(HIDDEN, SEED);
    let mut quant = mlp(HIDDEN, SEED);
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_frozen(&mut quant)
        .unwrap();
    let v2_path = dir.join("dense.advc");
    let v3_path = dir.join("dense_q8.advc");
    Checkpoint::capture(&dense).save(&v2_path).unwrap();
    Checkpoint::capture(&quant).save(&v3_path).unwrap();

    let mut registry = ModelRegistry::new(&[1, 28, 28]).unwrap();
    registry
        .load_baseline("dense", mlp(HIDDEN, 0), &v2_path)
        .unwrap();
    let engine = Engine::start(&registry, serve_config()).unwrap();
    let server = Server::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..3usize {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut i = t;
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let resp = c.predict(input_for(i % 16), false).unwrap();
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "response errored across the hot swap: {resp}"
                );
                answered += 1;
                i += 1;
            }
            answered
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    registry.swap("dense", mlp(HIDDEN, 0), &v3_path).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        assert!(c.join().unwrap() > 0);
    }

    let mut c = Client::connect(addr).unwrap();
    let m = c.control(Command::Metrics).unwrap();
    let swaps = m
        .get("metrics")
        .and_then(|m| m.get("engine"))
        .and_then(|e| e.get("swaps"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(swaps, 1, "metrics must record the hot swap");

    let resp = c.control(Command::Shutdown).unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
