//! Property tests for the sharded batcher: work stealing must never
//! drop, duplicate, or reorder a request's response, and a stalled
//! shard's queue must drain through its peers.
//!
//! Everything here is message-passing only — the tests observe the
//! system exclusively through submitted requests and their responses
//! (wire frames or completion channels), never by poking at internal
//! locks — and worker/shard counts are pinned so runs are reproducible.

use advcomp_models::mlp;
use advcomp_serve::json::Json;
use advcomp_serve::protocol::{read_frame, write_frame, Request};
use advcomp_serve::{Engine, GuardConfig, ModelRegistry, ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const SAMPLE: usize = 28 * 28;

fn engine_with(workers: usize, queue_depth: usize) -> Engine {
    let mut registry = ModelRegistry::new(&[1, 28, 28]).unwrap();
    registry.set_baseline("dense", mlp(16, 7)).unwrap();
    registry.add_variant("alt", mlp(16, 8)).unwrap();
    Engine::start(
        &registry,
        ServeConfig {
            workers,
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            queue_depth,
            guard: Some(GuardConfig { threshold: 0.5 }),
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

/// A deterministic per-request input: unique per (client, seq) so a
/// misrouted response is detectable by its probabilities, not just its
/// id.
fn input_for(client: usize, seq: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; SAMPLE];
    for (i, x) in v.iter_mut().enumerate() {
        *x = ((client * 131 + seq * 17 + i) % 97) as f32 / 97.0;
    }
    v
}

/// 64 concurrent clients pipeline ids through servers with 1, 2, and 8
/// engine shards; every client must get exactly its own ids back, in
/// send order, with `ok` status — no drops, no duplicates, no
/// cross-client leaks, no reordering.
#[test]
fn response_ids_echo_exactly_once_in_order_across_shard_counts() {
    for &workers in &[1usize, 2, 8] {
        let engine = engine_with(workers, 64);
        let server = Server::bind(engine.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        const CLIENTS: usize = 64;
        const PER_CLIENT: usize = 8;
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            handles.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                // Pipeline all requests before reading anything: the
                // strongest ordering stress the protocol allows.
                let mut burst = Vec::new();
                for s in 0..PER_CLIENT {
                    let req = Request::Predict {
                        id: format!("c{c}s{s}"),
                        input: input_for(c, s),
                        probs: false,
                        attack: None,
                    };
                    write_frame(&mut burst, &req.to_payload()).unwrap();
                }
                stream.write_all(&burst).unwrap();
                let mut got = Vec::new();
                for _ in 0..PER_CLIENT {
                    let payload = read_frame(&mut stream).unwrap().expect("dropped response");
                    let resp = Json::parse(&payload).unwrap();
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "shards={workers} client={c}: {resp}"
                    );
                    got.push(
                        resp.get("id")
                            .and_then(Json::as_str)
                            .expect("response id")
                            .to_string(),
                    );
                }
                got
            }));
        }
        for (c, h) in handles.into_iter().enumerate() {
            let got = h.join().unwrap();
            let want: Vec<String> = (0..PER_CLIENT).map(|s| format!("c{c}s{s}")).collect();
            assert_eq!(
                got, want,
                "shards={workers}: client {c} saw dropped/duplicated/reordered ids"
            );
        }
        server.request_shutdown();
        server.join();
    }
}

/// Responses computed under heavy cross-shard concurrency are
/// bit-identical to the same inputs evaluated alone afterwards: batching
/// and stealing may change *where* a request runs, never *what* it
/// computes. (Rows of the batched GEMM are independent, so batch
/// composition cannot leak between requests.)
#[test]
fn concurrent_responses_are_bit_identical_to_solo_forwards() {
    let engine = engine_with(4, 128);
    let mut handles = Vec::new();
    for c in 0..16 {
        let engine = engine.clone();
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for s in 0..6 {
                let input = input_for(c, s);
                let p = engine.submit(input.clone(), true).unwrap();
                out.push((input, p.probs.expect("probs requested")));
            }
            out
        }));
    }
    let mut seen = 0;
    for h in handles {
        for (input, probs_under_load) in h.join().unwrap() {
            let solo = engine.submit(input, true).unwrap();
            assert_eq!(
                probs_under_load,
                solo.probs.expect("probs requested"),
                "response depends on batch composition"
            );
            seen += 1;
        }
    }
    assert_eq!(seen, 16 * 6);
    engine.shutdown();
}

/// A stalled shard's queue drains via stealing: requests pinned to the
/// shard whose worker is asleep are finished by the other workers long
/// before the stall ends, and the steal counter proves the path taken.
#[test]
fn stalled_shard_drains_through_work_stealing() {
    let engine = engine_with(2, 64);
    let stall = Duration::from_secs(3);
    engine.inject_stall(0, stall).unwrap();
    // Wait for a worker to claim the stall job, then let its batch's
    // coalesce window (`max_delay`) close: requests pushed into that
    // window would join the stall's own batch, and in-flight work is
    // (correctly) not stealable — only queued work is.
    let deadline = Instant::now() + Duration::from_secs(1);
    while engine.shard_depths()[0] > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(engine.shard_depths()[0], 0, "stall job was never picked up");
    std::thread::sleep(Duration::from_millis(50));

    let (tx, rx) = mpsc::channel();
    let t0 = Instant::now();
    const N: usize = 24;
    for k in 0..N {
        let engine = engine.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let r = engine.submit_with_key(input_for(9, k), false, 0);
            tx.send(r).ok();
        });
    }
    drop(tx);
    let mut done = 0;
    while done < N {
        rx.recv_timeout(Duration::from_secs(5))
            .expect("stalled shard never drained")
            .expect("pinned submit failed");
        done += 1;
    }
    let drained_in = t0.elapsed();
    assert!(
        drained_in < stall / 2,
        "requests waited out the stall ({drained_in:?}) instead of being stolen"
    );
    assert!(
        engine.steals() > 0,
        "queue drained but not via the stealing path"
    );
    engine.shutdown();
}
