//! Soak/chaos tests: a live server under hostile traffic and injected
//! faults must stay available, count every failure in its metrics, and
//! shed load explicitly instead of hanging.
//!
//! Two fault channels are exercised:
//!
//! * **Network chaos** a real client can produce without cooperation:
//!   abrupt connection resets mid-frame, short reads (a length header
//!   whose payload never fully arrives), and oversized frame headers.
//! * **Injected faults** through the `ADVCOMP_FAULTS` registry
//!   (`advcomp_nn::faults`): an `io` fault at the server's
//!   `serve_conn_read` site (a read that fails like a reset) and a
//!   `panic` fault at the engine's `serve_batch` site (a worker dying
//!   mid-batch). Fault hits are pinned by invocation index, so runs are
//!   deterministic.

use advcomp_models::mlp;
use advcomp_nn::faults::{install, FaultKind, FaultSpec};
use advcomp_serve::json::Json;
use advcomp_serve::protocol::{Command, MAX_FRAME};
use advcomp_serve::{Client, Engine, GuardConfig, ModelRegistry, ServeConfig, Server};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const SAMPLE: usize = 28 * 28;

fn start_server(workers: usize, queue_depth: usize) -> Server {
    let mut registry = ModelRegistry::new(&[1, 28, 28]).unwrap();
    registry.set_baseline("dense", mlp(16, 5)).unwrap();
    registry.add_variant("alt", mlp(16, 6)).unwrap();
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers,
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            queue_depth,
            guard: Some(GuardConfig { threshold: 0.5 }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    Server::bind(engine, "127.0.0.1:0").unwrap()
}

fn metric(m: &Json, path: &[&str]) -> u64 {
    let mut cur = m.get("metrics").expect("metrics object");
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("missing metric {p}"));
    }
    Json::as_u64(cur).unwrap_or_else(|| panic!("metric {path:?} not a number"))
}

/// One round of client-side chaos against `addr`; `mode` picks the
/// attack so a fixed round counter gives a deterministic mix.
fn chaos_round(addr: SocketAddr, mode: usize) {
    match mode % 3 {
        // Reset mid-frame: claim 1000 payload bytes, deliver 100, hang
        // up. The server sees EOF with a partial frame buffered.
        0 => {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&1000u32.to_le_bytes()).unwrap();
            s.write_all(&[b'x'; 100]).unwrap();
            drop(s); // abrupt close
        }
        // Oversized frame header: the server must answer one error frame
        // and hang up, never allocate the claimed buffer.
        1 => {
            let mut c = Client::connect(addr).unwrap();
            c.send_raw(&(MAX_FRAME + 17).to_le_bytes()).unwrap();
            let first = c.read_response().unwrap().expect("error frame");
            let resp = Json::parse(&first).unwrap();
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
            assert!(c.read_response().unwrap().is_none(), "must close after");
        }
        // Malformed JSON in a well-formed frame, then an abrupt close
        // while the error response may still be in flight.
        _ => {
            let mut c = Client::connect(addr).unwrap();
            let mut frame = Vec::new();
            frame.extend_from_slice(&9u32.to_le_bytes());
            frame.extend_from_slice(b"{chaos!!}");
            c.send_raw(&frame).unwrap();
            let payload = c.read_response().unwrap().expect("error frame");
            let resp = Json::parse(&payload).unwrap();
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        }
    }
}

fn run_chaos_soak(chaos_threads: usize, rounds: usize, clean_per_thread: usize) {
    let server = start_server(2, 64);
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for t in 0..chaos_threads {
        handles.push(std::thread::spawn(move || {
            for r in 0..rounds {
                chaos_round(addr, t + r);
            }
        }));
    }
    // Clean traffic interleaved with the chaos: every request must get a
    // definite answer — ok or an explicit overloaded shed, never a hang
    // or a protocol error.
    let mut clean = Vec::new();
    for t in 0..4usize {
        clean.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut ok = 0u64;
            for i in 0..clean_per_thread {
                let v = ((t * clean_per_thread + i) % 64) as f32 / 64.0;
                let resp = c.predict(vec![v; SAMPLE], false).unwrap();
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => ok += 1,
                    Some("overloaded") => {}
                    other => panic!("unexpected status {other:?}: {resp}"),
                }
            }
            ok
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut ok_total = 0;
    for h in clean {
        ok_total += h.join().unwrap();
    }
    assert!(ok_total > 0, "no clean request survived the chaos");

    // The server is still fully available and the damage is accounted
    // for: resets and bad frames were counted, nothing leaked.
    let mut c = Client::connect(addr).unwrap();
    let pong = c.control(Command::Ping).unwrap();
    assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
    let resp = c.predict(vec![0.25; SAMPLE], false).unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let m = c.control(Command::Metrics).unwrap();
    assert!(
        metric(&m, &["conns", "resets"]) > 0,
        "mid-frame hangups must be counted as resets"
    );
    assert!(
        metric(&m, &["conns", "bad_frames"]) > 0,
        "oversized/malformed frames must be counted"
    );
    assert!(metric(&m, &["requests", "completed"]) >= ok_total);
    assert_eq!(
        metric(&m, &["engine", "worker_panics"]),
        0,
        "network chaos must never reach the workers"
    );

    let resp = c.control(Command::Shutdown).unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    server.join();
}

/// Time-boxed chaos soak wired into the default test run (and the
/// `serve-soak` stage of `scripts/check.sh`).
#[test]
fn chaos_traffic_cannot_take_the_server_down() {
    run_chaos_soak(4, 9, 16);
}

/// The long soak: same invariants, an order of magnitude more rounds.
/// Run explicitly with `cargo test -p advcomp-serve --test soak -- --ignored`.
#[test]
#[ignore = "long soak; run explicitly"]
fn chaos_soak_long() {
    run_chaos_soak(8, 60, 80);
}

/// Injected faults at the registry's serve sites: a read that dies like
/// a reset and a worker that panics mid-batch. The server must absorb
/// both, answer the affected client with an explicit error (or reset),
/// count the damage, and keep serving.
#[test]
fn injected_io_and_batch_faults_are_survived_and_counted() {
    let server = start_server(2, 64);
    let addr = server.local_addr();
    let _guard = install(vec![
        FaultSpec::once(FaultKind::Io, "serve_conn_read", 0),
        FaultSpec::once(FaultKind::Panic, "serve_batch", 0),
    ]);

    // Victim A: its first readable event hits the io fault; the server
    // treats the connection as reset. The client observes EOF/error,
    // never a hang.
    let mut a = Client::connect(addr).unwrap();
    a.send_raw(&{
        let mut frame = Vec::new();
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(b"{}");
        frame
    })
    .unwrap();
    match a.read_response() {
        Ok(None) | Err(_) => {} // reset observed
        Ok(Some(p)) => panic!("expected reset, got {:?}", String::from_utf8_lossy(&p)),
    }

    // Victim B: first batch through the engine panics. The completion
    // guard must turn the dead worker into an explicit error response.
    let mut b = Client::connect(addr).unwrap();
    let resp = b.predict(vec![0.5; SAMPLE], false).unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("error"),
        "worker panic must surface as an error response: {resp}"
    );

    // Both faults are spent: the same connection now gets clean service.
    let resp = b.predict(vec![0.5; SAMPLE], false).unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "server must recover once the fault clears: {resp}"
    );
    let m = b.control(Command::Metrics).unwrap();
    assert!(metric(&m, &["conns", "resets"]) >= 1);
    assert_eq!(metric(&m, &["engine", "worker_panics"]), 1);

    let resp = b.control(Command::Shutdown).unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    server.join();
}
