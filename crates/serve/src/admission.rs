//! Per-client admission control: token buckets keyed by peer IP.
//!
//! Overload shedding (queue full ⇒ `overloaded`) protects the server but
//! is indiscriminate — one chatty client can starve everyone. Admission
//! control makes the per-client contract explicit: each peer IP owns a
//! token bucket refilled at `rps` tokens/second up to a `burst` cap, and
//! a request that finds the bucket empty is refused with the distinct
//! `rate_limited` status **before** touching the engine queue. Clients
//! can then tell "I am over my provisioned rate, back off" apart from
//! "the server is saturated, retry with jitter".
//!
//! Time is passed in by the caller (`Instant`), never read internally, so
//! tests drive the clock deterministically.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters applied to every client IP.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Sustained admitted rate, tokens (requests) per second.
    pub rps: f64,
    /// Bucket capacity: the largest instantaneous burst admitted after
    /// an idle period.
    pub burst: f64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Once the map exceeds this many idle buckets, a refill pass prunes
/// full-and-stale entries (a full bucket carries no history worth
/// keeping), bounding memory under IP churn.
const PRUNE_THRESHOLD: usize = 1024;

/// Per-IP token buckets behind one mutex. The hot path is one short
/// critical section per connection-level request — negligible next to
/// frame parsing, and far from the per-batch forward pass.
#[derive(Debug)]
pub(crate) struct AdmissionControl {
    cfg: RateLimitConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl AdmissionControl {
    /// # Errors
    ///
    /// Returns a message for non-positive `rps` or `burst < 1` (a bucket
    /// that can never admit a single request is a misconfiguration, not a
    /// limit).
    pub(crate) fn new(cfg: RateLimitConfig) -> Result<Self, String> {
        if !(cfg.rps > 0.0 && cfg.rps.is_finite()) {
            return Err(format!("rate limit rps {} must be positive", cfg.rps));
        }
        if !(cfg.burst >= 1.0 && cfg.burst.is_finite()) {
            return Err(format!("rate limit burst {} must be >= 1", cfg.burst));
        }
        Ok(AdmissionControl {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        })
    }

    /// Admits or refuses one request from `ip` at time `now`. Admission
    /// consumes one token; refusal consumes nothing.
    pub(crate) fn admit(&self, ip: IpAddr, now: Instant) -> bool {
        let mut map = self.buckets.lock().unwrap_or_else(|p| p.into_inner());
        if map.len() > PRUNE_THRESHOLD {
            let cfg = self.cfg;
            map.retain(|_, b| {
                let refilled = b.tokens + now.duration_since(b.last).as_secs_f64() * cfg.rps;
                refilled < cfg.burst
            });
        }
        let bucket = map.entry(ip).or_insert(Bucket {
            tokens: self.cfg.burst,
            last: now,
        });
        // Refill for the elapsed interval, clamped to the burst cap.
        // `now` can lag `last` when callers race on Instant::now(); the
        // max(0) keeps a stale timestamp from draining the bucket.
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.cfg.rps).min(self.cfg.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Number of tracked client buckets (diagnostics / tests).
    #[cfg(test)]
    fn tracked(&self) -> usize {
        self.buckets.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn burst_admits_then_refuses_then_refills() {
        let ac = AdmissionControl::new(RateLimitConfig {
            rps: 10.0,
            burst: 3.0,
        })
        .unwrap();
        let t0 = Instant::now();
        // A fresh client gets exactly `burst` immediate admissions.
        for i in 0..3 {
            assert!(ac.admit(ip(1), t0), "burst admission {i}");
        }
        assert!(!ac.admit(ip(1), t0), "bucket empty");
        // 100ms at 10 rps refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(ac.admit(ip(1), t1));
        assert!(!ac.admit(ip(1), t1));
        // Long idle refills only to the burst cap, not beyond.
        let t2 = t1 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert!(ac.admit(ip(1), t2));
        }
        assert!(!ac.admit(ip(1), t2));
    }

    #[test]
    fn clients_are_isolated() {
        let ac = AdmissionControl::new(RateLimitConfig {
            rps: 1.0,
            burst: 1.0,
        })
        .unwrap();
        let t0 = Instant::now();
        assert!(ac.admit(ip(1), t0));
        assert!(!ac.admit(ip(1), t0), "client 1 exhausted");
        assert!(ac.admit(ip(2), t0), "client 2 unaffected");
    }

    #[test]
    fn sustained_rate_converges_to_rps() {
        let ac = AdmissionControl::new(RateLimitConfig {
            rps: 100.0,
            burst: 5.0,
        })
        .unwrap();
        let t0 = Instant::now();
        // Offer 2x the provisioned rate for one simulated second.
        let mut admitted = 0;
        for i in 0..200 {
            if ac.admit(ip(1), t0 + Duration::from_millis(5 * i)) {
                admitted += 1;
            }
        }
        // burst (5) + ~1s of refill (100) with bucket-quantisation slack.
        assert!(
            (100..=106).contains(&admitted),
            "admitted {admitted} of 200 offered at 2x rate"
        );
    }

    #[test]
    fn stale_full_buckets_are_pruned() {
        let ac = AdmissionControl::new(RateLimitConfig {
            rps: 1000.0,
            burst: 1.0,
        })
        .unwrap();
        let t0 = Instant::now();
        for i in 0..=255u8 {
            for j in 0..5u8 {
                ac.admit(IpAddr::from([10, 0, j, i]), t0);
            }
        }
        assert!(ac.tracked() > PRUNE_THRESHOLD);
        // Much later, one request from a fresh IP triggers the prune pass;
        // every old bucket has refilled to full and is dropped.
        let t1 = t0 + Duration::from_secs(60);
        ac.admit(ip(9), t1);
        assert!(ac.tracked() <= 2, "tracked {} buckets", ac.tracked());
    }

    #[test]
    fn rejects_nonsense_configs() {
        assert!(AdmissionControl::new(RateLimitConfig {
            rps: 0.0,
            burst: 1.0
        })
        .is_err());
        assert!(AdmissionControl::new(RateLimitConfig {
            rps: 10.0,
            burst: 0.5
        })
        .is_err());
        assert!(AdmissionControl::new(RateLimitConfig {
            rps: f64::NAN,
            burst: 1.0
        })
        .is_err());
    }
}
