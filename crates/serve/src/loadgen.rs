//! Open-loop load generation against a running serve endpoint.
//!
//! # Why open-loop
//!
//! A closed-loop generator (N clients, each sending request-after-response)
//! self-throttles: when the server slows down, the offered load drops with
//! it, so measured throughput converges to whatever the server does and
//! **saturation is unobservable** — exactly the bias the old `serve_bench`
//! had, reporting a flat ~2.1k rps at every worker count. An open-loop
//! generator fixes the *arrival schedule* instead: request `k` of a run at
//! rate `R` is due at `t0 + k/R` regardless of how the server is doing. A
//! generator that falls behind sends late requests immediately (catch-up)
//! rather than dropping them, so the offered count is preserved and
//! server-side queueing shows up where it belongs: in the latency tail and
//! in shed responses.
//!
//! Sweeping `R` produces the **goodput-vs-offered curve**: goodput tracks
//! offered while the server keeps up, then flattens at the saturation
//! knee. [`find_knee`] locates the highest offered rate still served at
//! [`GOODPUT_RATIO`] efficiency.
//!
//! # Mechanics
//!
//! `connections` sockets each get a writer and a reader thread. Request
//! `k` goes to socket `k % connections`; writers sleep until each
//! request's absolute due time, then frame-and-send (responses are never
//! awaited — the server's pipelined in-order responses are collected by
//! the readers). Latency is measured from actual send to response
//! arrival, per request id. After the last send, readers drain until
//! every response arrived or `drain_timeout` expires; missing responses
//! are counted as `lost`, never silently dropped from the accounting.

use crate::metrics::LatencyHistogram;
use crate::protocol::{read_frame, write_frame, Request};
use crate::ServeError;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A run is "keeping up" while goodput ≥ this fraction of offered load;
/// the saturation knee is the last swept rate where that holds.
pub const GOODPUT_RATIO: f64 = 0.92;

/// One open-loop run: a fixed arrival schedule against one endpoint.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Offered arrival rate, requests per second.
    pub offered_rps: f64,
    /// Schedule length; `offered_rps * duration` requests total.
    pub duration: Duration,
    /// Sockets to spread the schedule over (round-robin by request).
    pub connections: usize,
    /// The input sample sent with every request.
    pub input: Vec<f32>,
    /// Ask the server for softmax probabilities.
    pub want_probs: bool,
    /// How long readers wait for stragglers after the last send.
    pub drain_timeout: Duration,
}

impl LoadPlan {
    /// A plan with sane defaults for `offered_rps` over `duration`.
    pub fn new(offered_rps: f64, duration: Duration, input: Vec<f32>) -> LoadPlan {
        LoadPlan {
            offered_rps,
            duration,
            connections: 4,
            input,
            want_probs: false,
            drain_timeout: Duration::from_secs(5),
        }
    }

    fn total_requests(&self) -> u64 {
        ((self.offered_rps * self.duration.as_secs_f64()).round() as u64).max(1)
    }
}

/// Outcome of one open-loop run.
#[derive(Debug)]
pub struct LoadReport {
    /// The planned arrival rate.
    pub offered_rps: f64,
    /// Requests actually sent (the full schedule unless sockets died).
    pub sent: u64,
    /// `status: ok` responses.
    pub ok: u64,
    /// `status: overloaded` responses (server-wide backpressure).
    pub overloaded: u64,
    /// `status: rate_limited` responses (per-client admission control).
    pub rate_limited: u64,
    /// Other error responses (bad request, shutting down, ...).
    pub failed: u64,
    /// Requests with no response within the drain timeout.
    pub lost: u64,
    /// Wall-clock from first send to last response (or drain cutoff).
    pub elapsed: Duration,
    /// Client-observed send-to-response latency over answered requests.
    pub latency: Arc<LatencyHistogram>,
}

impl LoadReport {
    /// Achieved rate of `ok` responses over the run.
    pub fn goodput_rps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.ok as f64 / s
        }
    }

    /// Actually offered rate (sent requests over the run) — at or below
    /// `offered_rps` when the generator itself saturates.
    pub fn sent_rps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.sent as f64 / s
        }
    }
}

/// Index of the saturation knee in `points` (each `(offered, goodput)`,
/// sorted by offered rate): the last point still served at
/// [`GOODPUT_RATIO`] efficiency. `None` when the very first point is
/// already saturated.
pub fn find_knee(points: &[(f64, f64)]) -> Option<usize> {
    let mut knee = None;
    for (i, &(offered, goodput)) in points.iter().enumerate() {
        if offered > 0.0 && goodput >= GOODPUT_RATIO * offered {
            knee = Some(i);
        }
    }
    knee
}

/// Runs one open-loop plan against `addr`.
///
/// # Errors
///
/// [`ServeError::Io`] when the initial connections fail; failures after
/// the run starts are absorbed into the report's `lost` count instead
/// (a dying server under overload is data, not an abort).
pub fn run(addr: SocketAddr, plan: &LoadPlan) -> Result<LoadReport, ServeError> {
    let conns = plan.connections.max(1);
    let total = plan.total_requests();
    let interval = Duration::from_secs_f64(1.0 / plan.offered_rps.max(1e-9));

    let latency = Arc::new(LatencyHistogram::default());
    let sent = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let rate_limited = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));

    let mut writers = Vec::with_capacity(conns);
    let mut readers = Vec::with_capacity(conns);
    let t0 = Instant::now() + Duration::from_millis(10); // shared epoch
    for c in 0..conns {
        let write_half = TcpStream::connect(addr)?;
        write_half.set_nodelay(true)?;
        let read_half = write_half.try_clone()?;
        read_half.set_read_timeout(Some(Duration::from_millis(100)))?;
        // Writer and reader exchange (id -> send instant) over a channel;
        // ids are globally unique so matching is exact.
        let (meta_tx, meta_rx) = mpsc::channel::<(String, Instant)>();

        let w = {
            let plan = plan.clone();
            let sent = Arc::clone(&sent);
            let mut stream = write_half;
            std::thread::spawn(move || {
                for k in (c as u64..total).step_by(conns) {
                    let due = t0 + interval.mul_f64(k as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    // Behind schedule: send immediately (open-loop
                    // catch-up — the arrival count is preserved).
                    let id = format!("q{k}");
                    let req = Request::Predict {
                        id: id.clone(),
                        input: plan.input.clone(),
                        probs: plan.want_probs,
                        attack: None,
                    };
                    let sent_at = Instant::now();
                    if meta_tx.send((id, sent_at)).is_err() {
                        return; // reader gone (socket died)
                    }
                    let mut buf = Vec::new();
                    if write_frame(&mut buf, &req.to_payload()).is_err() {
                        return;
                    }
                    if stream.write_all(&buf).is_err() {
                        return;
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                }
                let _ = stream.flush();
            })
        };
        writers.push(w);

        let r = {
            let latency = Arc::clone(&latency);
            let ok = Arc::clone(&ok);
            let overloaded = Arc::clone(&overloaded);
            let rate_limited = Arc::clone(&rate_limited);
            let failed = Arc::clone(&failed);
            let answered = Arc::clone(&answered);
            let drain = plan.drain_timeout;
            let schedule_end = t0 + plan.duration;
            let mut stream = read_half;
            std::thread::spawn(move || {
                let mut in_flight: HashMap<String, Instant> = HashMap::new();
                let mut own_sent = 0u64;
                let mut own_answered = 0u64;
                let own_total = (c as u64..total).step_by(conns).count() as u64;
                loop {
                    while let Ok((id, at)) = meta_rx.try_recv() {
                        in_flight.insert(id, at);
                        own_sent += 1;
                    }
                    if own_answered >= own_total {
                        break; // every scheduled request answered
                    }
                    let give_up =
                        own_answered >= own_sent && own_sent >= own_total && in_flight.is_empty();
                    if give_up {
                        break;
                    }
                    if Instant::now() > schedule_end + drain {
                        break; // drain window over; leftovers count as lost
                    }
                    match read_frame(&mut stream) {
                        Ok(Some(payload)) => {
                            let arrived = Instant::now();
                            // The writer may have registered this id after
                            // our pre-read drain; drain again before
                            // matching or low-rate runs lose every sample.
                            while let Ok((id, at)) = meta_rx.try_recv() {
                                in_flight.insert(id, at);
                                own_sent += 1;
                            }
                            let resp = match crate::json::Json::parse(&payload) {
                                Ok(j) => j,
                                Err(_) => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                    own_answered += 1;
                                    continue;
                                }
                            };
                            let id = resp
                                .get("id")
                                .and_then(crate::json::Json::as_str)
                                .unwrap_or("");
                            if let Some(at) = in_flight.remove(id) {
                                latency.record(arrived.duration_since(at));
                            }
                            own_answered += 1;
                            answered.fetch_add(1, Ordering::Relaxed);
                            match resp.get("status").and_then(crate::json::Json::as_str) {
                                Some("ok") => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Some("overloaded") => {
                                    overloaded.fetch_add(1, Ordering::Relaxed);
                                }
                                Some("rate_limited") => {
                                    rate_limited.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Ok(None) => break, // server closed
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue; // read timeout slice; re-check exits
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        readers.push(r);
    }

    for w in writers {
        let _ = w.join();
    }
    for r in readers {
        let _ = r.join();
    }
    let elapsed = t0.elapsed();
    let sent = sent.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    Ok(LoadReport {
        offered_rps: plan.offered_rps,
        sent,
        ok: ok.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        rate_limited: rate_limited.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        lost: sent.saturating_sub(answered),
        elapsed,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_is_last_point_keeping_up() {
        // Classic curve: tracks offered, then flattens.
        let pts = [
            (100.0, 99.0),
            (200.0, 197.0),
            (400.0, 390.0),
            (800.0, 500.0),
            (1600.0, 480.0),
        ];
        assert_eq!(find_knee(&pts), Some(2));
        // Fully-keeping-up curve: knee at the last point.
        let pts = [(10.0, 10.0), (20.0, 19.5)];
        assert_eq!(find_knee(&pts), Some(1));
        // Saturated from the start.
        let pts = [(1000.0, 100.0)];
        assert_eq!(find_knee(&pts), None);
        assert_eq!(find_knee(&[]), None);
    }

    #[test]
    fn plan_counts_requests_from_rate_and_duration() {
        let p = LoadPlan::new(250.0, Duration::from_secs(2), vec![0.0]);
        assert_eq!(p.total_requests(), 500);
        let p = LoadPlan::new(0.1, Duration::from_secs(1), vec![0.0]);
        assert_eq!(p.total_requests(), 1, "never a zero-request run");
    }

    #[test]
    fn report_rates() {
        let r = LoadReport {
            offered_rps: 100.0,
            sent: 200,
            ok: 150,
            overloaded: 30,
            rate_limited: 0,
            failed: 0,
            lost: 20,
            elapsed: Duration::from_secs(2),
            latency: Arc::new(LatencyHistogram::default()),
        };
        assert!((r.goodput_rps() - 75.0).abs() < 1e-9);
        assert!((r.sent_rps() - 100.0).abs() < 1e-9);
    }
}
