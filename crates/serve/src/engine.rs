//! The serving engine: bounded queue, dynamic batcher, worker pool, and
//! the compression-ensemble adversarial guard.
//!
//! # Dataflow
//!
//! ```text
//! submit() --try_send--> [bounded MPSC queue] --recv--> worker 0..N
//!    |  (full => Overloaded)                              |
//!    |                                                    | coalesce until
//!    |<------------- per-job reply channel ---------------| max_batch or
//!                                                         | max_delay, then
//!                                                         | batched forward
//! ```
//!
//! Workers share the queue receiver behind a mutex. A worker holds the
//! lock only while *assembling* a batch (first `recv`, then `recv_timeout`
//! until the deadline or `max_batch`); the expensive forward passes run
//! outside the lock, so batch assembly and inference pipeline across
//! workers. Each worker owns a private [`ReplicaSet`] — forwards never
//! touch shared layer state (see `Layer::clone_layer`).
//!
//! # Ensemble guard
//!
//! Adversarial examples crafted against a dense model transfer imperfectly
//! to its pruned/quantised variants (the paper's central observation), so
//! top-1 disagreement between the baseline and its compressed copies is a
//! cheap adversarial signal. For each request the guard scores
//! `suspect = disagreeing variants / total variants` and flags the request
//! when `suspect >= threshold`.

use crate::registry::{ModelRegistry, ReplicaSet};
use crate::{ServeError, ServeMetrics};
use advcomp_nn::{softmax, Mode};
use advcomp_tensor::Tensor;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Ensemble-guard configuration.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Flag a request when at least this fraction of variants disagrees
    /// with the baseline's top-1 label. Must lie in `(0, 1]`.
    pub threshold: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { threshold: 0.5 }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker threads (each with its own replica set).
    pub workers: usize,
    /// Maximum requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Maximum time a worker waits for the batch to fill after the first
    /// request arrives.
    pub max_delay: Duration,
    /// Bounded queue depth; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Enables the compression-ensemble adversarial guard.
    pub guard: Option<GuardConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_depth: 64,
            guard: Some(GuardConfig::default()),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::Config("workers must be >= 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be >= 1".into()));
        }
        if let Some(g) = &self.guard {
            if !(g.threshold > 0.0 && g.threshold <= 1.0) {
                return Err(ServeError::Config(format!(
                    "guard threshold {} must lie in (0, 1]",
                    g.threshold
                )));
            }
        }
        Ok(())
    }
}

/// The answer for one request.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Baseline top-1 class.
    pub label: usize,
    /// Baseline softmax distribution, when the request asked for it.
    pub probs: Option<Vec<f32>>,
    /// Guard score: fraction of variants disagreeing with the baseline.
    /// `None` when the guard is disabled or no variants are registered.
    pub suspect: Option<f64>,
    /// Whether the guard flagged this request as adversarial-suspect.
    pub flagged: Option<bool>,
    /// Per-variant top-1 labels `(name, label)` when the guard ran.
    pub variant_labels: Vec<(String, usize)>,
}

struct Job {
    input: Vec<f32>,
    want_probs: bool,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

struct Shared {
    metrics: ServeMetrics,
    sample_len: usize,
    input_shape: Vec<usize>,
    config: ServeConfig,
}

/// Handle to a running engine. Cheap to clone; all clones feed the same
/// worker pool.
#[derive(Clone)]
pub struct Engine {
    tx: Arc<Mutex<Option<SyncSender<Job>>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<Shared>,
    started: Instant,
}

impl Engine {
    /// Spawns the worker pool over `registry`'s models.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for invalid configuration or an incomplete
    /// registry (no baseline).
    pub fn start(registry: &ModelRegistry, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let shared = Arc::new(Shared {
            metrics: ServeMetrics::with_model_names(registry.names()),
            sample_len: registry.sample_len(),
            input_shape: registry.input_shape().to_vec(),
            config: config.clone(),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers);
        for idx in 0..config.workers {
            let replicas = registry.replica()?;
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{idx}"))
                    .spawn(move || worker_loop(replicas, rx, shared))
                    .map_err(ServeError::Io)?,
            );
        }
        Ok(Engine {
            tx: Arc::new(Mutex::new(Some(tx))),
            workers: Arc::new(Mutex::new(workers)),
            shared,
            started: Instant::now(),
        })
    }

    /// Submits one sample and blocks until its prediction is ready.
    ///
    /// # Errors
    ///
    /// * [`ServeError::BadRequest`] — wrong input length.
    /// * [`ServeError::Overloaded`] — queue full; the caller should retry.
    /// * [`ServeError::ShuttingDown`] — engine stopped.
    /// * [`ServeError::WorkerLost`] / [`ServeError::Nn`] — worker-side
    ///   failures.
    pub fn submit(&self, input: Vec<f32>, want_probs: bool) -> Result<Prediction, ServeError> {
        let m = &self.shared.metrics;
        if input.len() != self.shared.sample_len {
            m.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::BadRequest(format!(
                "input has {} values, model expects {}",
                input.len(),
                self.shared.sample_len
            )));
        }
        if input.iter().any(|v| !v.is_finite()) {
            m.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::BadRequest(
                "input contains non-finite values".into(),
            ));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            input,
            want_probs,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        {
            let guard = self.tx.lock().unwrap_or_else(|p| p.into_inner());
            let Some(tx) = guard.as_ref() else {
                return Err(ServeError::ShuttingDown);
            };
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    m.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Overloaded);
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
            }
        }
        m.accepted.fetch_add(1, Ordering::Relaxed);
        match reply_rx.recv() {
            Ok(result) => result,
            Err(_) => {
                m.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::WorkerLost)
            }
        }
    }

    /// The engine's metrics (shared with workers).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// JSON metrics snapshot since engine start.
    pub fn metrics_snapshot(&self) -> crate::json::Json {
        self.shared.metrics.snapshot(self.started.elapsed())
    }

    /// Shape of one input sample.
    pub fn input_shape(&self) -> &[usize] {
        &self.shared.input_shape
    }

    /// Scalar element count of one input sample.
    pub fn sample_len(&self) -> usize {
        self.shared.sample_len
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Stops accepting work, drains in-flight batches, and joins every
    /// worker. Idempotent across clones.
    pub fn shutdown(&self) {
        self.tx.lock().unwrap_or_else(|p| p.into_inner()).take();
        let workers: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(mut replicas: ReplicaSet, rx: Arc<Mutex<Receiver<Job>>>, shared: Arc<Shared>) {
    let max_batch = shared.config.max_batch;
    let max_delay = shared.config.max_delay;
    loop {
        // Assemble one batch while holding the queue lock; inference runs
        // after release so other workers can assemble concurrently.
        let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
        let assembly_t0;
        {
            let queue = rx.lock().unwrap_or_else(|p| p.into_inner());
            match queue.recv() {
                Ok(job) => {
                    assembly_t0 = Instant::now();
                    batch.push(job);
                }
                Err(_) => return, // all senders dropped: shutdown
            }
            let deadline = assembly_t0 + max_delay;
            while batch.len() < max_batch {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match queue.recv_timeout(left) {
                    Ok(job) => batch.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        let assembly = assembly_t0.elapsed();
        let picked = Instant::now();
        for job in &batch {
            shared
                .metrics
                .queue_wait
                .record(picked.duration_since(job.enqueued));
        }
        shared.metrics.batch_assembly.record(assembly);
        shared.metrics.batch_sizes.record(batch.len());
        run_batch(&mut replicas, batch, &shared);
    }
}

/// Runs one coalesced batch through the baseline (and guard variants),
/// then answers every job's reply channel.
fn run_batch(replicas: &mut ReplicaSet, batch: Vec<Job>, shared: &Shared) {
    let m = &shared.metrics;
    let n = batch.len();
    let mut shape = vec![n];
    shape.extend_from_slice(&shared.input_shape);
    let mut data = Vec::with_capacity(n * shared.sample_len);
    for job in &batch {
        data.extend_from_slice(&job.input);
    }
    let forward_t0 = Instant::now();
    let outcome = (|| -> Result<_, ServeError> {
        let input = Tensor::new(&shape, data).map_err(advcomp_nn::NnError::from)?;
        let logits = replicas.baseline.1.forward(&input, Mode::Eval)?;
        m.record_model_forward(0, forward_t0.elapsed());
        let labels = logits.argmax_rows().map_err(advcomp_nn::NnError::from)?;
        let probs = softmax(&logits)?;
        let guard = match (&shared.config.guard, replicas.variants.is_empty()) {
            (Some(cfg), false) => {
                let mut per_variant = Vec::with_capacity(replicas.variants.len());
                for (i, (name, model)) in replicas.variants.iter_mut().enumerate() {
                    let variant_t0 = Instant::now();
                    let vl = model.forward(&input, Mode::Eval)?;
                    m.record_model_forward(1 + i, variant_t0.elapsed());
                    let vlabels = vl.argmax_rows().map_err(advcomp_nn::NnError::from)?;
                    per_variant.push((name.clone(), vlabels));
                }
                Some((cfg.threshold, per_variant))
            }
            _ => None,
        };
        Ok((labels, probs, guard))
    })();
    m.forward.record(forward_t0.elapsed());

    match outcome {
        Ok((labels, probs, guard)) => {
            let classes = probs.shape()[1];
            for (row, job) in batch.into_iter().enumerate() {
                let label = labels[row];
                let (suspect, flagged, variant_labels) = match &guard {
                    Some((threshold, per_variant)) => {
                        let total = per_variant.len();
                        let disagree = per_variant
                            .iter()
                            .filter(|(_, vl)| vl[row] != label)
                            .count();
                        let suspect = disagree as f64 / total as f64;
                        let flagged = suspect >= *threshold;
                        m.guard_scored.fetch_add(1, Ordering::Relaxed);
                        m.guard_variants.fetch_add(total as u64, Ordering::Relaxed);
                        m.guard_disagreements
                            .fetch_add(disagree as u64, Ordering::Relaxed);
                        if flagged {
                            m.guard_flagged.fetch_add(1, Ordering::Relaxed);
                        }
                        (
                            Some(suspect),
                            Some(flagged),
                            per_variant
                                .iter()
                                .map(|(name, vl)| (name.clone(), vl[row]))
                                .collect(),
                        )
                    }
                    None => (None, None, Vec::new()),
                };
                let prediction = Prediction {
                    label,
                    probs: job
                        .want_probs
                        .then(|| probs.data()[row * classes..(row + 1) * classes].to_vec()),
                    suspect,
                    flagged,
                    variant_labels,
                };
                m.completed.fetch_add(1, Ordering::Relaxed);
                m.total.record(job.enqueued.elapsed());
                let _ = job.reply.send(Ok(prediction));
            }
        }
        Err(err) => {
            // One shared failure message; ServeError isn't Clone, so each
            // job gets its own Nn/BadRequest-style rendering.
            let msg = err.to_string();
            for job in batch {
                m.failed.fetch_add(1, Ordering::Relaxed);
                m.total.record(job.enqueued.elapsed());
                let _ = job.reply.send(Err(ServeError::BadRequest(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_models::mlp;

    fn registry(variants: usize) -> ModelRegistry {
        let mut reg = ModelRegistry::new(&[1, 28, 28]).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        for i in 0..variants {
            reg.add_variant(format!("v{i}"), mlp(8, i as u64 + 1))
                .unwrap();
        }
        reg
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_depth: 32,
            guard: Some(GuardConfig { threshold: 0.5 }),
        }
    }

    #[test]
    fn rejects_bad_config() {
        let reg = registry(0);
        for bad in [
            ServeConfig {
                workers: 0,
                ..cfg()
            },
            ServeConfig {
                max_batch: 0,
                ..cfg()
            },
            ServeConfig {
                queue_depth: 0,
                ..cfg()
            },
            ServeConfig {
                guard: Some(GuardConfig { threshold: 0.0 }),
                ..cfg()
            },
            ServeConfig {
                guard: Some(GuardConfig { threshold: 1.5 }),
                ..cfg()
            },
        ] {
            assert!(Engine::start(&reg, bad).is_err());
        }
    }

    #[test]
    fn serves_predictions_with_guard_scores() {
        let engine = Engine::start(&registry(2), cfg()).unwrap();
        let p = engine.submit(vec![0.5; 28 * 28], true).unwrap();
        assert!(p.label < 10);
        let probs = p.probs.expect("asked for probs");
        assert_eq!(probs.len(), 10);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(p.suspect.is_some());
        assert!(p.flagged.is_some());
        assert_eq!(p.variant_labels.len(), 2);
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(m.completed.load(Ordering::Relaxed), 1);
        // Per-model forward histograms: baseline + both variants recorded.
        assert_eq!(m.per_model_forward.len(), 3);
        assert_eq!(m.per_model_forward[0].0, "dense");
        for (name, h) in &m.per_model_forward {
            assert_eq!(h.count(), 1, "model {name} forward count");
        }
    }

    #[test]
    fn rejects_wrong_length_and_non_finite_inputs() {
        let engine = Engine::start(&registry(0), cfg()).unwrap();
        assert!(matches!(
            engine.submit(vec![0.0; 3], false),
            Err(ServeError::BadRequest(_))
        ));
        let mut nan = vec![0.0; 28 * 28];
        nan[0] = f32::NAN;
        assert!(matches!(
            engine.submit(nan, false),
            Err(ServeError::BadRequest(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn concurrent_submits_batch_and_all_complete() {
        let engine = Engine::start(&registry(1), cfg()).unwrap();
        let mut handles = Vec::new();
        for i in 0..24 {
            let e = engine.clone();
            handles.push(std::thread::spawn(move || {
                e.submit(vec![(i as f32) / 24.0; 28 * 28], false)
            }));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(m.completed.load(Ordering::Relaxed), 24);
        // With 24 near-simultaneous submits and max_batch 4 across 2
        // workers, at least one batch must have coalesced.
        assert!(m.batch_sizes.max() > 1, "max batch {}", m.batch_sizes.max());
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let engine = Engine::start(&registry(0), cfg()).unwrap();
        engine.shutdown();
        assert!(matches!(
            engine.submit(vec![0.0; 28 * 28], false),
            Err(ServeError::ShuttingDown)
        ));
        // shutdown is idempotent.
        engine.shutdown();
    }

    #[test]
    fn guard_disabled_leaves_scores_empty() {
        let config = ServeConfig {
            guard: None,
            ..cfg()
        };
        let engine = Engine::start(&registry(2), config).unwrap();
        let p = engine.submit(vec![0.1; 28 * 28], false).unwrap();
        assert!(p.suspect.is_none());
        assert!(p.flagged.is_none());
        assert!(p.variant_labels.is_empty());
        engine.shutdown();
        assert_eq!(engine.metrics().guard_scored.load(Ordering::Relaxed), 0);
    }
}
