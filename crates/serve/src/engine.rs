//! The serving engine: sharded batch queues, work-stealing worker pool,
//! hot-swappable models, and the compression-ensemble adversarial guard.
//!
//! # Dataflow
//!
//! ```text
//! submit()/submit_async() --push--> [shard 0] --pop--> worker 0
//!    | round-robin, spill on full   [shard 1] --pop--> worker 1   steal on
//!    | (all full => Overloaded)        ...                ...     imbalance
//!    |                              [shard N] --pop--> worker N
//!    |                                                    |
//!    |<--------------- completion channel ----------------| coalesce to
//!         (token routes the reply; a drop-guard             max_batch or
//!          turns a lost job into WorkerLost, never           max_delay, then
//!          a hang)                                           batched forward
//! ```
//!
//! Each worker owns one shard and a private [`ReplicaSet`] — forwards
//! never touch shared layer state (see `Layer::clone_layer`). An idle
//! worker steals a chunk of queued jobs from the most loaded shard, so a
//! stalled worker never strands requests. Before each batch the worker
//! compares the registry's swap generation with its cached one and
//! re-replicates on change: a hot model swap lands between batches,
//! without draining in-flight work.
//!
//! # Completion contract
//!
//! Every job accepted into a shard produces **exactly one** completion:
//! the worker answers it, or — if a worker panics and the job is dropped —
//! the job's completion guard reports [`ServeError::WorkerLost`] on drop.
//! Callers (the blocking [`Engine::submit`] and the event-loop server)
//! therefore never hang on a lost request.
//!
//! # Ensemble guard
//!
//! Adversarial examples crafted against a dense model transfer imperfectly
//! to its pruned/quantised variants (the paper's central observation), so
//! the spread between the baseline's and its compressed copies' outputs is
//! a cheap adversarial signal. Scoring goes through the shared
//! [`Detector`](advcomp_detect::Detector) implementations from
//! `advcomp-detect` — the same code the offline calibration pipeline runs —
//! over the logits the batch forward already produced. For each request the
//! guard computes one score in `[0, 1]` and flags when
//! `score >= threshold`.
//!
//! By default the detector is top-1 disagreement at the manually
//! configured [`GuardConfig::threshold`]. When the registry carries a
//! [`DetectorCalibration`](advcomp_detect::DetectorCalibration) artifact
//! (see [`ModelRegistry::load_calibration`]), the guard instead deploys
//! the calibrated detector at its ROC-chosen operating threshold, and the
//! metrics snapshot reports the verdicts as calibrated.

use crate::metrics::GuardDeployment;
use crate::registry::{ModelRegistry, RegistryHandle, ReplicaSet};
use crate::shard::{PushError, ShardedQueue};
use crate::{ServeError, ServeMetrics};
use advcomp_detect::{detector_by_name, Detector, DisagreementDetector};
use advcomp_graph::ExecPlan;
use advcomp_nn::{faults, softmax, Mode, Sequential};
use advcomp_tensor::Tensor;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Ensemble-guard configuration.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Flag a request when its detector score reaches this value. Must
    /// lie in `(0, 1]`. Ignored when the registry carries a calibration
    /// artifact — the calibrated operating threshold wins.
    pub threshold: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { threshold: 0.5 }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker threads; also the number of queue shards (each
    /// worker drains its own shard and steals from the others).
    pub workers: usize,
    /// Maximum requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Maximum time a worker waits for the batch to fill after the first
    /// request arrives.
    pub max_delay: Duration,
    /// Bounded depth of **each** shard; when every shard is full a submit
    /// is rejected with [`ServeError::Overloaded`]. Total queue capacity
    /// is therefore `workers * queue_depth`.
    pub queue_depth: usize,
    /// How long an idle worker parks before scanning other shards for
    /// work to steal. Lower values drain a stalled shard faster at the
    /// cost of more wakeups.
    pub steal_poll: Duration,
    /// Enables the compression-ensemble adversarial guard.
    pub guard: Option<GuardConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_depth: 64,
            steal_poll: Duration::from_millis(1),
            guard: Some(GuardConfig::default()),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::Config("workers must be >= 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be >= 1".into()));
        }
        if self.steal_poll.is_zero() {
            return Err(ServeError::Config("steal_poll must be > 0".into()));
        }
        if let Some(g) = &self.guard {
            if !(g.threshold > 0.0 && g.threshold <= 1.0) {
                return Err(ServeError::Config(format!(
                    "guard threshold {} must lie in (0, 1]",
                    g.threshold
                )));
            }
        }
        Ok(())
    }
}

/// The answer for one request.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Baseline top-1 class.
    pub label: usize,
    /// Baseline softmax distribution, when the request asked for it.
    pub probs: Option<Vec<f32>>,
    /// Guard detector score in `[0, 1]` (higher = more suspect; the
    /// variant-disagreement fraction for the default detector). `None`
    /// when the guard is disabled or no variants are registered.
    pub suspect: Option<f64>,
    /// Whether the guard flagged this request as adversarial-suspect.
    pub flagged: Option<bool>,
    /// Per-variant top-1 labels `(name, label)` when the guard ran.
    pub variant_labels: Vec<(String, usize)>,
}

/// One finished request, delivered on a [`CompletionSender`]. The token
/// is whatever the submitter passed to [`Engine::submit_async`];
/// event-loop servers use it to route the reply to the right connection.
#[derive(Debug)]
pub struct Completion {
    /// Caller-chosen routing token, echoed verbatim.
    pub token: u64,
    /// The prediction, or why it failed.
    pub result: Result<Prediction, ServeError>,
}

/// Channel end that receives [`Completion`]s for async submits.
pub type CompletionSender = Sender<Completion>;

/// Called (if set) after a completion is sent, so pollers sleeping in
/// `poll(2)` can be woken. Must be cheap and never block.
pub type CompletionWaker = Arc<dyn Fn() + Send + Sync>;

/// Exactly-once completion guard: sends the result, or `WorkerLost` if
/// the job is dropped unanswered (e.g. a worker panic unwound the batch).
struct Done {
    tx: CompletionSender,
    token: u64,
    waker: Option<CompletionWaker>,
    sent: bool,
}

impl Done {
    fn send(mut self, result: Result<Prediction, ServeError>) {
        self.sent = true;
        let _ = self.tx.send(Completion {
            token: self.token,
            result,
        });
        if let Some(w) = &self.waker {
            w();
        }
    }
}

impl Drop for Done {
    fn drop(&mut self) {
        if !self.sent {
            let _ = self.tx.send(Completion {
                token: self.token,
                result: Err(ServeError::WorkerLost),
            });
            if let Some(w) = &self.waker {
                w();
            }
        }
    }
}

struct WorkJob {
    input: Vec<f32>,
    want_probs: bool,
    /// Evaluation-traffic tag: which attack (if any) this request claims
    /// to carry, for per-attack detection-rate accounting. Production
    /// traffic leaves it `None`.
    attack: Option<String>,
    enqueued: Instant,
    done: Done,
}

enum Job {
    Work(WorkJob),
    /// Test hook: puts the receiving worker to sleep, simulating a stall
    /// so the steal path can be exercised deterministically.
    Stall(Duration),
}

/// The guard as deployed: which detector scores batches and at what
/// threshold (resolved once at engine start from config + registry
/// calibration).
struct GuardRuntime {
    detector: Box<dyn Detector>,
    threshold: f64,
    calibrated: bool,
}

struct Shared {
    metrics: ServeMetrics,
    sample_len: usize,
    input_shape: Vec<usize>,
    config: ServeConfig,
    guard: Option<GuardRuntime>,
    queue: ShardedQueue<Job>,
    registry: RegistryHandle,
}

/// Handle to a running engine. Cheap to clone; all clones feed the same
/// worker pool.
#[derive(Clone)]
pub struct Engine {
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<Shared>,
    started: Instant,
}

impl Engine {
    /// Spawns the worker pool over `registry`'s models. The engine keeps
    /// a live handle to the registry: a later
    /// [`ModelRegistry::swap_variant`] is picked up by every worker at
    /// its next batch boundary.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for invalid configuration or an incomplete
    /// registry (no baseline).
    pub fn start(registry: &ModelRegistry, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let handle = registry.handle()?;
        // Resolve the guard deployment: a registry calibration artifact
        // overrides the manual threshold and picks the detector it was
        // calibrated for.
        let guard = match (&config.guard, registry.calibration()) {
            (Some(_), Some(cal)) => Some(GuardRuntime {
                detector: detector_by_name(&cal.detector).ok_or_else(|| {
                    ServeError::Config(format!(
                        "calibration names unknown detector {:?}",
                        cal.detector
                    ))
                })?,
                threshold: cal.threshold,
                calibrated: true,
            }),
            (Some(cfg), None) => Some(GuardRuntime {
                detector: Box::new(DisagreementDetector),
                threshold: cfg.threshold,
                calibrated: false,
            }),
            (None, _) => None,
        };
        let shared = Arc::new(Shared {
            metrics: ServeMetrics::with_model_names(registry.names()),
            sample_len: registry.sample_len(),
            input_shape: registry.input_shape().to_vec(),
            queue: ShardedQueue::new(config.workers, config.queue_depth),
            registry: handle,
            guard,
            config,
        });
        if let Some(g) = &shared.guard {
            shared.metrics.set_guard_deployment(GuardDeployment {
                detector: g.detector.name().into(),
                threshold: g.threshold,
                calibrated: g.calibrated,
            });
        }
        let mut workers = Vec::with_capacity(shared.config.workers);
        for idx in 0..shared.config.workers {
            let (generation, set) = shared.registry.snapshot();
            let replicas = set.replica();
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{idx}"))
                    .spawn(move || worker_loop(idx, replicas, generation, shared))
                    .map_err(ServeError::Io)?,
            );
        }
        Ok(Engine {
            workers: Arc::new(Mutex::new(workers)),
            shared,
            started: Instant::now(),
        })
    }

    fn validate_input(&self, input: &[f32]) -> Result<(), ServeError> {
        let m = &self.shared.metrics;
        if input.len() != self.shared.sample_len {
            m.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::BadRequest(format!(
                "input has {} values, model expects {}",
                input.len(),
                self.shared.sample_len
            )));
        }
        if input.iter().any(|v| !v.is_finite()) {
            m.failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::BadRequest(
                "input contains non-finite values".into(),
            ));
        }
        Ok(())
    }

    fn enqueue(&self, job: WorkJob, shard: Option<usize>) -> Result<(), ServeError> {
        let m = &self.shared.metrics;
        let pushed = match shard {
            Some(s) => self.shared.queue.push_to(s, Job::Work(job)).map(|()| s),
            None => self.shared.queue.push(Job::Work(job)),
        };
        match pushed {
            Ok(_) => {
                m.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(PushError::Full(job)) => {
                m.overloaded.fetch_add(1, Ordering::Relaxed);
                // Forget the guard: the caller gets a synchronous error,
                // not a completion.
                if let Job::Work(mut w) = job {
                    w.done.sent = true;
                }
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(job)) => {
                if let Job::Work(mut w) = job {
                    w.done.sent = true;
                }
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submits one sample and blocks until its prediction is ready.
    ///
    /// # Errors
    ///
    /// * [`ServeError::BadRequest`] — wrong input length.
    /// * [`ServeError::Overloaded`] — every shard full; retry later.
    /// * [`ServeError::ShuttingDown`] — engine stopped.
    /// * [`ServeError::WorkerLost`] / [`ServeError::Nn`] — worker-side
    ///   failures.
    pub fn submit(&self, input: Vec<f32>, want_probs: bool) -> Result<Prediction, ServeError> {
        self.submit_keyed(input, want_probs, None, None)
    }

    /// Like [`Engine::submit`] but tags the request as evaluation traffic
    /// carrying `attack` (e.g. `"uap"`): the guard's verdict for it is
    /// accumulated into the per-attack detection-rate counters exported by
    /// the metrics snapshot. Production traffic should use plain
    /// [`Engine::submit`].
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn submit_tagged(
        &self,
        input: Vec<f32>,
        want_probs: bool,
        attack: Option<String>,
    ) -> Result<Prediction, ServeError> {
        self.submit_keyed(input, want_probs, None, attack)
    }

    /// Like [`Engine::submit`] but pins the request to shard
    /// `key % workers` instead of round-robin placement, with no spill to
    /// other shards. Gives tests a deterministic target and callers an
    /// affinity knob; a pinned request on a stalled shard is still served
    /// via work stealing.
    pub fn submit_with_key(
        &self,
        input: Vec<f32>,
        want_probs: bool,
        key: usize,
    ) -> Result<Prediction, ServeError> {
        self.submit_keyed(input, want_probs, Some(key), None)
    }

    fn submit_keyed(
        &self,
        input: Vec<f32>,
        want_probs: bool,
        key: Option<usize>,
        attack: Option<String>,
    ) -> Result<Prediction, ServeError> {
        self.validate_input(&input)?;
        let (tx, rx) = mpsc::channel();
        let job = WorkJob {
            input,
            want_probs,
            attack,
            enqueued: Instant::now(),
            done: Done {
                tx,
                token: 0,
                waker: None,
                sent: false,
            },
        };
        self.enqueue(job, key)?;
        match rx.recv() {
            // Failure accounting happens on the worker side (run_batch /
            // the panic path), so errors are not double-counted here.
            Ok(c) => c.result,
            Err(_) => {
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::WorkerLost)
            }
        }
    }

    /// Non-blocking submit: validates and enqueues, then returns. The
    /// result arrives later as a [`Completion`] carrying `token` on
    /// `done` (exactly once, even if a worker dies); `waker`, when set,
    /// is invoked after each send so a `poll(2)`-parked event loop wakes.
    ///
    /// # Errors
    ///
    /// Synchronous failures only ([`ServeError::BadRequest`],
    /// [`ServeError::Overloaded`], [`ServeError::ShuttingDown`]); once
    /// this returns `Ok(())` the reply always comes via the channel.
    pub fn submit_async(
        &self,
        input: Vec<f32>,
        want_probs: bool,
        token: u64,
        done: &CompletionSender,
        waker: Option<CompletionWaker>,
    ) -> Result<(), ServeError> {
        self.submit_async_tagged(input, want_probs, None, token, done, waker)
    }

    /// [`Engine::submit_async`] with an optional evaluation-traffic attack
    /// tag (see [`Engine::submit_tagged`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_async`].
    pub fn submit_async_tagged(
        &self,
        input: Vec<f32>,
        want_probs: bool,
        attack: Option<String>,
        token: u64,
        done: &CompletionSender,
        waker: Option<CompletionWaker>,
    ) -> Result<(), ServeError> {
        self.validate_input(&input)?;
        let job = WorkJob {
            input,
            want_probs,
            attack,
            enqueued: Instant::now(),
            done: Done {
                tx: done.clone(),
                token,
                waker,
                sent: false,
            },
        };
        self.enqueue(job, None)
    }

    /// Test hook: makes worker `shard % workers` sleep for `d` the next
    /// time it picks up work, simulating a stalled worker so steal-path
    /// tests are deterministic. Not part of the serving API.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] / [`ServeError::ShuttingDown`] as a
    /// normal pinned submit.
    #[doc(hidden)]
    pub fn inject_stall(&self, shard: usize, d: Duration) -> Result<(), ServeError> {
        match self.shared.queue.push_to(shard, Job::Stall(d)) {
            Ok(()) => Ok(()),
            Err(PushError::Full(_)) => Err(ServeError::Overloaded),
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// The engine's metrics (shared with workers).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// JSON metrics snapshot since engine start.
    pub fn metrics_snapshot(&self) -> crate::json::Json {
        self.shared
            .metrics
            .set_steals(self.shared.queue.stolen.load(Ordering::Relaxed));
        self.shared.metrics.set_swaps(self.shared.registry.swaps());
        self.shared.metrics.snapshot(self.started.elapsed())
    }

    /// Jobs stolen across shards so far.
    pub fn steals(&self) -> u64 {
        self.shared.queue.stolen.load(Ordering::Relaxed)
    }

    /// Current queued-job count per shard (diagnostics).
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shared.queue.depths()
    }

    /// Shape of one input sample.
    pub fn input_shape(&self) -> &[usize] {
        &self.shared.input_shape
    }

    /// Scalar element count of one input sample.
    pub fn sample_len(&self) -> usize {
        self.shared.sample_len
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Stops accepting work, drains every queued job, and joins every
    /// worker. Idempotent across clones.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let workers: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// A per-worker model replica paired with its compiled forward plan.
///
/// The plan is compiled once per (replica, registry generation) and keeps
/// its activation arena and quantisation scratch across batches, so the
/// steady-state serving forward performs no per-layer heap allocation. A
/// model the graph compiler cannot lower (or a plan that rejects the live
/// input) falls back to the layer-at-a-time `Sequential` forward — the
/// engine serves either way.
struct PlannedModel {
    name: String,
    model: Sequential,
    plan: Option<ExecPlan>,
}

impl PlannedModel {
    /// Compiles `model` for the engine's input shape and publishes the
    /// compile-time gauges under metrics slot `index`.
    fn compile(index: usize, name: String, model: Sequential, shared: &Shared) -> Self {
        let plan = match ExecPlan::compile(&model, &shared.input_shape) {
            Ok(mut p) => {
                // Pre-size the arena for the largest coalesced batch so
                // even the first forward allocates nothing.
                p.reserve_batch(shared.config.max_batch);
                shared.metrics.set_model_plan(
                    index,
                    p.compile_us().max(1),
                    p.arena_peak_bytes() as u64,
                );
                Some(p)
            }
            Err(_) => None,
        };
        PlannedModel { name, model, plan }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, ServeError> {
        if let Some(plan) = &mut self.plan {
            if let Ok(out) = plan.forward(input) {
                return Ok(out);
            }
            // A plan that cannot execute the live input is stale; drop it
            // and serve through the layer path from now on.
            self.plan = None;
        }
        self.model
            .forward(input, Mode::Eval)
            .map_err(ServeError::from)
    }
}

/// Every registered model of one worker, compiled.
struct PlannedSet {
    baseline: PlannedModel,
    variants: Vec<PlannedModel>,
}

impl PlannedSet {
    fn compile(replicas: ReplicaSet, shared: &Shared) -> Self {
        PlannedSet {
            baseline: PlannedModel::compile(0, replicas.baseline.0, replicas.baseline.1, shared),
            variants: replicas
                .variants
                .into_iter()
                .enumerate()
                .map(|(i, (n, m))| PlannedModel::compile(1 + i, n, m, shared))
                .collect(),
        }
    }
}

fn worker_loop(idx: usize, replicas: ReplicaSet, mut generation: u64, shared: Arc<Shared>) {
    let max_batch = shared.config.max_batch;
    let max_delay = shared.config.max_delay;
    let steal_poll = shared.config.steal_poll;
    let mut planned = PlannedSet::compile(replicas, &shared);
    while let Some(jobs) = shared
        .queue
        .pop_batch(idx, max_batch, max_delay, steal_poll)
    {
        // Hot swap: between batches, refresh replicas when the registry
        // generation moved. In-flight work finished on the old weights;
        // this batch runs on the new ones (recompiled plans included).
        let current = shared.registry.generation();
        if current != generation {
            let (g, set) = shared.registry.snapshot();
            planned = PlannedSet::compile(set.replica(), &shared);
            generation = g;
        }
        let mut batch = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job {
                Job::Work(w) => batch.push(w),
                Job::Stall(d) => std::thread::sleep(d),
            }
        }
        if batch.is_empty() {
            continue;
        }
        let picked = Instant::now();
        for job in &batch {
            shared
                .metrics
                .queue_wait
                .record(picked.duration_since(job.enqueued));
        }
        shared.metrics.batch_sizes.record(batch.len());
        // A panicking forward (bug or injected fault) must cost one batch,
        // not the worker: the jobs' completion guards report WorkerLost
        // and the loop continues.
        let n_jobs = batch.len() as u64;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(&mut planned, batch, &shared);
        }));
        if outcome.is_err() {
            shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            shared.metrics.failed.fetch_add(n_jobs, Ordering::Relaxed);
        }
    }
}

/// Runs one coalesced batch through the baseline (and guard variants),
/// then answers every job's completion.
fn run_batch(replicas: &mut PlannedSet, batch: Vec<WorkJob>, shared: &Shared) {
    let m = &shared.metrics;
    // Deterministic fault site for the soak suite: a `panic` spec here
    // exercises the worker's catch_unwind + completion-guard path.
    faults::maybe_panic("serve_batch");
    let n = batch.len();
    let mut shape = vec![n];
    shape.extend_from_slice(&shared.input_shape);
    let mut data = Vec::with_capacity(n * shared.sample_len);
    for job in &batch {
        data.extend_from_slice(&job.input);
    }
    let forward_t0 = Instant::now();
    let outcome = (|| -> Result<_, ServeError> {
        let input = Tensor::new(&shape, data).map_err(advcomp_nn::NnError::from)?;
        let logits = replicas.baseline.forward(&input)?;
        m.record_model_forward(0, forward_t0.elapsed());
        let labels = logits.argmax_rows().map_err(advcomp_nn::NnError::from)?;
        let probs = softmax(&logits)?;
        let guard = match (&shared.guard, replicas.variants.is_empty()) {
            (Some(g), false) => {
                let mut variant_logits = Vec::with_capacity(replicas.variants.len());
                let mut per_variant = Vec::with_capacity(replicas.variants.len());
                for (i, planned) in replicas.variants.iter_mut().enumerate() {
                    let variant_t0 = Instant::now();
                    let vl = planned.forward(&input)?;
                    m.record_model_forward(1 + i, variant_t0.elapsed());
                    let vlabels = vl.argmax_rows().map_err(advcomp_nn::NnError::from)?;
                    per_variant.push((planned.name.clone(), vlabels));
                    variant_logits.push(vl);
                }
                // Score through the shared detector implementation — the
                // same code path the offline calibration sweep ran.
                let scores = g.detector.score(&logits, &variant_logits)?;
                Some((g.threshold, scores, per_variant))
            }
            _ => None,
        };
        Ok((labels, probs, guard))
    })();
    m.forward.record(forward_t0.elapsed());

    match outcome {
        Ok((labels, probs, guard)) => {
            let classes = probs.shape()[1];
            for (row, job) in batch.into_iter().enumerate() {
                let label = labels[row];
                let (suspect, flagged, variant_labels) = match &guard {
                    Some((threshold, scores, per_variant)) => {
                        let total = per_variant.len();
                        let mut disagree = 0usize;
                        for (vi, (_, vl)) in per_variant.iter().enumerate() {
                            if vl[row] != label {
                                disagree += 1;
                                m.record_variant_disagreement(vi);
                            }
                        }
                        let suspect = scores[row];
                        let flagged = suspect >= *threshold;
                        m.guard_scored.fetch_add(1, Ordering::Relaxed);
                        m.guard_variants.fetch_add(total as u64, Ordering::Relaxed);
                        m.guard_disagreements
                            .fetch_add(disagree as u64, Ordering::Relaxed);
                        if flagged {
                            m.guard_flagged.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(attack) = &job.attack {
                            m.record_attack_outcome(attack, flagged);
                        }
                        (
                            Some(suspect),
                            Some(flagged),
                            per_variant
                                .iter()
                                .map(|(name, vl)| (name.clone(), vl[row]))
                                .collect(),
                        )
                    }
                    None => (None, None, Vec::new()),
                };
                let prediction = Prediction {
                    label,
                    probs: job
                        .want_probs
                        .then(|| probs.data()[row * classes..(row + 1) * classes].to_vec()),
                    suspect,
                    flagged,
                    variant_labels,
                };
                m.completed.fetch_add(1, Ordering::Relaxed);
                m.total.record(job.enqueued.elapsed());
                job.done.send(Ok(prediction));
            }
        }
        Err(err) => {
            // One shared failure message; ServeError isn't Clone, so each
            // job gets its own rendering.
            let msg = err.to_string();
            for job in batch {
                m.failed.fetch_add(1, Ordering::Relaxed);
                m.total.record(job.enqueued.elapsed());
                job.done.send(Err(ServeError::BadRequest(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_models::mlp;

    fn registry(variants: usize) -> ModelRegistry {
        let mut reg = ModelRegistry::new(&[1, 28, 28]).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        for i in 0..variants {
            reg.add_variant(format!("v{i}"), mlp(8, i as u64 + 1))
                .unwrap();
        }
        reg
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_depth: 32,
            steal_poll: Duration::from_millis(1),
            guard: Some(GuardConfig { threshold: 0.5 }),
        }
    }

    #[test]
    fn rejects_bad_config() {
        let reg = registry(0);
        for bad in [
            ServeConfig {
                workers: 0,
                ..cfg()
            },
            ServeConfig {
                max_batch: 0,
                ..cfg()
            },
            ServeConfig {
                queue_depth: 0,
                ..cfg()
            },
            ServeConfig {
                steal_poll: Duration::ZERO,
                ..cfg()
            },
            ServeConfig {
                guard: Some(GuardConfig { threshold: 0.0 }),
                ..cfg()
            },
            ServeConfig {
                guard: Some(GuardConfig { threshold: 1.5 }),
                ..cfg()
            },
        ] {
            assert!(Engine::start(&reg, bad).is_err());
        }
    }

    #[test]
    fn serves_predictions_with_guard_scores() {
        let engine = Engine::start(&registry(2), cfg()).unwrap();
        let p = engine.submit(vec![0.5; 28 * 28], true).unwrap();
        assert!(p.label < 10);
        let probs = p.probs.expect("asked for probs");
        assert_eq!(probs.len(), 10);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(p.suspect.is_some());
        assert!(p.flagged.is_some());
        assert_eq!(p.variant_labels.len(), 2);
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(m.completed.load(Ordering::Relaxed), 1);
        // Per-model forward histograms: baseline + both variants recorded.
        assert_eq!(m.per_model_forward.len(), 3);
        assert_eq!(m.per_model_forward[0].0, "dense");
        for (name, h) in &m.per_model_forward {
            assert_eq!(h.count(), 1, "model {name} forward count");
        }
    }

    #[test]
    fn rejects_wrong_length_and_non_finite_inputs() {
        let engine = Engine::start(&registry(0), cfg()).unwrap();
        assert!(matches!(
            engine.submit(vec![0.0; 3], false),
            Err(ServeError::BadRequest(_))
        ));
        let mut nan = vec![0.0; 28 * 28];
        nan[0] = f32::NAN;
        assert!(matches!(
            engine.submit(nan, false),
            Err(ServeError::BadRequest(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn concurrent_submits_batch_and_all_complete() {
        let engine = Engine::start(&registry(1), cfg()).unwrap();
        let mut handles = Vec::new();
        for i in 0..24 {
            let e = engine.clone();
            handles.push(std::thread::spawn(move || {
                e.submit(vec![(i as f32) / 24.0; 28 * 28], false)
            }));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(m.completed.load(Ordering::Relaxed), 24);
        // With 24 near-simultaneous submits and max_batch 4 across 2
        // workers, at least one batch must have coalesced.
        assert!(m.batch_sizes.max() > 1, "max batch {}", m.batch_sizes.max());
    }

    #[test]
    fn submit_async_completes_with_token() {
        let engine = Engine::start(&registry(1), cfg()).unwrap();
        let (tx, rx) = mpsc::channel();
        for token in [7u64, 8, 9] {
            engine
                .submit_async(vec![token as f32 / 10.0; 28 * 28], false, token, &tx, None)
                .unwrap();
        }
        let mut tokens = Vec::new();
        for _ in 0..3 {
            let c = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(c.result.is_ok());
            tokens.push(c.token);
        }
        tokens.sort_unstable();
        assert_eq!(tokens, vec![7, 8, 9]);
        engine.shutdown();
    }

    #[test]
    fn injected_worker_panic_reports_worker_lost_not_a_hang() {
        let _g = faults::install(vec![faults::FaultSpec::once(
            faults::FaultKind::Panic,
            "serve_batch",
            0,
        )]);
        let engine = Engine::start(&registry(0), cfg()).unwrap();
        // First batch panics: its jobs must resolve to WorkerLost.
        let r = engine.submit(vec![0.2; 28 * 28], false);
        assert!(matches!(r, Err(ServeError::WorkerLost)), "{r:?}");
        // The worker survived the panic and still serves.
        let p = engine.submit(vec![0.3; 28 * 28], false).unwrap();
        assert!(p.label < 10);
        assert_eq!(
            engine.metrics().worker_panics.load(Ordering::Relaxed),
            1,
            "panic counted"
        );
        engine.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let engine = Engine::start(&registry(0), cfg()).unwrap();
        engine.shutdown();
        assert!(matches!(
            engine.submit(vec![0.0; 28 * 28], false),
            Err(ServeError::ShuttingDown)
        ));
        // shutdown is idempotent.
        engine.shutdown();
    }

    #[test]
    fn workers_compile_plans_and_export_gauges() {
        use crate::json::Json;
        let engine = Engine::start(&registry(1), cfg()).unwrap();
        let p = engine.submit(vec![0.5; 28 * 28], false).unwrap();
        assert!(p.label < 10);
        let snap = engine.metrics_snapshot().to_string();
        let parsed = Json::parse(snap.as_bytes()).unwrap();
        let plan = parsed.get("plan").expect("plan section");
        for name in ["dense", "v0"] {
            let g = plan
                .get(name)
                .unwrap_or_else(|| panic!("gauges for {name}"));
            assert_eq!(g.get("compiled"), Some(&Json::Bool(true)), "{name}");
            assert!(
                matches!(g.get("compile_us"), Some(Json::Num(v)) if *v >= 1.0),
                "{name} compile_us"
            );
            assert!(
                matches!(g.get("arena_peak_bytes"), Some(Json::Num(v)) if *v > 0.0),
                "{name} arena_peak_bytes"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn guard_disabled_leaves_scores_empty() {
        let config = ServeConfig {
            guard: None,
            ..cfg()
        };
        let engine = Engine::start(&registry(2), config).unwrap();
        let p = engine.submit(vec![0.1; 28 * 28], false).unwrap();
        assert!(p.suspect.is_none());
        assert!(p.flagged.is_none());
        assert!(p.variant_labels.is_empty());
        engine.shutdown();
        assert_eq!(engine.metrics().guard_scored.load(Ordering::Relaxed), 0);
    }

    /// A calibration artifact on the registry must override the ad-hoc
    /// [`GuardConfig`] threshold: the engine deploys the calibrated
    /// detector at the ROC-chosen threshold and reports it in metrics.
    #[test]
    fn calibration_artifact_overrides_guard_config() {
        use advcomp_detect::DetectorCalibration;
        let mut reg = registry(2);
        let clean: Vec<f64> = (0..32).map(|i| 0.01 * i as f64).collect();
        let adv: Vec<f64> = (0..32).map(|i| 0.6 + 0.01 * i as f64).collect();
        let cal = DetectorCalibration::calibrate("divergence", &clean, &adv, 0.05).unwrap();
        let threshold = cal.threshold;
        reg.set_calibration(cal).unwrap();
        let engine = Engine::start(&reg, cfg()).unwrap();
        let deployment = engine.metrics().guard_deployment().expect("guard on");
        assert_eq!(deployment.detector, "divergence");
        assert!(deployment.calibrated);
        assert!((deployment.threshold - threshold).abs() < 1e-12);
        // Uncalibrated fallback: disagreement detector at the config
        // threshold.
        let engine2 = Engine::start(&registry(1), cfg()).unwrap();
        let fallback = engine2.metrics().guard_deployment().expect("guard on");
        assert_eq!(fallback.detector, "disagreement");
        assert!(!fallback.calibrated);
        assert!((fallback.threshold - 0.5).abs() < 1e-12);
        engine.shutdown();
        engine2.shutdown();
    }

    /// Attack-tagged evaluation traffic must land in the per-attack
    /// detection counters, and every guard batch must feed the
    /// per-variant disagreement counters and the metrics snapshot.
    #[test]
    fn tagged_traffic_fills_per_attack_and_per_variant_metrics() {
        use crate::json::Json;
        let engine = Engine::start(&registry(2), cfg()).unwrap();
        engine.submit(vec![0.2; 28 * 28], false).unwrap();
        engine
            .submit_tagged(vec![0.7; 28 * 28], false, Some("uap".into()))
            .unwrap();
        engine
            .submit_tagged(vec![0.9; 28 * 28], false, Some("uap".into()))
            .unwrap();
        engine.shutdown();
        let m = engine.metrics();
        let outcomes = m.attack_outcomes();
        assert_eq!(outcomes.len(), 1, "only tagged traffic is tallied");
        let (name, scored, flagged) = &outcomes[0];
        assert_eq!(name, "uap");
        assert_eq!(*scored, 2);
        assert!(*flagged <= 2);
        assert_eq!(m.per_variant_disagreements.len(), 2);
        assert_eq!(m.per_variant_disagreements[0].0, "v0");

        let snap = engine.metrics_snapshot().to_string();
        let parsed = Json::parse(snap.as_bytes()).unwrap();
        let guard = parsed.get("guard").expect("guard section");
        assert_eq!(
            guard.get("detector").and_then(Json::as_str),
            Some("disagreement")
        );
        assert_eq!(guard.get("calibrated"), Some(&Json::Bool(false)));
        let attacks = guard.get("attacks").expect("attacks section");
        assert_eq!(
            attacks.get("uap").and_then(|a| a.get("scored")),
            Some(&Json::Num(2.0))
        );
        let per_variant = guard
            .get("per_variant_disagreements")
            .expect("per-variant section");
        assert!(per_variant.get("v0").is_some());
        assert!(per_variant.get("v1").is_some());
    }
}
