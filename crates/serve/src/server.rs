//! Non-blocking TCP server over the serving engine.
//!
//! # Architecture
//!
//! ```text
//! accept thread ──round-robin──> io loop 0 ──submit_async──> engine shards
//!   (conn limit,                 io loop 1 <──completions──  (workers)
//!    admission cfg)                 ...
//! ```
//!
//! One listener thread accepts connections and hands each to one of
//! `io_threads` **event loops** (round-robin). Each loop readiness-polls
//! its sockets ([`crate::netpoll`]), reads length-prefixed frames into a
//! reusable per-connection buffer (parsed in place — no per-frame
//! allocation), and dispatches predictions with
//! [`Engine::submit_async`](crate::Engine::submit_async): the loop never
//! blocks on inference. Worker completions come back on the loop's
//! channel, interrupting the poll via a [`crate::wake::Waker`], and are
//! matched to their connection by token. A slow or dead client therefore
//! costs one socket and its buffers — never a thread, and never a stall
//! of the batcher or of other connections.
//!
//! # Ordering
//!
//! Responses on one connection are sent in request order: every request
//! gets a FIFO slot at parse time (control commands and synchronous
//! rejections fill theirs immediately; predictions fill theirs when the
//! completion arrives) and the writer only releases the FIFO head. Token
//! epochs guard slot reuse, so a completion for a closed connection can
//! never reach a new tenant of the same slot.
//!
//! # Admission control vs overload
//!
//! With a [`RateLimitConfig`], each client IP owns a token bucket checked
//! **before** the engine queue: over-rate requests get the distinct
//! `rate_limited` status while queue-full requests get `overloaded`, so
//! clients can tell "back off to provisioned rate" from "server
//! saturated".

use crate::admission::AdmissionControl;
pub use crate::admission::RateLimitConfig;
use crate::engine::{Completion, CompletionSender, CompletionWaker};
use crate::json::{Json, JsonObj};
use crate::netpoll::{self, PollEntry};
use crate::protocol::{
    error_response, ok_response, read_frame, write_frame, Command, Request, MAX_FRAME,
};
use crate::wake::Waker;
use crate::{Engine, ServeError};
use advcomp_nn::faults;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval of the accept loop while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Upper bound on one event-loop poll sleep; also the cadence of idle
/// reaping and shutdown checks. Events (readiness, waker) cut it short.
const EVENT_TICK: Duration = Duration::from_millis(100);
/// Read granularity per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;
/// Keep reading a connection in one poll round until this much buffered
/// input accumulates; must exceed `MAX_FRAME + 4` so a maximum frame can
/// always complete.
const READ_BUDGET: usize = MAX_FRAME as usize + 4 + READ_CHUNK;
/// Pause reading a connection whose un-flushed responses exceed this
/// (backpressure on pipelining clients that never read).
const WRITE_HIGH_WATERMARK: usize = 1 << 20;
/// Default per-connection idle timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// On shutdown, how long the loops wait for in-flight responses to flush.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Server-side configuration (the engine has its own [`crate::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of event-loop I/O threads connections are sharded over.
    pub io_threads: usize,
    /// Per-client-IP admission control; `None` disables rate limiting.
    pub rate_limit: Option<RateLimitConfig>,
    /// Idle connections (no traffic, nothing in flight) are closed after
    /// this long.
    pub read_timeout: Duration,
    /// Accept-time cap on concurrent connections across all loops.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            io_threads: 1,
            rate_limit: None,
            read_timeout: READ_TIMEOUT,
            max_conns: 1024,
        }
    }
}

/// A running TCP server bound to a local address.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    io_threads: Vec<JoinHandle<()>>,
    engine: Engine,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) with default
    /// [`ServerConfig`] and starts serving over `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails.
    pub fn bind(engine: Engine, addr: &str) -> Result<Server, ServeError> {
        Server::bind_with(engine, addr, ServerConfig::default())
    }

    /// Binds `addr` with an explicit [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails, [`ServeError::Config`] for
    /// invalid configuration.
    pub fn bind_with(
        engine: Engine,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        if config.io_threads == 0 {
            return Err(ServeError::Config("io_threads must be >= 1".into()));
        }
        if config.max_conns == 0 {
            return Err(ServeError::Config("max_conns must be >= 1".into()));
        }
        let admission = match config.rate_limit {
            Some(cfg) => Some(Arc::new(
                AdmissionControl::new(cfg).map_err(ServeError::Config)?,
            )),
            None => None,
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));

        let mut targets = Vec::with_capacity(config.io_threads);
        let mut io_threads = Vec::with_capacity(config.io_threads);
        for i in 0..config.io_threads {
            let waker = Arc::new(Waker::new()?);
            let (conn_tx, conn_rx) = mpsc::channel();
            let (comp_tx, comp_rx) = mpsc::channel();
            targets.push((conn_tx, Arc::clone(&waker)));
            let engine_waker: CompletionWaker = {
                let w = Arc::clone(&waker);
                Arc::new(move || w.wake())
            };
            let ctx = IoCtx {
                engine: engine.clone(),
                conn_rx,
                comp_rx,
                comp_tx,
                waker,
                engine_waker,
                shutdown: Arc::clone(&shutdown),
                active: Arc::clone(&active),
                admission: admission.clone(),
                read_timeout: config.read_timeout,
            };
            io_threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-io-{i}"))
                    .spawn(move || io_loop(ctx))
                    .map_err(ServeError::Io)?,
            );
        }

        let accept_thread = {
            let engine = engine.clone();
            let shutdown = Arc::clone(&shutdown);
            let max_conns = config.max_conns;
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, engine, shutdown, targets, active, max_conns))
                .map_err(ServeError::Io)?
        };
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            io_threads,
            engine,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (e.g. by a client's
    /// `shutdown` command).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without blocking: the accept loop exits on its
    /// next poll; event loops flush in-flight responses and exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop and every event loop have exited,
    /// then stops the engine.
    pub fn join(mut self) {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in std::mem::take(&mut self.io_threads) {
            let _ = t.join();
        }
        self.engine.shutdown();
    }

    /// Blocks until a client's `shutdown` command (or
    /// [`Server::request_shutdown`] from another thread) stops the server.
    pub fn serve_forever(self) {
        while !self.is_shutting_down() {
            std::thread::sleep(ACCEPT_POLL * 4);
        }
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in std::mem::take(&mut self.io_threads) {
            let _ = t.join();
        }
    }
}

/// Per-io-thread handoff: the channel new connections arrive on, plus the
/// waker that tells its event loop to pick them up.
type IoTarget = (mpsc::Sender<(TcpStream, SocketAddr)>, Arc<Waker>);

fn accept_loop(
    listener: TcpListener,
    engine: Engine,
    shutdown: Arc<AtomicBool>,
    targets: Vec<IoTarget>,
    active: Arc<AtomicUsize>,
    max_conns: usize,
) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                if active.load(Ordering::Relaxed) >= max_conns {
                    engine
                        .metrics()
                        .rejected_conns
                        .fetch_add(1, Ordering::Relaxed);
                    continue; // drop the socket: explicit accept-time shedding
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let (tx, waker) = &targets[next % targets.len()];
                next = next.wrapping_add(1);
                active.fetch_add(1, Ordering::Relaxed);
                if tx.send((stream, peer)).is_err() {
                    active.fetch_sub(1, Ordering::Relaxed);
                } else {
                    waker.wake();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the listener closes the port; event loops drain and exit
    // on the shared flag.
}

/// Everything one event loop needs; owned by its thread.
struct IoCtx {
    engine: Engine,
    conn_rx: Receiver<(TcpStream, SocketAddr)>,
    comp_rx: Receiver<Completion>,
    comp_tx: CompletionSender,
    waker: Arc<Waker>,
    engine_waker: CompletionWaker,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    admission: Option<Arc<AdmissionControl>>,
    read_timeout: Duration,
}

/// One FIFO slot of a connection's response queue. `response` is the
/// fully framed bytes once known; `None` marks an in-flight prediction.
struct Pending {
    seq: u32,
    id: String,
    response: Option<Vec<u8>>,
}

/// Why a connection is being torn down.
enum Close {
    /// Clean close (EOF at a frame boundary, idle reap, protocol close).
    Clean,
    /// Transport failure: reset, I/O error, or EOF mid-frame.
    Reset,
}

struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    seq: u32,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    pending: VecDeque<Pending>,
    last_activity: Instant,
    /// Reads are done; close once `pending` and `write_buf` drain.
    close_after_flush: bool,
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    std::os::unix::io::AsRawFd::as_raw_fd(stream)
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    -1
}

fn token_of(epoch: u16, slot: usize, seq: u32) -> u64 {
    ((epoch as u64) << 48) | (((slot as u64) & 0xFFFF) << 32) | seq as u64
}

fn framed(json: &Json) -> Vec<u8> {
    let mut buf = Vec::new();
    // Responses are server-built and far below MAX_FRAME; a failure here
    // would be a server bug, and dropping the frame (closing the conn via
    // flush error later) beats panicking the event loop.
    let _ = write_frame(&mut buf, json.to_string().as_bytes());
    buf
}

impl Conn {
    fn new(stream: TcpStream, peer: IpAddr) -> Conn {
        Conn {
            stream,
            peer,
            seq: 0,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            last_activity: Instant::now(),
            close_after_flush: false,
        }
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq = self.seq.wrapping_add(1);
        s
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Queues a response whose bytes are already known, in FIFO position.
    fn push_ready(&mut self, json: &Json) {
        let seq = self.next_seq();
        self.pending.push_back(Pending {
            seq,
            id: String::new(),
            response: Some(framed(json)),
        });
    }

    /// Drains the socket, parses complete frames, dispatches requests.
    fn handle_readable(&mut self, slot: usize, epoch: u16, ctx: &IoCtx) -> Result<(), Close> {
        // Soak-test fault site: an injected `io` fault here behaves like a
        // connection reset observed by the reader.
        if faults::io_error("serve_conn_read").is_some() {
            return Err(Close::Reset);
        }
        let mut eof = false;
        loop {
            if self.read_buf.len() >= READ_BUDGET {
                break; // keep per-connection memory bounded; poll re-arms
            }
            let old = self.read_buf.len();
            self.read_buf.resize(old + READ_CHUNK, 0);
            match (&self.stream).read(&mut self.read_buf[old..]) {
                Ok(0) => {
                    self.read_buf.truncate(old);
                    eof = true;
                    break;
                }
                Ok(n) => self.read_buf.truncate(old + n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.read_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.read_buf.truncate(old);
                }
                Err(_) => {
                    self.read_buf.truncate(old);
                    return Err(Close::Reset);
                }
            }
        }
        self.parse_frames(slot, epoch, ctx);
        if eof {
            if !self.read_buf.is_empty() {
                // Short read mid-frame: the client died between a length
                // header and its payload.
                return Err(Close::Reset);
            }
            self.close_after_flush = true;
        }
        Ok(())
    }

    /// Consumes every complete frame in `read_buf`, compacting the
    /// remainder to the front (the buffer is reused across reads).
    fn parse_frames(&mut self, slot: usize, epoch: u16, ctx: &IoCtx) {
        let mut consumed = 0usize;
        loop {
            let avail = self.read_buf.len() - consumed;
            if avail < 4 {
                break;
            }
            let len = u32::from_le_bytes(
                self.read_buf[consumed..consumed + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            if len > MAX_FRAME {
                // The stream is no longer frame-aligned: answer once,
                // discard the garbage, and hang up after flushing.
                ctx.engine
                    .metrics()
                    .bad_frames
                    .fetch_add(1, Ordering::Relaxed);
                let err = ServeError::BadRequest(format!(
                    "announced frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"
                ));
                self.push_ready(&error_response("", &err));
                self.close_after_flush = true;
                consumed = self.read_buf.len();
                break;
            }
            let len = len as usize;
            if avail < 4 + len {
                break;
            }
            let req = Request::parse(&self.read_buf[consumed + 4..consumed + 4 + len]);
            consumed += 4 + len;
            match req {
                Ok(r) => self.handle_request(r, slot, epoch, ctx),
                Err(e) => {
                    // Malformed payload inside a well-framed message: the
                    // stream stays aligned, so answer and keep serving.
                    ctx.engine
                        .metrics()
                        .bad_frames
                        .fetch_add(1, Ordering::Relaxed);
                    self.push_ready(&error_response("", &e));
                }
            }
        }
        if consumed > 0 {
            self.read_buf.copy_within(consumed.., 0);
            let left = self.read_buf.len() - consumed;
            self.read_buf.truncate(left);
            self.last_activity = Instant::now();
        }
    }

    fn handle_request(&mut self, req: Request, slot: usize, epoch: u16, ctx: &IoCtx) {
        match req {
            Request::Predict {
                id,
                input,
                probs,
                attack,
            } => {
                if let Some(ac) = &ctx.admission {
                    if !ac.admit(self.peer, Instant::now()) {
                        ctx.engine
                            .metrics()
                            .rate_limited
                            .fetch_add(1, Ordering::Relaxed);
                        self.push_ready(&error_response(&id, &ServeError::RateLimited));
                        return;
                    }
                }
                let seq = self.next_seq();
                let token = token_of(epoch, slot, seq);
                match ctx.engine.submit_async_tagged(
                    input,
                    probs,
                    attack,
                    token,
                    &ctx.comp_tx,
                    Some(ctx.engine_waker.clone()),
                ) {
                    Ok(()) => self.pending.push_back(Pending {
                        seq,
                        id,
                        response: None,
                    }),
                    Err(e) => self.push_ready(&error_response(&id, &e)),
                }
            }
            Request::Control { id, cmd } => {
                let json = match cmd {
                    Command::Ping => JsonObj::new()
                        .set("id", Json::Str(id))
                        .set("status", Json::Str("ok".into()))
                        .build(),
                    Command::Metrics => JsonObj::new()
                        .set("id", Json::Str(id))
                        .set("status", Json::Str("ok".into()))
                        .set("metrics", ctx.engine.metrics_snapshot())
                        .build(),
                    Command::Shutdown => {
                        ctx.shutdown.store(true, Ordering::SeqCst);
                        JsonObj::new()
                            .set("id", Json::Str(id))
                            .set("status", Json::Str("ok".into()))
                            .set("shutting_down", Json::Bool(true))
                            .build()
                    }
                };
                self.push_ready(&json);
            }
        }
    }

    /// Moves every answered FIFO-head response into the write buffer.
    fn release_ready(&mut self) {
        while let Some(front) = self.pending.front_mut() {
            match front.response.take() {
                Some(bytes) => {
                    self.write_buf.extend_from_slice(&bytes);
                    self.pending.pop_front();
                    self.last_activity = Instant::now();
                }
                None => break,
            }
        }
        // Reclaim the buffer once fully flushed rather than growing it
        // forever under pipelining.
        if self.write_pos == self.write_buf.len() && self.write_pos > 0 {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// Writes as much buffered response data as the socket accepts.
    fn flush(&mut self) -> Result<(), Close> {
        while self.write_pos < self.write_buf.len() {
            match (&self.stream).write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(Close::Reset),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(Close::Reset),
            }
        }
        if self.write_pos == self.write_buf.len() && self.write_pos > 0 {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        Ok(())
    }

    /// Fully drained: nothing buffered, nothing in flight.
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.write_pos == self.write_buf.len()
    }
}

fn io_loop(ctx: IoCtx) {
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut epochs: Vec<u16> = Vec::new();
    let mut shutdown_since: Option<Instant> = None;
    loop {
        let shutting = ctx.shutdown.load(Ordering::SeqCst);
        if shutting && shutdown_since.is_none() {
            shutdown_since = Some(Instant::now());
        }
        if let Some(t0) = shutdown_since {
            let all_drained = slots.iter().flatten().all(Conn::drained);
            if all_drained || t0.elapsed() > SHUTDOWN_GRACE {
                break;
            }
        }

        // Readiness poll: waker first, then every live connection.
        let mut entries = vec![PollEntry::new(ctx.waker.poll_fd(), true, false)];
        let mut entry_slots = Vec::with_capacity(slots.len());
        for (i, c) in slots.iter().enumerate() {
            if let Some(c) = c {
                let want_read = !shutting
                    && !c.close_after_flush
                    && c.unflushed() < WRITE_HIGH_WATERMARK
                    && c.read_buf.len() < READ_BUDGET;
                let want_write = c.unflushed() > 0;
                entries.push(PollEntry::new(raw_fd(&c.stream), want_read, want_write));
                entry_slots.push(i);
            }
        }
        let _ = netpoll::wait(&mut entries, EVENT_TICK);
        ctx.waker.drain();

        // Adopt connections handed over by the acceptor.
        while let Ok((stream, peer)) = ctx.conn_rx.try_recv() {
            let conn = Conn::new(stream, peer.ip());
            ctx.engine
                .metrics()
                .conns_opened
                .fetch_add(1, Ordering::Relaxed);
            match slots.iter().position(Option::is_none) {
                Some(free) => {
                    epochs[free] = epochs[free].wrapping_add(1);
                    slots[free] = Some(conn);
                }
                None => {
                    slots.push(Some(conn));
                    epochs.push(0);
                }
            }
        }

        // Apply worker completions to their pending FIFO slots.
        while let Ok(c) = ctx.comp_rx.try_recv() {
            apply_completion(&mut slots, &epochs, c);
        }

        // Per-connection I/O, driven by the poll results.
        let mut to_close: Vec<(usize, Close)> = Vec::new();
        for (e, &slot) in entries[1..].iter().zip(&entry_slots) {
            let Some(conn) = slots[slot].as_mut() else {
                continue;
            };
            if e.readable && !shutting && !conn.close_after_flush {
                if let Err(reason) = conn.handle_readable(slot, epochs[slot], &ctx) {
                    to_close.push((slot, reason));
                    continue;
                }
            } else if e.closed {
                to_close.push((slot, Close::Reset));
                continue;
            }
        }

        // Release answered responses, flush, and decide closes.
        let now = Instant::now();
        for (slot, entry) in slots.iter_mut().enumerate() {
            if to_close.iter().any(|(s, _)| *s == slot) {
                continue;
            }
            let Some(conn) = entry.as_mut() else {
                continue;
            };
            conn.release_ready();
            if let Err(reason) = conn.flush() {
                to_close.push((slot, reason));
                continue;
            }
            if conn.close_after_flush && conn.drained() {
                to_close.push((slot, Close::Clean));
                continue;
            }
            if !shutting
                && conn.drained()
                && conn.read_buf.is_empty()
                && now.duration_since(conn.last_activity) > ctx.read_timeout
            {
                to_close.push((slot, Close::Clean)); // idle reap
            }
        }
        for (slot, reason) in to_close {
            if slots[slot].is_some() {
                close_conn(&mut slots, slot, reason, &ctx);
            }
        }
    }
    // Teardown: whatever is left closes now (grace expired or drained).
    for slot in 0..slots.len() {
        if slots[slot].is_some() {
            close_conn(&mut slots, slot, Close::Clean, &ctx);
        }
    }
}

fn apply_completion(slots: &mut [Option<Conn>], epochs: &[u16], c: Completion) {
    let slot = ((c.token >> 32) & 0xFFFF) as usize;
    let epoch = (c.token >> 48) as u16;
    let seq = c.token as u32;
    let Some(Some(conn)) = slots.get_mut(slot) else {
        return; // connection already gone
    };
    if epochs[slot] != epoch {
        return; // slot was reused; completion belongs to a dead tenant
    }
    let Some(p) = conn
        .pending
        .iter_mut()
        .find(|p| p.seq == seq && p.response.is_none())
    else {
        return;
    };
    let json = match &c.result {
        Ok(prediction) => ok_response(&p.id, prediction),
        Err(e) => error_response(&p.id, e),
    };
    p.response = Some(framed(&json));
}

fn close_conn(slots: &mut [Option<Conn>], slot: usize, reason: Close, ctx: &IoCtx) {
    let m = ctx.engine.metrics();
    m.conns_closed.fetch_add(1, Ordering::Relaxed);
    if matches!(reason, Close::Reset) {
        m.conn_resets.fetch_add(1, Ordering::Relaxed);
    }
    slots[slot] = None;
    ctx.active.fetch_sub(1, Ordering::Relaxed);
}

/// Minimal blocking client for tests, benches and smoke checks.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connection failure.
    pub fn connect(addr: SocketAddr) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Client { stream, next_id: 0 })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure or a malformed server frame.
    pub fn call(&mut self, req: &Request) -> Result<crate::json::Json, ServeError> {
        write_frame(&mut self.stream, &req.to_payload())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        crate::json::Json::parse(&payload).map_err(|e| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response frame: {e}"),
            ))
        })
    }

    /// Classifies one sample, returning the parsed response object.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn predict(
        &mut self,
        input: Vec<f32>,
        probs: bool,
    ) -> Result<crate::json::Json, ServeError> {
        self.predict_tagged(input, probs, None)
    }

    /// Classifies one sample carrying an attack tag so the server tallies
    /// it in the per-attack detection metrics (evaluation traffic only).
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn predict_tagged(
        &mut self,
        input: Vec<f32>,
        probs: bool,
        attack: Option<String>,
    ) -> Result<crate::json::Json, ServeError> {
        self.next_id += 1;
        let id = format!("r{}", self.next_id);
        self.call(&Request::Predict {
            id,
            input,
            probs,
            attack,
        })
    }

    /// Issues a control command, returning the parsed response object.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn control(&mut self, cmd: Command) -> Result<crate::json::Json, ServeError> {
        self.next_id += 1;
        let id = format!("c{}", self.next_id);
        self.call(&Request::Control { id, cmd })
    }

    /// Writes raw bytes straight to the socket (for malformed-frame
    /// tests).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one raw response frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure or EOF mid-frame.
    pub fn read_response(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        Ok(read_frame(&mut self.stream)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::registry::ModelRegistry;
    use crate::{GuardConfig, ServeConfig};
    use advcomp_models::mlp;

    fn test_engine() -> Engine {
        let mut reg = ModelRegistry::new(&[1, 28, 28]).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        reg.add_variant("alt", mlp(8, 1)).unwrap();
        Engine::start(
            &reg,
            ServeConfig {
                workers: 2,
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                queue_depth: 32,
                guard: Some(GuardConfig { threshold: 0.5 }),
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    fn test_server() -> Server {
        Server::bind(test_engine(), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn predict_ping_metrics_roundtrip() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let pong = client.control(Command::Ping).unwrap();
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));

        let resp = client.predict(vec![0.25; 28 * 28], false).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert!(resp.get("label").and_then(Json::as_u64).unwrap() < 10);
        assert!(resp.get("suspect").and_then(Json::as_f64).is_some());

        let metrics = client.control(Command::Metrics).unwrap();
        let m = metrics.get("metrics").unwrap();
        assert_eq!(
            m.get("requests").and_then(|r| r.get("completed")),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            m.get("conns").and_then(|c| c.get("opened")),
            Some(&Json::Num(1.0))
        );
        server.join();
    }

    #[test]
    fn malformed_and_oversized_frames_get_error_then_close() {
        let server = test_server();

        // Malformed JSON: error response, connection stays frame-aligned
        // and usable afterwards.
        let mut c1 = Client::connect(server.local_addr()).unwrap();
        c1.send_raw(&{
            let mut buf = Vec::new();
            write_frame(&mut buf, b"{oops").unwrap();
            buf
        })
        .unwrap();
        let resp = Json::parse(&c1.read_response().unwrap().unwrap()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        let ok = c1.predict(vec![0.5; 28 * 28], false).unwrap();
        assert_eq!(
            ok.get("status").and_then(Json::as_str),
            Some("ok"),
            "connection survives a malformed payload"
        );

        // Oversized header: one error frame, then the server closes.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        c2.send_raw(&(crate::protocol::MAX_FRAME + 1).to_le_bytes())
            .unwrap();
        let resp = Json::parse(&c2.read_response().unwrap().unwrap()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert!(c2.read_response().unwrap().is_none(), "server should close");
        server.join();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // Fire a burst of frames without reading a single response;
        // interleave a control command to pin mixed-type ordering too.
        let mut blob = Vec::new();
        for i in 0..10 {
            let req = Request::Predict {
                id: format!("p{i}"),
                input: vec![i as f32 / 10.0; 28 * 28],
                probs: false,
                attack: None,
            };
            write_frame(&mut blob, &req.to_payload()).unwrap();
        }
        let ctl = Request::Control {
            id: "ctl".into(),
            cmd: Command::Ping,
        };
        write_frame(&mut blob, &ctl.to_payload()).unwrap();
        client.send_raw(&blob).unwrap();

        for i in 0..10 {
            let resp = Json::parse(&client.read_response().unwrap().unwrap()).unwrap();
            assert_eq!(
                resp.get("id").and_then(Json::as_str),
                Some(format!("p{i}").as_str()),
                "response order must match request order"
            );
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        }
        let resp = Json::parse(&client.read_response().unwrap().unwrap()).unwrap();
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("ctl"));
        server.join();
    }

    #[test]
    fn rate_limit_returns_rate_limited_not_overloaded() {
        let server = Server::bind_with(
            test_engine(),
            "127.0.0.1:0",
            ServerConfig {
                rate_limit: Some(RateLimitConfig {
                    rps: 0.001, // effectively no refill within the test
                    burst: 2.0,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut statuses = Vec::new();
        for _ in 0..4 {
            let resp = client.predict(vec![0.5; 28 * 28], false).unwrap();
            statuses.push(
                resp.get("status")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert_eq!(statuses[..2], ["ok", "ok"], "burst admitted");
        assert_eq!(
            statuses[2..],
            ["rate_limited", "rate_limited"],
            "over-rate refused with the distinct status"
        );
        let m = client.control(Command::Metrics).unwrap();
        assert_eq!(
            m.get("metrics")
                .and_then(|m| m.get("requests"))
                .and_then(|r| r.get("rate_limited")),
            Some(&Json::Num(2.0))
        );
        server.join();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = test_server();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        let resp = client.control(Command::Shutdown).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        server.join();
        // The listener is gone: a fresh connection must fail (possibly
        // after the OS finishes tearing down the socket).
        std::thread::sleep(Duration::from_millis(50));
        assert!(Client::connect(addr).is_err());
    }

    #[test]
    fn connection_limit_sheds_at_accept() {
        let server = Server::bind_with(
            test_engine(),
            "127.0.0.1:0",
            ServerConfig {
                max_conns: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut c1 = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            c1.control(Command::Ping)
                .unwrap()
                .get("status")
                .and_then(Json::as_str),
            Some("ok")
        );
        // The second connection is accepted by the OS but immediately
        // dropped by the server; a request on it fails.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(c2.predict(vec![0.5; 28 * 28], false).is_err());
        let m = c1.control(Command::Metrics).unwrap();
        let rejected = m
            .get("metrics")
            .and_then(|m| m.get("conns"))
            .and_then(|c| c.get("rejected"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(rejected >= 1.0, "rejected {rejected}");
        server.join();
    }
}
