//! Blocking TCP server over the serving engine.
//!
//! One listener thread accepts connections (non-blocking accept polled
//! against a shutdown flag, so shutdown never waits on a dead socket) and
//! hands each connection to its own thread. Connection threads read
//! length-prefixed frames, dispatch predictions into the shared
//! [`Engine`](crate::Engine), and write one response frame per request.
//! Because `Engine::submit` blocks only the connection's own thread, slow
//! clients never stall the batcher, and queue-full backpressure surfaces
//! as an `overloaded` response frame rather than a hang.

use crate::protocol::{error_response, ok_response, read_frame, write_frame, Command, Request};
use crate::{Engine, ServeError};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval of the accept loop while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection read timeout; a silent client is eventually dropped so
/// its thread (and socket) are reclaimed.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A running TCP server bound to a local address.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    engine: Engine,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections over `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails.
    pub fn bind(engine: Engine, addr: &str) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let engine = engine.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, engine, shutdown))
                .map_err(ServeError::Io)?
        };
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            engine,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (e.g. by a client's
    /// `shutdown` command).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without blocking: the accept loop exits on its
    /// next poll and drains its connection threads.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop (and every connection thread it
    /// spawned) has exited, then stops the engine.
    pub fn join(mut self) {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.engine.shutdown();
    }

    /// Blocks until a client's `shutdown` command (or
    /// [`Server::request_shutdown`] from another thread) stops the server.
    pub fn serve_forever(self) {
        while !self.is_shutting_down() {
            std::thread::sleep(ACCEPT_POLL * 4);
        }
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, engine: Engine, shutdown: Arc<AtomicBool>) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = engine.clone();
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection_loop(stream, engine, shutdown));
                match handle {
                    Ok(h) => conns.lock().unwrap_or_else(|p| p.into_inner()).push(h),
                    Err(_) => continue, // thread spawn failed; drop the conn
                }
                // Opportunistically reap finished connection threads so a
                // long-lived server doesn't accumulate handles.
                conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Graceful drain: wait for in-flight connections to finish their
    // current requests. Their read timeouts bound this wait.
    let drained: Vec<_> = conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .drain(..)
        .collect();
    for h in drained {
        let _ = h.join();
    }
}

fn connection_loop(mut stream: TcpStream, engine: Engine, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized or truncated frame: the stream is no longer
                // frame-aligned, so answer once and hang up.
                let resp = error_response("", &ServeError::BadRequest(e.to_string()));
                let _ = write_frame(&mut stream, resp.to_string().as_bytes());
                let _ = stream.flush();
                return;
            }
            Err(_) => return, // timeout / reset
        };
        let response = match Request::parse(&payload) {
            Ok(Request::Predict { id, input, probs }) => match engine.submit(input, probs) {
                Ok(p) => ok_response(&id, &p),
                Err(e) => error_response(&id, &e),
            },
            Ok(Request::Control { id, cmd }) => match cmd {
                Command::Ping => crate::json::JsonObj::new()
                    .set("id", crate::json::Json::Str(id))
                    .set("status", crate::json::Json::Str("ok".into()))
                    .build(),
                Command::Metrics => crate::json::JsonObj::new()
                    .set("id", crate::json::Json::Str(id))
                    .set("status", crate::json::Json::Str("ok".into()))
                    .set("metrics", engine.metrics_snapshot())
                    .build(),
                Command::Shutdown => {
                    shutdown.store(true, Ordering::SeqCst);
                    crate::json::JsonObj::new()
                        .set("id", crate::json::Json::Str(id))
                        .set("status", crate::json::Json::Str("ok".into()))
                        .set("shutting_down", crate::json::Json::Bool(true))
                        .build()
                }
            },
            Err(e) => error_response("", &e),
        };
        if write_frame(&mut stream, response.to_string().as_bytes()).is_err() {
            return;
        }
    }
}

/// Minimal blocking client for tests, benches and smoke checks.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connection failure.
    pub fn connect(addr: SocketAddr) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Client { stream, next_id: 0 })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure or a malformed server frame.
    pub fn call(&mut self, req: &Request) -> Result<crate::json::Json, ServeError> {
        write_frame(&mut self.stream, &req.to_payload())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        crate::json::Json::parse(&payload).map_err(|e| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response frame: {e}"),
            ))
        })
    }

    /// Classifies one sample, returning the parsed response object.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn predict(
        &mut self,
        input: Vec<f32>,
        probs: bool,
    ) -> Result<crate::json::Json, ServeError> {
        self.next_id += 1;
        let id = format!("r{}", self.next_id);
        self.call(&Request::Predict { id, input, probs })
    }

    /// Issues a control command, returning the parsed response object.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn control(&mut self, cmd: Command) -> Result<crate::json::Json, ServeError> {
        self.next_id += 1;
        let id = format!("c{}", self.next_id);
        self.call(&Request::Control { id, cmd })
    }

    /// Writes raw bytes straight to the socket (for malformed-frame
    /// tests).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one raw response frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure or EOF mid-frame.
    pub fn read_response(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        Ok(read_frame(&mut self.stream)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::registry::ModelRegistry;
    use crate::{GuardConfig, ServeConfig};
    use advcomp_models::mlp;

    fn test_server() -> Server {
        let mut reg = ModelRegistry::new(&[1, 28, 28]).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        reg.add_variant("alt", mlp(8, 1)).unwrap();
        let engine = Engine::start(
            &reg,
            ServeConfig {
                workers: 2,
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                queue_depth: 32,
                guard: Some(GuardConfig { threshold: 0.5 }),
            },
        )
        .unwrap();
        Server::bind(engine, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn predict_ping_metrics_roundtrip() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let pong = client.control(Command::Ping).unwrap();
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));

        let resp = client.predict(vec![0.25; 28 * 28], false).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert!(resp.get("label").and_then(Json::as_u64).unwrap() < 10);
        assert!(resp.get("suspect").and_then(Json::as_f64).is_some());

        let metrics = client.control(Command::Metrics).unwrap();
        let m = metrics.get("metrics").unwrap();
        assert_eq!(
            m.get("requests").and_then(|r| r.get("completed")),
            Some(&Json::Num(1.0))
        );
        server.join();
    }

    #[test]
    fn malformed_and_oversized_frames_get_error_then_close() {
        let server = test_server();

        // Malformed JSON: error response, connection stays frame-aligned
        // so it is answered (then we hang up ourselves).
        let mut c1 = Client::connect(server.local_addr()).unwrap();
        c1.send_raw(&{
            let mut buf = Vec::new();
            write_frame(&mut buf, b"{oops").unwrap();
            buf
        })
        .unwrap();
        let resp = Json::parse(&c1.read_response().unwrap().unwrap()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));

        // Oversized header: one error frame, then the server closes.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        c2.send_raw(&(crate::protocol::MAX_FRAME + 1).to_le_bytes())
            .unwrap();
        let resp = Json::parse(&c2.read_response().unwrap().unwrap()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert!(c2.read_response().unwrap().is_none(), "server should close");
        server.join();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = test_server();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        let resp = client.control(Command::Shutdown).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        server.join();
        // The listener is gone: a fresh connection must fail (possibly
        // after the OS finishes tearing down the socket).
        std::thread::sleep(Duration::from_millis(50));
        assert!(Client::connect(addr).is_err());
    }
}
