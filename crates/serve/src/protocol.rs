//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! +----------------+---------------------+
//! | u32 LE length  |  UTF-8 JSON payload |
//! +----------------+---------------------+
//! ```
//!
//! The length counts payload bytes only and is capped at
//! [`MAX_FRAME`]; a peer announcing a larger frame is rejected before any
//! payload is read, so an adversarial header cannot make the server
//! allocate unbounded memory.
//!
//! # Requests
//!
//! ```json
//! {"id": "r1", "input": [0.0, 0.1, ...]}
//! {"id": "r2", "input": [...], "probs": true}
//! {"id": "c1", "cmd": "ping" | "metrics" | "shutdown"}
//! ```
//!
//! # Responses
//!
//! ```json
//! {"id": "r1", "status": "ok", "label": 3, "suspect": 0.25, "flagged": false,
//!  "variants": {"quant8": 3, "pruned": 5}}
//! {"id": "r2", "status": "overloaded", "error": "request queue full ..."}
//! {"id": "c1", "status": "error", "error": "bad request: ..."}
//! ```

use crate::json::{Json, JsonObj};
use crate::{Prediction, ServeError};

// The framing itself (u32 LE length + payload, 16 MiB cap) lives in the
// shared `advcomp-wire` crate so the sweep coordinator/worker protocol in
// `advcomp-core` speaks byte-identical frames; re-exported here so serve
// callers keep one import path.
pub use advcomp_wire::{read_frame, write_frame, MAX_FRAME};

/// Control commands carried by `"cmd"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe; answered immediately with `status: ok`.
    Ping,
    /// Returns the engine's metrics snapshot under `"metrics"`.
    Metrics,
    /// Asks the server to shut down gracefully.
    Shutdown,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one sample.
    Predict {
        /// Client-chosen correlation id, echoed in the response.
        id: String,
        /// Flattened input sample.
        input: Vec<f32>,
        /// Include the softmax distribution in the response.
        probs: bool,
        /// Optional attack label for evaluation traffic; the engine
        /// tallies per-attack detection rates keyed by this tag.
        attack: Option<String>,
    },
    /// A control command.
    Control {
        /// Client-chosen correlation id, echoed in the response.
        id: String,
        /// The command.
        cmd: Command,
    },
}

impl Request {
    /// The request's correlation id.
    pub fn id(&self) -> &str {
        match self {
            Request::Predict { id, .. } | Request::Control { id, .. } => id,
        }
    }

    /// Parses a request from frame payload bytes.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on malformed JSON or an invalid shape.
    pub fn parse(payload: &[u8]) -> Result<Request, ServeError> {
        let json =
            Json::parse(payload).map_err(|e| ServeError::BadRequest(format!("bad JSON: {e}")))?;
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string field 'id'".into()))?
            .to_string();
        if let Some(cmd) = json.get("cmd") {
            let cmd = match cmd.as_str() {
                Some("ping") => Command::Ping,
                Some("metrics") => Command::Metrics,
                Some("shutdown") => Command::Shutdown,
                _ => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown cmd {cmd}, expected ping|metrics|shutdown"
                    )))
                }
            };
            return Ok(Request::Control { id, cmd });
        }
        let input = json
            .get("input")
            .and_then(Json::as_array)
            .ok_or_else(|| ServeError::BadRequest("missing array field 'input'".into()))?;
        let mut values = Vec::with_capacity(input.len());
        for v in input {
            let n = v
                .as_f64()
                .ok_or_else(|| ServeError::BadRequest("'input' must hold numbers".into()))?;
            values.push(n as f32);
        }
        let probs = json.get("probs").and_then(Json::as_bool).unwrap_or(false);
        let attack = json
            .get("attack")
            .and_then(Json::as_str)
            .map(str::to_string);
        Ok(Request::Predict {
            id,
            input: values,
            probs,
            attack,
        })
    }

    /// Serialises this request to frame payload bytes (client side).
    pub fn to_payload(&self) -> Vec<u8> {
        let json = match self {
            Request::Predict {
                id,
                input,
                probs,
                attack,
            } => {
                let mut obj = JsonObj::new().set("id", Json::Str(id.clone())).set(
                    "input",
                    Json::Arr(input.iter().map(|&v| Json::Num(v as f64)).collect()),
                );
                if *probs {
                    obj = obj.set("probs", Json::Bool(true));
                }
                if let Some(attack) = attack {
                    obj = obj.set("attack", Json::Str(attack.clone()));
                }
                obj.build()
            }
            Request::Control { id, cmd } => {
                let name = match cmd {
                    Command::Ping => "ping",
                    Command::Metrics => "metrics",
                    Command::Shutdown => "shutdown",
                };
                JsonObj::new()
                    .set("id", Json::Str(id.clone()))
                    .set("cmd", Json::Str(name.into()))
                    .build()
            }
        };
        json.to_string().into_bytes()
    }
}

/// Builds the success response for a prediction.
pub fn ok_response(id: &str, p: &Prediction) -> Json {
    let mut obj = JsonObj::new()
        .set("id", Json::Str(id.into()))
        .set("status", Json::Str("ok".into()))
        .set("label", Json::Num(p.label as f64));
    if let Some(probs) = &p.probs {
        obj = obj.set(
            "probs",
            Json::Arr(probs.iter().map(|&v| Json::Num(v as f64)).collect()),
        );
    }
    if let Some(s) = p.suspect {
        obj = obj.set("suspect", Json::Num(s));
    }
    if let Some(f) = p.flagged {
        obj = obj.set("flagged", Json::Bool(f));
    }
    if !p.variant_labels.is_empty() {
        let mut variants = JsonObj::new();
        for (name, label) in &p.variant_labels {
            variants = variants.set(name, Json::Num(*label as f64));
        }
        obj = obj.set("variants", variants.build());
    }
    obj.build()
}

/// Builds an error response; `Overloaded` and `RateLimited` get their own
/// statuses so clients can distinguish whole-server backpressure (retry
/// later) from per-client throttling (back off to the provisioned rate)
/// and from hard failures.
pub fn error_response(id: &str, err: &ServeError) -> Json {
    let status = match err {
        ServeError::Overloaded => "overloaded",
        ServeError::ShuttingDown => "shutting_down",
        ServeError::RateLimited => "rate_limited",
        _ => "error",
    };
    JsonObj::new()
        .set("id", Json::Str(id.into()))
        .set("status", Json::Str(status.into()))
        .set("error", Json::Str(err.to_string()))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Predict {
            id: "r1".into(),
            input: vec![0.0, 0.5, 1.0],
            probs: true,
            attack: None,
        };
        let parsed = Request::parse(&req.to_payload()).unwrap();
        assert_eq!(parsed, req);

        let tagged = Request::Predict {
            id: "r2".into(),
            input: vec![0.25],
            probs: false,
            attack: Some("uap".into()),
        };
        assert_eq!(Request::parse(&tagged.to_payload()).unwrap(), tagged);

        let ctl = Request::Control {
            id: "c1".into(),
            cmd: Command::Metrics,
        };
        assert_eq!(Request::parse(&ctl.to_payload()).unwrap(), ctl);
    }

    #[test]
    fn malformed_requests_are_bad_requests() {
        for bad in [
            &b"not json"[..],
            br#"{"input": [1]}"#,              // missing id
            br#"{"id": "x"}"#,                 // neither cmd nor input
            br#"{"id": "x", "cmd": "nope"}"#,  // unknown command
            br#"{"id": "x", "input": ["a"]}"#, // non-numeric input
            &[0xFF, 0xFE][..],                 // not UTF-8
        ] {
            assert!(
                matches!(Request::parse(bad), Err(ServeError::BadRequest(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn responses_carry_status() {
        let p = Prediction {
            label: 7,
            probs: None,
            suspect: Some(0.5),
            flagged: Some(true),
            variant_labels: vec![("quant8".into(), 3)],
        };
        let ok = ok_response("r1", &p);
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(ok.get("label"), Some(&Json::Num(7.0)));
        assert_eq!(
            ok.get("variants").and_then(|v| v.get("quant8")),
            Some(&Json::Num(3.0))
        );

        let over = error_response("r2", &ServeError::Overloaded);
        assert_eq!(
            over.get("status").and_then(Json::as_str),
            Some("overloaded")
        );
        let rl = error_response("r2b", &ServeError::RateLimited);
        assert_eq!(
            rl.get("status").and_then(Json::as_str),
            Some("rate_limited"),
            "admission control must be distinguishable from overload"
        );
        let err = error_response("r3", &ServeError::BadRequest("x".into()));
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
        // Responses must themselves parse as valid frames end-to-end.
        let mut buf = Vec::new();
        write_frame(&mut buf, ok.to_string().as_bytes()).unwrap();
        let payload = read_frame(&mut &buf[..]).unwrap().unwrap();
        Json::parse(&payload).unwrap();
    }
}
