//! Sharded bounded queues with work stealing.
//!
//! The engine's single `sync_channel` was the scaling ceiling: every
//! worker contended on one mutex-wrapped receiver, so adding workers
//! added contention, not throughput. This module replaces it with one
//! bounded FIFO **shard** per worker. Producers place work round-robin
//! (spilling to the next shard when one is full), each worker drains its
//! own shard, and an idle worker **steals** a chunk from the most loaded
//! shard so a stalled or slow worker never strands queued requests.
//!
//! Design rules, chosen so the concurrency test suite can assert real
//! properties instead of schedules:
//!
//! * **Message passing only.** Items are moved, never shared: an item
//!   sits in exactly one shard deque until exactly one worker pops it.
//!   There is no path that clones or re-enqueues an item, so requests
//!   cannot be duplicated; every popped item is either processed or
//!   dropped with its completion guard (which reports the failure), so
//!   requests cannot be silently lost.
//! * **Bounded everywhere.** `push` fails with the item handed back when
//!   all shards are at `depth` — the caller surfaces explicit
//!   backpressure. Stealing moves items between a victim's deque and a
//!   thief's batch without ever growing a queue past its bound.
//! * **No global condvar.** Each shard has its own mutex + condvar;
//!   workers use short timed waits and scan for steals on timeout, so a
//!   wakeup never requires knowing which worker is parked where.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused; the item is handed back to the caller.
pub(crate) enum PushError<T> {
    /// Every candidate shard is at capacity.
    Full(T),
    /// The queue was closed; no new work is accepted.
    Closed(T),
}

struct Shard<T> {
    q: Mutex<VecDeque<T>>,
    cv: Condvar,
}

/// A set of bounded FIFO shards, one per worker, with steal support.
pub(crate) struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    depth: usize,
    next: AtomicUsize,
    open: AtomicBool,
    /// Total items moved by steals (for metrics).
    pub(crate) stolen: AtomicU64,
}

impl<T> ShardedQueue<T> {
    pub(crate) fn new(shards: usize, depth: usize) -> Self {
        assert!(shards > 0 && depth > 0);
        ShardedQueue {
            shards: (0..shards)
                .map(|_| Shard {
                    q: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            depth,
            next: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            stolen: AtomicU64::new(0),
        }
    }

    fn lock(&self, i: usize) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.shards[i].q.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Places `item` on the next round-robin shard, probing every shard
    /// once before reporting `Full`. A single hot shard therefore spills
    /// to its neighbours instead of shedding while capacity exists.
    pub(crate) fn push(&self, item: T) -> Result<usize, PushError<T>> {
        if !self.open.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        let n = self.shards.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let mut item = item;
        for probe in 0..n {
            let i = (start + probe) % n;
            match self.try_push_at(i, item) {
                Ok(()) => return Ok(i),
                Err(back) => item = back,
            }
        }
        Err(PushError::Full(item))
    }

    /// Places `item` on exactly `shard` (no spill). Used for keyed
    /// affinity and by tests that need a deterministic target.
    pub(crate) fn push_to(&self, shard: usize, item: T) -> Result<(), PushError<T>> {
        if !self.open.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        let i = shard % self.shards.len();
        self.try_push_at(i, item).map_err(PushError::Full)
    }

    fn try_push_at(&self, i: usize, item: T) -> Result<(), T> {
        let mut q = self.lock(i);
        if q.len() >= self.depth {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.shards[i].cv.notify_one();
        Ok(())
    }

    /// Pops up to `max` items for worker `w`, preferring its own shard.
    ///
    /// Blocks until at least one item is available (waiting on the own
    /// shard's condvar in `steal_poll` slices, scanning other shards for
    /// steals on each timeout), then coalesces from the own shard until
    /// `max` items or `max_delay` after the first item. Returns `None`
    /// only when the queue is closed and every shard is empty — workers
    /// drain all queued work before exiting.
    pub(crate) fn pop_batch(
        &self,
        w: usize,
        max: usize,
        max_delay: Duration,
        steal_poll: Duration,
    ) -> Option<Vec<T>> {
        let mut batch = self.first_items(w, max, steal_poll)?;
        if batch.len() >= max {
            return Some(batch);
        }
        // Coalesce: drain the own shard until the deadline or `max`.
        let deadline = Instant::now() + max_delay;
        loop {
            let mut q = self.lock(w);
            while batch.len() < max {
                match q.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max {
                return Some(batch);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || !self.open.load(Ordering::Acquire) {
                return Some(batch);
            }
            let (qq, _timeout) = self.shards[w]
                .cv
                .wait_timeout(q, left.min(steal_poll))
                .unwrap_or_else(|p| p.into_inner());
            drop(qq);
        }
    }

    /// Blocks until worker `w` has at least one item (own shard first,
    /// then steals), or the queue is closed and fully drained.
    fn first_items(&self, w: usize, max: usize, steal_poll: Duration) -> Option<Vec<T>> {
        loop {
            {
                let mut q = self.lock(w);
                if let Some(item) = q.pop_front() {
                    return Some(vec![item]);
                }
                if self.open.load(Ordering::Acquire) {
                    let (mut q, _timeout) = self.shards[w]
                        .cv
                        .wait_timeout(q, steal_poll)
                        .unwrap_or_else(|p| p.into_inner());
                    if let Some(item) = q.pop_front() {
                        return Some(vec![item]);
                    }
                }
            }
            // Own shard empty after a wait slice: scan for a steal.
            let stolen = self.steal_batch(w, max);
            if !stolen.is_empty() {
                return Some(stolen);
            }
            if !self.open.load(Ordering::Acquire) {
                // Closed: one more sweep over every shard (including our
                // own) before declaring the queue drained.
                for i in 0..self.shards.len() {
                    let mut q = self.lock(i);
                    if let Some(item) = q.pop_front() {
                        return Some(vec![item]);
                    }
                }
                return None;
            }
        }
    }

    /// Steals up to `max` items from the front of the most loaded shard
    /// other than `w`. FIFO order within the victim is preserved for the
    /// stolen chunk; items never transit through a third queue.
    fn steal_batch(&self, w: usize, max: usize) -> Vec<T> {
        let n = self.shards.len();
        if n <= 1 {
            return Vec::new();
        }
        // Pick the deepest victim without holding two locks at once.
        let mut victim = None;
        let mut deepest = 0usize;
        for i in 0..n {
            if i == w {
                continue;
            }
            let len = self.lock(i).len();
            if len > deepest {
                deepest = len;
                victim = Some(i);
            }
        }
        let Some(v) = victim else {
            return Vec::new();
        };
        let mut q = self.lock(v);
        let take = q.len().min(max);
        let stolen: Vec<T> = q.drain(..take).collect();
        drop(q);
        if !stolen.is_empty() {
            self.stolen
                .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        }
        stolen
    }

    /// Closes the queue: subsequent pushes fail with `Closed`, parked
    /// workers wake, and `pop_batch` returns `None` once every shard has
    /// drained.
    pub(crate) fn close(&self) {
        self.open.store(false, Ordering::Release);
        for s in &self.shards {
            s.cv.notify_all();
        }
    }

    /// Current depth of each shard (diagnostics / tests).
    pub(crate) fn depths(&self) -> Vec<usize> {
        (0..self.shards.len()).map(|i| self.lock(i).len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_spills_to_free_shards_then_reports_full() {
        let q = ShardedQueue::new(2, 2);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        match q.push(99) {
            Err(PushError::Full(item)) => assert_eq!(item, 99),
            _ => panic!("expected Full with the item handed back"),
        }
        assert_eq!(q.depths(), vec![2, 2]);
    }

    #[test]
    fn push_to_pins_without_spill() {
        let q = ShardedQueue::new(4, 1);
        q.push_to(2, 7).map_err(|_| ()).unwrap();
        match q.push_to(2, 8) {
            Err(PushError::Full(8)) => {}
            _ => panic!("pinned push must not spill"),
        }
        assert_eq!(q.depths(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q = ShardedQueue::new(2, 8);
        q.push(1).map_err(|_| ()).unwrap();
        q.push(2).map_err(|_| ()).unwrap();
        q.close();
        assert!(matches!(q.push(3), Err(PushError::Closed(3))));
        // Both queued items are still handed out, then None.
        let mut seen = Vec::new();
        while let Some(batch) =
            q.pop_batch(0, 8, Duration::from_millis(1), Duration::from_millis(1))
        {
            seen.extend(batch);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn idle_worker_steals_from_loaded_shard() {
        let q = Arc::new(ShardedQueue::new(2, 64));
        for i in 0..10 {
            q.push_to(0, i).map_err(|_| ()).unwrap();
        }
        // Worker 1's own shard is empty; it must steal from shard 0.
        let batch = q
            .pop_batch(1, 4, Duration::from_millis(1), Duration::from_millis(1))
            .expect("steal yields a batch");
        assert!(!batch.is_empty());
        assert_eq!(batch[0], 0, "steals take the victim's FIFO front");
        assert!(q.stolen.load(Ordering::Relaxed) >= batch.len() as u64);
    }

    #[test]
    fn concurrent_producers_and_stealing_workers_lose_nothing() {
        let q = Arc::new(ShardedQueue::new(4, 1024));
        let total: u64 = 2000;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total / 4 {
                        let mut v = p * (total / 4) + i;
                        loop {
                            match q.push(v) {
                                Ok(_) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) =
                        q.pop_batch(w, 16, Duration::from_micros(200), Duration::from_millis(1))
                    {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = Vec::new();
        for w in workers {
            all.extend(w.join().unwrap());
        }
        all.sort_unstable();
        // Exactly once each: no drops, no duplicates.
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
