//! Minimal JSON value model, parser and writer for the wire protocol.
//!
//! The build container carries only a serialisation-side `serde_json` stub,
//! so request *parsing* is implemented here: a strict recursive-descent
//! parser over the small JSON subset the protocol uses (objects, arrays,
//! strings, f64 numbers, booleans, null). Depth and size limits guard
//! against adversarial frames — this parser sits directly on the network
//! boundary.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps serialisation deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` for other variants / missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice of elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document from UTF-8 bytes (must consume all input).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(bytes: &[u8]) -> Result<Json, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "frame is not utf-8".to_string())?;
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if let Some((i, _)) = p.chars.peek() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(value)
    }
}

/// An object builder for response construction.
#[derive(Debug, Default)]
pub struct JsonObj(BTreeMap<String, Json>);

impl JsonObj {
    /// Creates an empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a member, consuming and returning the builder.
    pub fn set(mut self, key: &str, value: Json) -> Self {
        self.0.insert(key.to_string(), value);
        self
    }

    /// Finishes into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some((_, c)) = self.chars.peek() {
            if c.is_ascii_whitespace() {
                self.chars.next();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at offset {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(depth),
            Some((_, '[')) => self.array(depth),
            Some((_, '"')) => Ok(Json::Str(self.string()?)),
            Some((_, 't')) => self.keyword("true", Json::Bool(true)),
            Some((_, 'f')) => self.keyword("false", Json::Bool(false)),
            Some((_, 'n')) => self.keyword("null", Json::Null),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((i, c)) => Err(format!("unexpected '{c}' at offset {i}")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("invalid literal (expected '{word}')")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = match self.chars.peek() {
            Some((i, _)) => *i,
            None => return Err("unexpected end of input in number".into()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek().copied() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        let slice = &self.text[start..end];
        let n: f64 = slice
            .parse()
            .map_err(|_| format!("invalid number '{slice}'"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{slice}'"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        // Surrogates are replaced rather than rejected; the
                        // protocol never ships them in practice.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at offset {i}")),
                    None => return Err("unterminated escape".into()),
                },
                Some((i, c)) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character at offset {i}"))
                }
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if let Some((_, ']')) = self.chars.peek() {
            self.chars.next();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Json::Arr(items)),
                Some((i, c)) => return Err(format!("expected ',' or ']' at {i}, found '{c}'")),
                None => return Err("unterminated array".into()),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if let Some((_, '}')) = self.chars.peek() {
            self.chars.next();
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Json::Obj(map)),
                Some((i, c)) => return Err(format!("expected ',' or '}}' at {i}, found '{c}'")),
                None => return Err("unterminated object".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request_shape() {
        let text = br#"{"id": 3, "input": [0.5, -1.25e-2, 3], "probs": true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        let input = v.get("input").unwrap().as_array().unwrap();
        assert_eq!(input.len(), 3);
        assert_eq!(input[1].as_f64(), Some(-0.0125));
        assert_eq!(v.get("probs").unwrap().as_bool(), Some(true));
        // Serialise and reparse: stable.
        let text2 = v.to_string();
        assert_eq!(Json::parse(text2.as_bytes()).unwrap(), v);
    }

    #[test]
    fn scalars() {
        assert_eq!(Json::parse(b"null").unwrap(), Json::Null);
        assert_eq!(Json::parse(b"true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(b"-4.5").unwrap(), Json::Num(-4.5));
        assert_eq!(
            Json::parse(br#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\":}",
            b"nul",
            b"1 2",
            b"\"unterminated",
            b"{\"a\" 1}",
            b"[1e999]",  // overflows to inf
            b"\xff\xfe", // not utf-8
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut evil = vec![b'['; 200];
        evil.extend(vec![b']'; 200]);
        assert!(Json::parse(&evil).is_err());
    }

    #[test]
    fn builder_and_display() {
        let v = JsonObj::new()
            .set("status", Json::Str("ok".into()))
            .set("id", Json::Num(7.0))
            .set("suspect", Json::Num(0.25))
            .build();
        let s = v.to_string();
        assert_eq!(s, r#"{"id":7,"status":"ok","suspect":0.25}"#);
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(Json::Num(5.0).to_string(), "5");
        assert_eq!(Json::Num(5.5).to_string(), "5.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
