//! Model registry: named, validated, replica-able model sets.
//!
//! The registry holds one **baseline** (the full-precision reference model)
//! and any number of **compressed variants** (pruned / quantised copies of
//! the same task). Models enter the registry either in-memory or from
//! checkpoint files — file loads go through the CRC-verified v2 checkpoint
//! path, so a torn or bit-flipped model file is rejected at load time with
//! [`CheckpointError::Corrupt`](advcomp_models::CheckpointError) instead of
//! serving garbage predictions.
//!
//! Every registered model is probe-forwarded once on a zero batch to pin
//! down its output arity; variants must agree with the baseline's class
//! count. Workers then call [`ModelRegistry::replica`] to obtain an
//! independent [`ReplicaSet`] (fresh-cache clones, see
//! `advcomp_nn::Layer::clone_layer`) so concurrent forward passes never
//! contend on shared layer state.

use crate::ServeError;
use advcomp_models::Checkpoint;
use advcomp_nn::{Mode, Sequential};
use advcomp_tensor::Tensor;
use std::path::Path;

/// Named model set for one serving task.
#[derive(Debug)]
pub struct ModelRegistry {
    input_shape: Vec<usize>,
    classes: usize,
    baseline: Option<(String, Sequential)>,
    variants: Vec<(String, Sequential)>,
}

/// A per-worker clone of every registered model.
#[derive(Debug)]
pub struct ReplicaSet {
    /// `(name, model)` of the baseline.
    pub baseline: (String, Sequential),
    /// `(name, model)` of each compressed variant, registry order.
    pub variants: Vec<(String, Sequential)>,
}

impl ModelRegistry {
    /// Creates an empty registry for inputs of `input_shape` (one sample,
    /// without the batch axis — e.g. `[1, 28, 28]`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an empty or zero-sized shape.
    pub fn new(input_shape: &[usize]) -> Result<Self, ServeError> {
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(ServeError::Config(format!(
                "input shape {input_shape:?} must be non-empty with positive dims"
            )));
        }
        Ok(ModelRegistry {
            input_shape: input_shape.to_vec(),
            classes: 0,
            baseline: None,
            variants: Vec::new(),
        })
    }

    /// Registers the baseline model, validating it on a zero probe batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when a baseline is already set or the model
    /// rejects the registry's input shape.
    pub fn set_baseline(
        &mut self,
        name: impl Into<String>,
        mut model: Sequential,
    ) -> Result<(), ServeError> {
        if self.baseline.is_some() {
            return Err(ServeError::Config("baseline already registered".into()));
        }
        let classes = self.probe(&mut model)?;
        self.classes = classes;
        self.baseline = Some((name.into(), model));
        Ok(())
    }

    /// Registers a compressed variant, validating shape and class count
    /// against the baseline.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] without a baseline, on duplicate names, or on
    /// probe/class mismatches.
    pub fn add_variant(
        &mut self,
        name: impl Into<String>,
        mut model: Sequential,
    ) -> Result<(), ServeError> {
        let name = name.into();
        if self.baseline.is_none() {
            return Err(ServeError::Config(
                "register the baseline before variants".into(),
            ));
        }
        if self.names().any(|n| n == name) {
            return Err(ServeError::Config(format!("duplicate model name {name}")));
        }
        let classes = self.probe(&mut model)?;
        if classes != self.classes {
            return Err(ServeError::Config(format!(
                "variant {name} has {classes} classes, baseline has {}",
                self.classes
            )));
        }
        self.variants.push((name, model));
        Ok(())
    }

    /// Loads checkpoint `path` into `arch` and registers it as baseline.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O / corruption (CRC mismatch ⇒
    /// `CheckpointError::Corrupt`) or config errors.
    pub fn load_baseline(
        &mut self,
        name: impl Into<String>,
        mut arch: Sequential,
        path: &Path,
    ) -> Result<(), ServeError> {
        Checkpoint::load(path)?.restore(&mut arch)?;
        self.set_baseline(name, arch)
    }

    /// Loads checkpoint `path` into `arch` and registers it as a variant.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O / corruption or config errors, as
    /// [`ModelRegistry::load_baseline`].
    pub fn load_variant(
        &mut self,
        name: impl Into<String>,
        mut arch: Sequential,
        path: &Path,
    ) -> Result<(), ServeError> {
        Checkpoint::load(path)?.restore(&mut arch)?;
        self.add_variant(name, arch)
    }

    /// Shape of one input sample (no batch axis).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Scalar element count of one input sample.
    pub fn sample_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Number of output classes (0 until a baseline is registered).
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Name of the baseline model, if registered.
    pub fn baseline_name(&self) -> Option<&str> {
        self.baseline.as_ref().map(|(n, _)| n.as_str())
    }

    /// Names of all registered models, baseline first.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.baseline
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(self.variants.iter().map(|(n, _)| n.as_str()))
    }

    /// Number of compressed variants.
    pub fn num_variants(&self) -> usize {
        self.variants.len()
    }

    /// Clones every model into an independent per-worker [`ReplicaSet`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when no baseline is registered.
    pub fn replica(&self) -> Result<ReplicaSet, ServeError> {
        let (name, model) = self
            .baseline
            .as_ref()
            .ok_or_else(|| ServeError::Config("no baseline registered".into()))?;
        Ok(ReplicaSet {
            baseline: (name.clone(), model.clone()),
            variants: self
                .variants
                .iter()
                .map(|(n, m)| (n.clone(), m.clone()))
                .collect(),
        })
    }

    /// Probe-forwards a zero batch, returning the model's class count.
    fn probe(&self, model: &mut Sequential) -> Result<usize, ServeError> {
        let mut shape = vec![1];
        shape.extend_from_slice(&self.input_shape);
        let logits = model.forward(&Tensor::zeros(&shape), Mode::Eval)?;
        if logits.ndim() != 2 || logits.shape()[0] != 1 {
            return Err(ServeError::Config(format!(
                "model produced logits of shape {:?}, expected [1, classes]",
                logits.shape()
            )));
        }
        Ok(logits.shape()[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_models::mlp;

    fn shape() -> [usize; 3] {
        [1, 28, 28]
    }

    #[test]
    fn baseline_then_variants() {
        let mut reg = ModelRegistry::new(&shape()).unwrap();
        assert!(reg.replica().is_err());
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        reg.add_variant("quant8", mlp(8, 1)).unwrap();
        reg.add_variant("pruned", mlp(6, 2)).unwrap();
        assert_eq!(reg.num_classes(), 10);
        assert_eq!(reg.baseline_name(), Some("dense"));
        assert_eq!(
            reg.names().collect::<Vec<_>>(),
            vec!["dense", "quant8", "pruned"]
        );
        let replica = reg.replica().unwrap();
        assert_eq!(replica.baseline.0, "dense");
        assert_eq!(replica.variants.len(), 2);
    }

    #[test]
    fn replicas_are_independent() {
        let mut reg = ModelRegistry::new(&shape()).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        let mut a = reg.replica().unwrap();
        let b = reg.replica().unwrap();
        a.baseline
            .1
            .param_mut("fc1.weight")
            .unwrap()
            .value
            .data_mut()[0] = 99.0;
        assert_ne!(
            b.baseline.1.param("fc1.weight").unwrap().value.data()[0],
            99.0
        );
    }

    #[test]
    fn rejects_misconfiguration() {
        assert!(ModelRegistry::new(&[]).is_err());
        assert!(ModelRegistry::new(&[1, 0, 4]).is_err());
        let mut reg = ModelRegistry::new(&shape()).unwrap();
        // Variant before baseline.
        assert!(reg.add_variant("v", mlp(4, 0)).is_err());
        reg.set_baseline("dense", mlp(4, 0)).unwrap();
        assert!(reg.set_baseline("again", mlp(4, 1)).is_err());
        // Duplicate name.
        assert!(reg.add_variant("dense", mlp(4, 2)).is_err());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        // An MLP flattens anything, so use a shape whose element count
        // mismatches the dense layer input.
        let mut reg = ModelRegistry::new(&[1, 3, 3]).unwrap();
        assert!(reg.set_baseline("dense", mlp(4, 0)).is_err());
    }

    #[test]
    fn load_from_checkpoint_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join("advcomp_serve_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.advc");
        let trained = mlp(8, 42);
        Checkpoint::capture(&trained).save(&path).unwrap();

        let mut reg = ModelRegistry::new(&shape()).unwrap();
        reg.load_baseline("dense", mlp(8, 0), &path).unwrap();
        let replica = reg.replica().unwrap();
        assert_eq!(
            replica.baseline.1.param("fc1.weight").unwrap().value.data(),
            trained.param("fc1.weight").unwrap().value.data()
        );

        // Flip one byte in the middle of the file: load must fail with a
        // corruption error, not restore garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let bad = dir.join("model_bad.advc");
        std::fs::write(&bad, &bytes).unwrap();
        let mut reg2 = ModelRegistry::new(&shape()).unwrap();
        match reg2.load_baseline("dense", mlp(8, 0), &bad) {
            Err(ServeError::Checkpoint(e)) => {
                assert!(e.to_string().contains("corrupt"), "{e}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad).ok();
    }
}
