//! Model registry: named, validated, replica-able, hot-swappable model
//! sets.
//!
//! The registry holds one **baseline** (the full-precision reference model)
//! and any number of **compressed variants** (pruned / quantised copies of
//! the same task). Models enter the registry either in-memory or from
//! checkpoint files — file loads go through the CRC-verified checkpoint
//! path (v2 float or v3 packed-quantised), so a torn or bit-flipped model
//! file is rejected at load time with
//! [`CheckpointError::Corrupt`](advcomp_models::CheckpointError) instead of
//! serving garbage predictions.
//!
//! Every registered model is probe-forwarded once on a zero batch to pin
//! down its output arity; variants must agree with the baseline's class
//! count.
//!
//! # Snapshots and hot swap
//!
//! The registry publishes its models as immutable [`ModelSet`] snapshots
//! behind an [`Arc`], stamped with a monotonically increasing
//! **generation**. Engines take a [`RegistryHandle`] at start; each worker
//! caches `(generation, Arc<ModelSet>)` and re-replicates only when the
//! generation moves — a relaxed integer compare per batch, no lock on the
//! forward path.
//!
//! [`ModelRegistry::swap`] atomically replaces one named model with a
//! freshly CRC-validated + probe-validated checkpoint load: the new
//! [`ModelSet`] is built off to the side and published in one pointer
//! store, so a swap never blocks or drains in-flight batches — workers
//! finish the current batch on the old weights and pick up the new set at
//! the next batch boundary. A swap that fails validation leaves the
//! published set untouched.

use crate::ServeError;
use advcomp_detect::{detector_by_name, DetectorCalibration};
use advcomp_models::Checkpoint;
use advcomp_nn::{Mode, Sequential};
use advcomp_tensor::Tensor;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable published snapshot of every registered model.
#[derive(Debug)]
pub struct ModelSet {
    baseline: (String, Sequential),
    variants: Vec<(String, Sequential)>,
    classes: usize,
}

impl ModelSet {
    /// Clones every model into an independent per-worker [`ReplicaSet`]
    /// (fresh-cache clones, see `advcomp_nn::Layer::clone_layer`), so
    /// concurrent forward passes never contend on shared layer state.
    pub fn replica(&self) -> ReplicaSet {
        ReplicaSet {
            baseline: (self.baseline.0.clone(), self.baseline.1.clone()),
            variants: self
                .variants
                .iter()
                .map(|(n, m)| (n.clone(), m.clone()))
                .collect(),
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Names of all models, baseline first.
    pub fn names(&self) -> Vec<String> {
        std::iter::once(self.baseline.0.clone())
            .chain(self.variants.iter().map(|(n, _)| n.clone()))
            .collect()
    }
}

/// A per-worker clone of every registered model.
#[derive(Debug)]
pub struct ReplicaSet {
    /// `(name, model)` of the baseline.
    pub baseline: (String, Sequential),
    /// `(name, model)` of each compressed variant, registry order.
    pub variants: Vec<(String, Sequential)>,
}

/// Shared swap cell: the published snapshot plus its generation stamp.
#[derive(Debug)]
struct SwapCell {
    current: Mutex<Option<Arc<ModelSet>>>,
    generation: AtomicU64,
    swaps: AtomicU64,
}

/// Named model set for one serving task.
#[derive(Debug)]
pub struct ModelRegistry {
    input_shape: Vec<usize>,
    cell: Arc<SwapCell>,
    calibration: Option<DetectorCalibration>,
}

/// Cheap cloneable view of the registry's published snapshot, held by
/// running engines. Stays live across [`ModelRegistry::swap`] calls.
#[derive(Debug, Clone)]
pub struct RegistryHandle {
    cell: Arc<SwapCell>,
}

impl RegistryHandle {
    /// Current generation stamp; changes exactly when a swap publishes.
    /// A relaxed load — cheap enough to check once per batch.
    pub fn generation(&self) -> u64 {
        self.cell.generation.load(Ordering::Relaxed)
    }

    /// The current `(generation, snapshot)` pair. The generation is read
    /// under the same lock that guards the snapshot pointer, so the pair
    /// is always mutually consistent.
    pub fn snapshot(&self) -> (u64, Arc<ModelSet>) {
        let guard = self.cell.current.lock().unwrap_or_else(|p| p.into_inner());
        let set = guard
            .as_ref()
            .expect("handle only exists with a published baseline")
            .clone();
        (self.cell.generation.load(Ordering::Relaxed), set)
    }

    /// Number of successful swaps since registry creation.
    pub fn swaps(&self) -> u64 {
        self.cell.swaps.load(Ordering::Relaxed)
    }
}

impl ModelRegistry {
    /// Creates an empty registry for inputs of `input_shape` (one sample,
    /// without the batch axis — e.g. `[1, 28, 28]`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an empty or zero-sized shape.
    pub fn new(input_shape: &[usize]) -> Result<Self, ServeError> {
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(ServeError::Config(format!(
                "input shape {input_shape:?} must be non-empty with positive dims"
            )));
        }
        Ok(ModelRegistry {
            input_shape: input_shape.to_vec(),
            cell: Arc::new(SwapCell {
                current: Mutex::new(None),
                generation: AtomicU64::new(0),
                swaps: AtomicU64::new(0),
            }),
            calibration: None,
        })
    }

    /// Attaches a detector calibration, making the engine's guard flag at
    /// the calibrated threshold with the calibrated detector instead of
    /// the manually configured ones.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the calibration names a detector this
    /// build does not provide.
    pub fn set_calibration(&mut self, cal: DetectorCalibration) -> Result<(), ServeError> {
        if detector_by_name(&cal.detector).is_none() {
            return Err(ServeError::Config(format!(
                "calibration artifact names unknown detector {:?}",
                cal.detector
            )));
        }
        self.calibration = Some(cal);
        Ok(())
    }

    /// Loads a CRC-verified calibration artifact (`.advd`, written by
    /// `DetectorCalibration::save`) from disk and attaches it — the serve
    /// counterpart of loading model checkpoints. A corrupt artifact is
    /// rejected at load time, never deployed.
    ///
    /// # Errors
    ///
    /// [`ServeError::Detect`] on I/O failure or artifact corruption,
    /// [`ServeError::Config`] for an unknown detector name.
    pub fn load_calibration(&mut self, path: &Path) -> Result<(), ServeError> {
        let cal = DetectorCalibration::load(path)?;
        self.set_calibration(cal)
    }

    /// The attached detector calibration, if any.
    pub fn calibration(&self) -> Option<&DetectorCalibration> {
        self.calibration.as_ref()
    }

    fn current(&self) -> Option<Arc<ModelSet>> {
        self.cell
            .current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    fn publish(&self, set: ModelSet, is_swap: bool) {
        let mut guard = self.cell.current.lock().unwrap_or_else(|p| p.into_inner());
        *guard = Some(Arc::new(set));
        self.cell.generation.fetch_add(1, Ordering::Relaxed);
        if is_swap {
            self.cell.swaps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Registers the baseline model, validating it on a zero probe batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when a baseline is already set or the model
    /// rejects the registry's input shape.
    pub fn set_baseline(
        &mut self,
        name: impl Into<String>,
        mut model: Sequential,
    ) -> Result<(), ServeError> {
        if self.current().is_some() {
            return Err(ServeError::Config("baseline already registered".into()));
        }
        let classes = self.probe(&mut model)?;
        self.publish(
            ModelSet {
                baseline: (name.into(), model),
                variants: Vec::new(),
                classes,
            },
            false,
        );
        Ok(())
    }

    /// Registers a compressed variant, validating shape and class count
    /// against the baseline.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] without a baseline, on duplicate names, or on
    /// probe/class mismatches.
    pub fn add_variant(
        &mut self,
        name: impl Into<String>,
        mut model: Sequential,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let Some(old) = self.current() else {
            return Err(ServeError::Config(
                "register the baseline before variants".into(),
            ));
        };
        if old.names().contains(&name) {
            return Err(ServeError::Config(format!("duplicate model name {name}")));
        }
        let classes = self.probe(&mut model)?;
        if classes != old.classes {
            return Err(ServeError::Config(format!(
                "variant {name} has {classes} classes, baseline has {}",
                old.classes
            )));
        }
        let mut next = old.replica();
        next.variants.push((name, model));
        self.publish(
            ModelSet {
                baseline: next.baseline,
                variants: next.variants,
                classes: old.classes,
            },
            false,
        );
        Ok(())
    }

    /// Loads checkpoint `path` into `arch` and registers it as baseline.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O / corruption (CRC mismatch ⇒
    /// `CheckpointError::Corrupt`) or config errors.
    pub fn load_baseline(
        &mut self,
        name: impl Into<String>,
        mut arch: Sequential,
        path: &Path,
    ) -> Result<(), ServeError> {
        Checkpoint::load(path)?.restore(&mut arch)?;
        self.set_baseline(name, arch)
    }

    /// Loads checkpoint `path` into `arch` and registers it as a variant.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O / corruption or config errors, as
    /// [`ModelRegistry::load_baseline`].
    pub fn load_variant(
        &mut self,
        name: impl Into<String>,
        mut arch: Sequential,
        path: &Path,
    ) -> Result<(), ServeError> {
        Checkpoint::load(path)?.restore(&mut arch)?;
        self.add_variant(name, arch)
    }

    /// Atomically replaces the model registered under `name` (baseline or
    /// variant) with a CRC-validated checkpoint load of `path` into
    /// `arch`, then publishes a new snapshot with a bumped generation.
    ///
    /// The swap takes effect at each worker's next batch boundary;
    /// in-flight batches complete on the old weights and are never
    /// drained or errored. Validation failures leave the published set
    /// untouched.
    ///
    /// Takes `&self`: swapping is safe while engines are serving.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O / corruption, [`ServeError::Config`] for an unknown
    /// `name`, a probe failure, or a class-count mismatch.
    pub fn swap(&self, name: &str, mut arch: Sequential, path: &Path) -> Result<(), ServeError> {
        Checkpoint::load(path)?.restore(&mut arch)?;
        let Some(old) = self.current() else {
            return Err(ServeError::Config("no baseline registered".into()));
        };
        let classes = self.probe(&mut arch)?;
        if classes != old.classes {
            return Err(ServeError::Config(format!(
                "swap for {name} has {classes} classes, registry has {}",
                old.classes
            )));
        }
        let mut next = old.replica();
        let slot = if next.baseline.0 == name {
            &mut next.baseline.1
        } else if let Some((_, m)) = next.variants.iter_mut().find(|(n, _)| n == name) {
            m
        } else {
            return Err(ServeError::Config(format!(
                "no model named {name} to swap (have {:?})",
                old.names()
            )));
        };
        *slot = arch;
        self.publish(
            ModelSet {
                baseline: next.baseline,
                variants: next.variants,
                classes: old.classes,
            },
            true,
        );
        Ok(())
    }

    /// Number of successful swaps published since registry creation.
    pub fn swaps(&self) -> u64 {
        self.cell.swaps.load(Ordering::Relaxed)
    }

    /// A cloneable handle for engines: grants access to `(generation,
    /// snapshot)` pairs that stay current across later swaps.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when no baseline is registered yet.
    pub fn handle(&self) -> Result<RegistryHandle, ServeError> {
        if self.current().is_none() {
            return Err(ServeError::Config("no baseline registered".into()));
        }
        Ok(RegistryHandle {
            cell: Arc::clone(&self.cell),
        })
    }

    /// Shape of one input sample (no batch axis).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Scalar element count of one input sample.
    pub fn sample_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Number of output classes (0 until a baseline is registered).
    pub fn num_classes(&self) -> usize {
        self.current().map_or(0, |s| s.classes)
    }

    /// Name of the baseline model, if registered.
    pub fn baseline_name(&self) -> Option<String> {
        self.current().map(|s| s.baseline.0.clone())
    }

    /// Names of all registered models, baseline first.
    pub fn names(&self) -> Vec<String> {
        self.current().map_or_else(Vec::new, |s| s.names())
    }

    /// Number of compressed variants.
    pub fn num_variants(&self) -> usize {
        self.current().map_or(0, |s| s.variants.len())
    }

    /// Clones every model into an independent per-worker [`ReplicaSet`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when no baseline is registered.
    pub fn replica(&self) -> Result<ReplicaSet, ServeError> {
        self.current()
            .map(|s| s.replica())
            .ok_or_else(|| ServeError::Config("no baseline registered".into()))
    }

    /// Probe-forwards a zero batch, returning the model's class count.
    fn probe(&self, model: &mut Sequential) -> Result<usize, ServeError> {
        let mut shape = vec![1];
        shape.extend_from_slice(&self.input_shape);
        let logits = model.forward(&Tensor::zeros(&shape), Mode::Eval)?;
        if logits.ndim() != 2 || logits.shape()[0] != 1 {
            return Err(ServeError::Config(format!(
                "model produced logits of shape {:?}, expected [1, classes]",
                logits.shape()
            )));
        }
        Ok(logits.shape()[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_models::mlp;

    fn shape() -> [usize; 3] {
        [1, 28, 28]
    }

    #[test]
    fn baseline_then_variants() {
        let mut reg = ModelRegistry::new(&shape()).unwrap();
        assert!(reg.replica().is_err());
        assert!(reg.handle().is_err());
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        reg.add_variant("quant8", mlp(8, 1)).unwrap();
        reg.add_variant("pruned", mlp(6, 2)).unwrap();
        assert_eq!(reg.num_classes(), 10);
        assert_eq!(reg.baseline_name().as_deref(), Some("dense"));
        assert_eq!(reg.names(), vec!["dense", "quant8", "pruned"]);
        let replica = reg.replica().unwrap();
        assert_eq!(replica.baseline.0, "dense");
        assert_eq!(replica.variants.len(), 2);
    }

    #[test]
    fn replicas_are_independent() {
        let mut reg = ModelRegistry::new(&shape()).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        let mut a = reg.replica().unwrap();
        let b = reg.replica().unwrap();
        a.baseline
            .1
            .param_mut("fc1.weight")
            .unwrap()
            .value
            .data_mut()[0] = 99.0;
        assert_ne!(
            b.baseline.1.param("fc1.weight").unwrap().value.data()[0],
            99.0
        );
    }

    #[test]
    fn rejects_misconfiguration() {
        assert!(ModelRegistry::new(&[]).is_err());
        assert!(ModelRegistry::new(&[1, 0, 4]).is_err());
        let mut reg = ModelRegistry::new(&shape()).unwrap();
        // Variant before baseline.
        assert!(reg.add_variant("v", mlp(4, 0)).is_err());
        reg.set_baseline("dense", mlp(4, 0)).unwrap();
        assert!(reg.set_baseline("again", mlp(4, 1)).is_err());
        // Duplicate name.
        assert!(reg.add_variant("dense", mlp(4, 2)).is_err());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        // An MLP flattens anything, so use a shape whose element count
        // mismatches the dense layer input.
        let mut reg = ModelRegistry::new(&[1, 3, 3]).unwrap();
        assert!(reg.set_baseline("dense", mlp(4, 0)).is_err());
    }

    #[test]
    fn load_from_checkpoint_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join("advcomp_serve_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.advc");
        let trained = mlp(8, 42);
        Checkpoint::capture(&trained).save(&path).unwrap();

        let mut reg = ModelRegistry::new(&shape()).unwrap();
        reg.load_baseline("dense", mlp(8, 0), &path).unwrap();
        let replica = reg.replica().unwrap();
        assert_eq!(
            replica.baseline.1.param("fc1.weight").unwrap().value.data(),
            trained.param("fc1.weight").unwrap().value.data()
        );

        // Flip one byte in the middle of the file: load must fail with a
        // corruption error, not restore garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let bad = dir.join("model_bad.advc");
        std::fs::write(&bad, &bytes).unwrap();
        let mut reg2 = ModelRegistry::new(&shape()).unwrap();
        match reg2.load_baseline("dense", mlp(8, 0), &bad) {
            Err(ServeError::Checkpoint(e)) => {
                assert!(e.to_string().contains("corrupt"), "{e}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn swap_bumps_generation_and_replaces_weights() {
        let dir = std::env::temp_dir().join("advcomp_serve_registry_swap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.advc");
        let next = mlp(8, 7);
        Checkpoint::capture(&next).save(&path).unwrap();

        let mut reg = ModelRegistry::new(&shape()).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        reg.add_variant("quant8", mlp(8, 1)).unwrap();
        let handle = reg.handle().unwrap();
        let (g0, s0) = handle.snapshot();
        let before = s0.replica().variants[0]
            .1
            .param("fc1.weight")
            .unwrap()
            .value
            .data()
            .to_vec();

        reg.swap("quant8", mlp(8, 0), &path).unwrap();
        let (g1, s1) = handle.snapshot();
        assert!(g1 > g0, "generation must move: {g0} -> {g1}");
        assert_eq!(handle.swaps(), 1);
        // Names and order are unchanged; the weights are the new ones.
        assert_eq!(s1.names(), vec!["dense", "quant8"]);
        let after = s1.replica().variants[0]
            .1
            .param("fc1.weight")
            .unwrap()
            .value
            .data()
            .to_vec();
        assert_ne!(before, after);
        assert_eq!(
            after,
            next.param("fc1.weight").unwrap().value.data().to_vec()
        );
        // The old snapshot is untouched (in-flight batches keep working).
        let still = s0.replica().variants[0]
            .1
            .param("fc1.weight")
            .unwrap()
            .value
            .data()
            .to_vec();
        assert_eq!(before, still);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn swap_rejects_unknown_name_and_corrupt_file_without_publishing() {
        let dir = std::env::temp_dir().join("advcomp_serve_registry_swapfail_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.advc");
        Checkpoint::capture(&mlp(8, 7)).save(&path).unwrap();

        let mut reg = ModelRegistry::new(&shape()).unwrap();
        reg.set_baseline("dense", mlp(8, 0)).unwrap();
        let handle = reg.handle().unwrap();
        let g0 = handle.generation();

        assert!(reg.swap("nope", mlp(8, 0), &path).is_err());

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let bad = dir.join("bad.advc");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(reg.swap("dense", mlp(8, 0), &bad).is_err());

        assert_eq!(handle.generation(), g0, "failed swaps publish nothing");
        assert_eq!(handle.swaps(), 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad).ok();
    }
}
