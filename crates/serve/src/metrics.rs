//! Serving metrics: lock-free counters and histograms.
//!
//! All recorders are plain atomics so the hot path (workers + connection
//! threads) never takes a lock to record. Latency histograms use
//! power-of-two microsecond buckets — bucket `i` counts samples in
//! `[2^i, 2^(i+1))` µs (bucket 0 also absorbs sub-µs samples) — which
//! gives ~30 buckets covering 1 µs to >15 min with bounded error for
//! quantile estimates. Snapshots are consistent-enough reads (each value
//! individually atomic) serialised to JSON for scraping and for
//! `BENCH_serve.json`.

use crate::json::{Json, JsonObj};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const LAT_BUCKETS: usize = 30;
const BATCH_BUCKETS: usize = 64;

/// Histogram of durations in power-of-two microsecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = (63 - us.max(1).leading_zeros() as usize).min(LAT_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) in microseconds, taken as the
    /// upper edge of the bucket containing the q-th sample. 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bucket edge, capped by the true observed max.
                return (1u64 << (i + 1)).min(self.max_us.load(Ordering::Relaxed).max(1));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Json {
        JsonObj::new()
            .set("count", Json::Num(self.count() as f64))
            .set("mean_us", Json::Num(self.mean_us()))
            .set("p50_us", Json::Num(self.quantile_us(0.50) as f64))
            .set("p99_us", Json::Num(self.quantile_us(0.99) as f64))
            .set("p999_us", Json::Num(self.quantile_us(0.999) as f64))
            .set("max_us", Json::Num(self.max_us() as f64))
            .build()
    }
}

/// Distribution of executed batch sizes (bucket per exact size, capped).
#[derive(Debug)]
pub struct BatchSizeDistribution {
    // counts[s] = number of batches of size s+1; the last bucket absorbs
    // every size >= BATCH_BUCKETS.
    counts: [AtomicU64; BATCH_BUCKETS],
    batches: AtomicU64,
    jobs: AtomicU64,
    max: AtomicU64,
}

impl Default for BatchSizeDistribution {
    fn default() -> Self {
        BatchSizeDistribution {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl BatchSizeDistribution {
    /// Records one executed batch of `size` requests.
    pub fn record(&self, size: usize) {
        if size == 0 {
            return;
        }
        let idx = (size - 1).min(BATCH_BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(size as u64, Ordering::Relaxed);
        self.max.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Number of batches executed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Largest batch observed.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean batch size (0 when empty).
    pub fn mean(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.jobs.load(Ordering::Relaxed) as f64 / b as f64
        }
    }

    fn to_json(&self) -> Json {
        let sizes = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| Json::Arr(vec![Json::Num((i + 1) as f64), Json::Num(n as f64)]))
            })
            .collect();
        JsonObj::new()
            .set("batches", Json::Num(self.batches() as f64))
            .set("mean", Json::Num(self.mean()))
            .set("max", Json::Num(self.max() as f64))
            .set("sizes", Json::Arr(sizes))
            .build()
    }
}

/// Per-model gauges for the compiled forward plan: set once per compile
/// (workers compile identical models, so last-writer-wins is fine).
/// Both gauges stay 0 for a model the graph compiler could not plan —
/// that model serves through the `Sequential` fallback.
#[derive(Debug, Default)]
pub struct PlanGauge {
    /// Time the graph compiler spent building the plan, in microseconds.
    pub compile_us: AtomicU64,
    /// Peak bytes of the plan-owned activation arena + quantisation
    /// scratch after `reserve_batch(max_batch)`.
    pub arena_peak_bytes: AtomicU64,
}

/// How the guard is deployed: which detector scores requests and at what
/// threshold (set once at engine start, exported in the snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardDeployment {
    /// Detector name (e.g. `"disagreement"`).
    pub detector: String,
    /// Decision threshold in effect.
    pub threshold: f64,
    /// `true` when the threshold came from a calibration artifact rather
    /// than manual configuration.
    pub calibrated: bool,
}

/// All metrics for one serving engine, shared via `Arc`.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests rejected with `overloaded` (queue full).
    pub overloaded: AtomicU64,
    /// Requests rejected with `rate_limited` (per-client token bucket
    /// empty) — deliberate admission control, distinct from overload.
    pub rate_limited: AtomicU64,
    /// Requests that failed (bad input, forward error, worker lost).
    pub failed: AtomicU64,
    /// Time from enqueue until a worker picked the job up.
    pub queue_wait: LatencyHistogram,
    /// Time a worker spent coalescing the batch after the first job.
    pub batch_assembly: LatencyHistogram,
    /// Forward-pass time (baseline + guard variants) per batch.
    pub forward: LatencyHistogram,
    /// Per-model forward time: one histogram per registry model (baseline
    /// first, then guard variants in registry order), recorded per batch.
    /// This is what makes the packed-vs-dense variant cost observable —
    /// a packed Q8 variant's histogram should sit well below the dense
    /// baseline's. Empty under `Default`; populated by
    /// [`ServeMetrics::with_model_names`].
    pub per_model_forward: Vec<(String, LatencyHistogram)>,
    /// Per-model compiled-plan gauges (same order and population rule as
    /// [`ServeMetrics::per_model_forward`]).
    pub per_model_plan: Vec<(String, PlanGauge)>,
    /// End-to-end time from enqueue to reply.
    pub total: LatencyHistogram,
    /// Distribution of executed batch sizes.
    pub batch_sizes: BatchSizeDistribution,
    /// Requests scored by the compression-ensemble guard.
    pub guard_scored: AtomicU64,
    /// Requests the guard flagged as suspect.
    pub guard_flagged: AtomicU64,
    /// Sum over scored requests of the disagreeing-variant count.
    pub guard_disagreements: AtomicU64,
    /// Number of guard variants per request (for rate normalisation).
    pub guard_variants: AtomicU64,
    /// Per-variant disagreement counters `(name, count)` in registry
    /// variant order: how often each variant's top-1 label disagreed with
    /// the baseline's. This is what localises a guard signal to the
    /// variant producing it (a quantised member may disagree far more
    /// than a pruned one). Empty under `Default`; populated by
    /// [`ServeMetrics::with_model_names`].
    pub per_variant_disagreements: Vec<(String, AtomicU64)>,
    /// Guard outcomes for evaluation traffic tagged with an attack id:
    /// `attack -> (scored, flagged)`. Only tagged requests take this lock
    /// — the untagged production path stays lock-free.
    attack_outcomes: Mutex<BTreeMap<String, (u64, u64)>>,
    /// Guard deployment info for the snapshot (set at engine start).
    guard_deployment: Mutex<Option<GuardDeployment>>,
    /// Jobs moved across shards by work stealing (mirrored from the
    /// queue's counter at snapshot time via [`ServeMetrics::set_steals`]).
    pub steals: AtomicU64,
    /// Successful model hot swaps (mirrored from the registry at snapshot
    /// time via [`ServeMetrics::set_swaps`]).
    pub swaps: AtomicU64,
    /// Worker batches lost to a panic (caught; jobs answered WorkerLost).
    pub worker_panics: AtomicU64,
    /// Connections accepted by the server.
    pub conns_opened: AtomicU64,
    /// Connections closed (either side, any reason).
    pub conns_closed: AtomicU64,
    /// Connections that ended in a transport error (reset, short read
    /// mid-frame, I/O failure) rather than a clean close.
    pub conn_resets: AtomicU64,
    /// Protocol violations observed (oversized frame header, malformed
    /// JSON payload).
    pub bad_frames: AtomicU64,
    /// Connections refused at accept time (connection limit).
    pub rejected_conns: AtomicU64,
}

impl ServeMetrics {
    /// Metrics with one per-model forward histogram per registry model
    /// (baseline first, then variants — the `ModelRegistry::names` order).
    pub fn with_model_names<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        ServeMetrics {
            per_model_forward: names
                .iter()
                .map(|n| (n.clone(), LatencyHistogram::default()))
                .collect(),
            // Variants are every model after the baseline.
            per_variant_disagreements: names
                .iter()
                .skip(1)
                .map(|n| (n.clone(), AtomicU64::new(0)))
                .collect(),
            per_model_plan: names
                .into_iter()
                .map(|n| (n, PlanGauge::default()))
                .collect(),
            ..ServeMetrics::default()
        }
    }

    /// Counts one top-1 disagreement for variant `index` (registry variant
    /// order; out-of-range indices are ignored).
    pub fn record_variant_disagreement(&self, index: usize) {
        if let Some((_, c)) = self.per_variant_disagreements.get(index) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the guard's verdict for one request tagged with `attack`
    /// (evaluation traffic only).
    pub fn record_attack_outcome(&self, attack: &str, flagged: bool) {
        let mut map = self
            .attack_outcomes
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let entry = map.entry(attack.to_string()).or_insert((0, 0));
        entry.0 += 1;
        if flagged {
            entry.1 += 1;
        }
    }

    /// Per-attack guard outcomes as `(attack, scored, flagged)` rows.
    pub fn attack_outcomes(&self) -> Vec<(String, u64, u64)> {
        self.attack_outcomes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, &(s, f))| (k.clone(), s, f))
            .collect()
    }

    /// Publishes how the guard is deployed (detector + threshold) so the
    /// snapshot can report calibrated verdicts as such.
    pub fn set_guard_deployment(&self, d: GuardDeployment) {
        *self
            .guard_deployment
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(d);
    }

    /// The published guard deployment, if any.
    pub fn guard_deployment(&self) -> Option<GuardDeployment> {
        self.guard_deployment
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Records one model's compiled-plan gauges. `index` follows the
    /// registry order; out-of-range indices are ignored.
    pub fn set_model_plan(&self, index: usize, compile_us: u64, arena_peak_bytes: u64) {
        if let Some((_, g)) = self.per_model_plan.get(index) {
            g.compile_us.store(compile_us, Ordering::Relaxed);
            g.arena_peak_bytes
                .store(arena_peak_bytes, Ordering::Relaxed);
        }
    }

    /// Records one model's share of a batch forward pass. `index` follows
    /// the registry order used in [`ServeMetrics::with_model_names`];
    /// out-of-range indices are ignored (metrics must never panic a
    /// worker).
    pub fn record_model_forward(&self, index: usize, d: Duration) {
        if let Some((_, h)) = self.per_model_forward.get(index) {
            h.record(d);
        }
    }

    /// Mirrors the work-stealing counter into the snapshot (store, not
    /// add — the queue owns the running total).
    pub fn set_steals(&self, v: u64) {
        self.steals.store(v, Ordering::Relaxed);
    }

    /// Mirrors the registry's swap counter into the snapshot.
    pub fn set_swaps(&self, v: u64) {
        self.swaps.store(v, Ordering::Relaxed);
    }

    /// Fraction of scored requests the guard flagged (0 when unscored).
    pub fn flag_rate(&self) -> f64 {
        let n = self.guard_scored.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.guard_flagged.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Mean fraction of variants disagreeing with the baseline per scored
    /// request (0 when unscored).
    pub fn disagreement_rate(&self) -> f64 {
        let slots = self.guard_variants.load(Ordering::Relaxed);
        if slots == 0 {
            0.0
        } else {
            self.guard_disagreements.load(Ordering::Relaxed) as f64 / slots as f64
        }
    }

    /// Requests per second over `elapsed` (completed requests only).
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        let s = elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.completed.load(Ordering::Relaxed) as f64 / s
        }
    }

    /// One consistent-enough JSON snapshot of every metric.
    pub fn snapshot(&self, elapsed: Duration) -> Json {
        JsonObj::new()
            .set(
                "requests",
                JsonObj::new()
                    .set(
                        "accepted",
                        Json::Num(self.accepted.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "completed",
                        Json::Num(self.completed.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "overloaded",
                        Json::Num(self.overloaded.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "rate_limited",
                        Json::Num(self.rate_limited.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "failed",
                        Json::Num(self.failed.load(Ordering::Relaxed) as f64),
                    )
                    .build(),
            )
            .set(
                "latency",
                JsonObj::new()
                    .set("queue_wait", self.queue_wait.to_json())
                    .set("batch_assembly", self.batch_assembly.to_json())
                    .set("forward", self.forward.to_json())
                    .set("forward_per_model", {
                        let mut obj = JsonObj::new();
                        for (name, h) in &self.per_model_forward {
                            obj = obj.set(name, h.to_json());
                        }
                        obj.build()
                    })
                    .set("total", self.total.to_json())
                    .build(),
            )
            .set("plan", {
                let mut obj = JsonObj::new();
                for (name, g) in &self.per_model_plan {
                    obj = obj.set(
                        name,
                        JsonObj::new()
                            .set(
                                "compiled",
                                Json::Bool(g.compile_us.load(Ordering::Relaxed) > 0),
                            )
                            .set(
                                "compile_us",
                                Json::Num(g.compile_us.load(Ordering::Relaxed) as f64),
                            )
                            .set(
                                "arena_peak_bytes",
                                Json::Num(g.arena_peak_bytes.load(Ordering::Relaxed) as f64),
                            )
                            .build(),
                    );
                }
                obj.build()
            })
            .set("batch", self.batch_sizes.to_json())
            .set("guard", {
                let mut guard = JsonObj::new()
                    .set(
                        "scored",
                        Json::Num(self.guard_scored.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "flagged",
                        Json::Num(self.guard_flagged.load(Ordering::Relaxed) as f64),
                    )
                    .set("flag_rate", Json::Num(self.flag_rate()))
                    .set("disagreement_rate", Json::Num(self.disagreement_rate()));
                if let Some(d) = self.guard_deployment() {
                    guard = guard
                        .set("detector", Json::Str(d.detector))
                        .set("threshold", Json::Num(d.threshold))
                        .set("calibrated", Json::Bool(d.calibrated));
                }
                let mut per_variant = JsonObj::new();
                for (name, c) in &self.per_variant_disagreements {
                    per_variant =
                        per_variant.set(name, Json::Num(c.load(Ordering::Relaxed) as f64));
                }
                guard = guard.set("per_variant_disagreements", per_variant.build());
                let mut attacks = JsonObj::new();
                for (name, scored, flagged) in self.attack_outcomes() {
                    let rate = if scored == 0 {
                        0.0
                    } else {
                        flagged as f64 / scored as f64
                    };
                    attacks = attacks.set(
                        &name,
                        JsonObj::new()
                            .set("scored", Json::Num(scored as f64))
                            .set("flagged", Json::Num(flagged as f64))
                            .set("detection_rate", Json::Num(rate))
                            .build(),
                    );
                }
                guard.set("attacks", attacks.build()).build()
            })
            .set(
                "engine",
                JsonObj::new()
                    .set(
                        "steals",
                        Json::Num(self.steals.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "swaps",
                        Json::Num(self.swaps.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "worker_panics",
                        Json::Num(self.worker_panics.load(Ordering::Relaxed) as f64),
                    )
                    .build(),
            )
            .set(
                "conns",
                JsonObj::new()
                    .set(
                        "opened",
                        Json::Num(self.conns_opened.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "closed",
                        Json::Num(self.conns_closed.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "resets",
                        Json::Num(self.conn_resets.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "bad_frames",
                        Json::Num(self.bad_frames.load(Ordering::Relaxed) as f64),
                    )
                    .set(
                        "rejected",
                        Json::Num(self.rejected_conns.load(Ordering::Relaxed) as f64),
                    )
                    .build(),
            )
            .set("elapsed_s", Json::Num(elapsed.as_secs_f64()))
            .set("throughput_rps", Json::Num(self.throughput(elapsed)))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 2, 4, 100, 1000, 1000, 1000, 8000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_us(), 8000);
        // The rank-4 sample of 8 is the 100µs one (bucket [64, 128) ->
        // upper edge 128); allow through the adjacent 1000µs bucket.
        let p50 = h.quantile_us(0.5);
        assert!((128..=1024).contains(&p50), "p50 = {p50}");
        // p99 is the max sample's bucket, capped at the observed max.
        let p99 = h.quantile_us(0.99);
        assert!((4096..=8000).contains(&p99), "p99 = {p99}");
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(1)); // sub-µs -> bucket 0
        h.record(Duration::from_secs(3600)); // beyond last bucket -> clamped
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.0));
    }

    #[test]
    fn batch_distribution_tracks_mean_and_max() {
        let d = BatchSizeDistribution::default();
        d.record(0); // ignored
        d.record(1);
        d.record(4);
        d.record(4);
        d.record(500); // clamps into the overflow bucket but max is exact
        assert_eq!(d.batches(), 4);
        assert_eq!(d.max(), 500);
        assert!((d.mean() - 509.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn per_model_forward_histograms_appear_in_snapshot() {
        let m = ServeMetrics::with_model_names(["dense", "q8_packed"]);
        assert_eq!(m.per_model_forward.len(), 2);
        m.record_model_forward(0, Duration::from_micros(800));
        m.record_model_forward(1, Duration::from_micros(200));
        m.record_model_forward(1, Duration::from_micros(300));
        m.record_model_forward(7, Duration::from_micros(999)); // out of range: ignored
        assert_eq!(m.per_model_forward[0].1.count(), 1);
        assert_eq!(m.per_model_forward[1].1.count(), 2);
        let snap = m.snapshot(Duration::from_secs(1));
        let parsed = Json::parse(snap.to_string().as_bytes()).unwrap();
        let per_model = parsed
            .get("latency")
            .and_then(|l| l.get("forward_per_model"))
            .expect("forward_per_model section");
        assert_eq!(
            per_model.get("dense").and_then(|h| h.get("count")),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            per_model.get("q8_packed").and_then(|h| h.get("count")),
            Some(&Json::Num(2.0))
        );
        // Default-built metrics expose an empty (but present) section.
        let empty = ServeMetrics::default().snapshot(Duration::from_secs(1));
        let parsed = Json::parse(empty.to_string().as_bytes()).unwrap();
        assert!(parsed
            .get("latency")
            .and_then(|l| l.get("forward_per_model"))
            .is_some());
    }

    #[test]
    fn snapshot_is_valid_json() {
        let m = ServeMetrics::default();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.completed.fetch_add(2, Ordering::Relaxed);
        m.total.record(Duration::from_millis(5));
        m.batch_sizes.record(2);
        m.guard_scored.fetch_add(2, Ordering::Relaxed);
        m.guard_flagged.fetch_add(1, Ordering::Relaxed);
        m.guard_variants.fetch_add(4, Ordering::Relaxed);
        m.guard_disagreements.fetch_add(3, Ordering::Relaxed);
        let snap = m.snapshot(Duration::from_secs(2));
        let text = snap.to_string();
        let parsed = Json::parse(text.as_bytes()).unwrap();
        assert_eq!(
            parsed.get("requests").and_then(|r| r.get("accepted")),
            Some(&Json::Num(3.0))
        );
        assert_eq!(
            parsed.get("throughput_rps"),
            Some(&Json::Num(1.0)),
            "2 completed / 2s"
        );
        assert_eq!(
            parsed.get("guard").and_then(|g| g.get("flag_rate")),
            Some(&Json::Num(0.5))
        );
    }
}
