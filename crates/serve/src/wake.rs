//! Event-loop waker: lets worker threads interrupt a `poll(2)` sleep.
//!
//! The I/O loop parks in [`crate::netpoll::wait`]; when a worker finishes
//! a batch the response must go out immediately, not at the next timeout
//! tick. The waker is a loopback socket pair: the read end sits in the
//! poll set, [`Waker::wake`] writes one byte to the write end, and the
//! loop [`Waker::drain`]s it on wakeup.
//!
//! A TCP loopback pair (not `UnixStream::pair`) keeps this file free of
//! platform gates — std guarantees it everywhere the server runs.
//!
//! The `signalled` flag coalesces bursts: only the wake that flips
//! `false → true` pays for a syscall, and `drain` clears the flag
//! **before** reading so a wake racing with the drain either lands its
//! byte (picked up by this drain) or observes `false` and writes a fresh
//! byte for the next poll round — a wake is never lost.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

#[derive(Debug)]
pub(crate) struct Waker {
    tx: TcpStream,
    rx: TcpStream,
    signalled: AtomicBool,
}

impl Waker {
    pub(crate) fn new() -> std::io::Result<Waker> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nodelay(true)?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            tx,
            rx,
            signalled: AtomicBool::new(false),
        })
    }

    /// Interrupts the poll loop. Cheap when a wake is already pending;
    /// never blocks (a full socket buffer implies a wake is pending too).
    pub(crate) fn wake(&self) {
        if !self.signalled.swap(true, Ordering::AcqRel) {
            let _ = (&self.tx).write(&[1u8]);
        }
    }

    /// Raw fd of the read end, for the poll set.
    #[cfg(unix)]
    pub(crate) fn poll_fd(&self) -> i32 {
        std::os::unix::io::AsRawFd::as_raw_fd(&self.rx)
    }

    #[cfg(not(unix))]
    pub(crate) fn poll_fd(&self) -> i32 {
        -1
    }

    /// Consumes pending wake bytes; called by the loop after each poll.
    pub(crate) fn drain(&self) {
        self.signalled.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_makes_poll_fd_readable_and_drain_clears_it() {
        let w = Waker::new().unwrap();
        let mut entries = [crate::netpoll::PollEntry::new(w.poll_fd(), true, false)];
        assert_eq!(
            crate::netpoll::wait(&mut entries, Duration::from_millis(10)).unwrap(),
            0,
            "no wake yet"
        );
        w.wake();
        w.wake(); // coalesced: still a single pending byte
        entries[0].readable = false;
        assert_eq!(
            crate::netpoll::wait(&mut entries, Duration::from_millis(1000)).unwrap(),
            1
        );
        assert!(entries[0].readable);
        w.drain();
        entries[0].readable = false;
        assert_eq!(
            crate::netpoll::wait(&mut entries, Duration::from_millis(10)).unwrap(),
            0,
            "drained"
        );
    }

    #[test]
    fn wake_after_drain_is_not_lost() {
        let w = Arc::new(Waker::new().unwrap());
        for _ in 0..100 {
            w.wake();
            w.drain();
            w.wake();
            let mut entries = [crate::netpoll::PollEntry::new(w.poll_fd(), true, false)];
            assert_eq!(
                crate::netpoll::wait(&mut entries, Duration::from_millis(1000)).unwrap(),
                1,
                "post-drain wake must be visible"
            );
            w.drain();
        }
    }

    #[test]
    fn concurrent_wakers_never_block() {
        let w = Arc::new(Waker::new().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        w.wake();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        w.drain();
    }
}
