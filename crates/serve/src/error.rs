//! Error type for the serving engine.

use advcomp_detect::DetectError;
use advcomp_models::CheckpointError;
use advcomp_nn::NnError;
use std::fmt;

/// Errors raised by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// The request queue is full — explicit backpressure, never a hang.
    /// Clients receive an `overloaded` response and should retry later.
    Overloaded,
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// The client exceeded its admission-control rate limit — deliberate
    /// per-client throttling, distinct from [`ServeError::Overloaded`]
    /// (which signals whole-server pressure). Clients should back off to
    /// their provisioned rate rather than retry immediately.
    RateLimited,
    /// A worker dropped the reply channel without answering (a worker
    /// panic; the request is lost, not stuck).
    WorkerLost,
    /// Invalid engine or registry configuration.
    Config(String),
    /// A request was malformed (wrong input length, unknown model, bad
    /// frame).
    BadRequest(String),
    /// Checkpoint loading failed (I/O, corruption, incompatibility).
    Checkpoint(CheckpointError),
    /// The adversarial guard failed: a corrupt calibration artifact at
    /// load time, or a detector scoring error at serve time.
    Detect(DetectError),
    /// A model forward pass failed.
    Nn(NnError),
    /// Socket-level I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "engine shutting down"),
            ServeError::RateLimited => write!(f, "client rate limit exceeded (rate_limited)"),
            ServeError::WorkerLost => write!(f, "worker dropped the request"),
            ServeError::Config(msg) => write!(f, "invalid config: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::Detect(e) => write!(f, "guard: {e}"),
            ServeError::Nn(e) => write!(f, "model: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Detect(e) => Some(e),
            ServeError::Nn(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<DetectError> for ServeError {
    fn from(e: DetectError) -> Self {
        ServeError::Detect(e)
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::Overloaded.to_string().contains("overloaded"));
        assert!(ServeError::Config("x".into()).to_string().contains('x'));
        assert!(ServeError::BadRequest("y".into()).to_string().contains('y'));
    }
}
