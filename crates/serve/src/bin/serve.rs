//! `serve` — run the batched inference server over saved checkpoints.
//!
//! ```text
//! serve --arch lenet5:1.0 --baseline dense=ckpt/dense.advc \
//!       --variant quant8=ckpt/quant8.advc --variant pruned=ckpt/pruned.advc \
//!       --addr 127.0.0.1:7878 --workers 4 --max-batch 16 --max-delay-ms 2 \
//!       --queue-depth 128 --guard-threshold 0.5
//! ```
//!
//! Architectures: `mlp:<hidden>` (28×28 inputs) and `lenet5:<width>`.
//! Every checkpoint must have been written by `advcomp_models::Checkpoint`
//! (v2 files carry a CRC-32 footer and are verified on load).

use advcomp_models::{lenet5, mlp};
use advcomp_nn::Sequential;
use advcomp_serve::{
    Engine, GuardConfig, ModelRegistry, RateLimitConfig, ServeConfig, Server, ServerConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    arch: String,
    baseline: Option<(String, PathBuf)>,
    variants: Vec<(String, PathBuf)>,
    calibration: Option<PathBuf>,
    addr: String,
    config: ServeConfig,
    server: ServerConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve --arch <mlp:H|lenet5:W> --baseline NAME=PATH \
         [--variant NAME=PATH]... [--addr HOST:PORT] [--workers N] \
         [--max-batch N] [--max-delay-ms N] [--queue-depth N] \
         [--guard-threshold F|--no-guard] [--calibration PATH] \
         [--io-threads N] [--rate-limit RPS[:BURST]] [--max-conns N]"
    );
    std::process::exit(2);
}

/// Parses `RPS` or `RPS:BURST` (burst defaults to 2x the rate).
fn parse_rate_limit(arg: &str) -> Option<RateLimitConfig> {
    let (rps, burst) = match arg.split_once(':') {
        Some((r, b)) => (r.parse().ok()?, b.parse().ok()?),
        None => {
            let rps: f64 = arg.parse().ok()?;
            (rps, (rps * 2.0).max(1.0))
        }
    };
    Some(RateLimitConfig { rps, burst })
}

fn parse_named(arg: &str) -> (String, PathBuf) {
    match arg.split_once('=') {
        Some((name, path)) if !name.is_empty() && !path.is_empty() => {
            (name.to_string(), PathBuf::from(path))
        }
        _ => {
            eprintln!("expected NAME=PATH, got {arg}");
            usage()
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        arch: "lenet5:1.0".into(),
        baseline: None,
        variants: Vec::new(),
        calibration: None,
        addr: "127.0.0.1:7878".into(),
        config: ServeConfig::default(),
        server: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--arch" => args.arch = value(),
            "--baseline" => args.baseline = Some(parse_named(&value())),
            "--variant" => args.variants.push(parse_named(&value())),
            "--addr" => args.addr = value(),
            "--workers" => args.config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.config.max_batch = value().parse().unwrap_or_else(|_| usage()),
            "--max-delay-ms" => {
                args.config.max_delay =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()))
            }
            "--queue-depth" => {
                args.config.queue_depth = value().parse().unwrap_or_else(|_| usage())
            }
            "--guard-threshold" => {
                args.config.guard = Some(GuardConfig {
                    threshold: value().parse().unwrap_or_else(|_| usage()),
                })
            }
            "--no-guard" => args.config.guard = None,
            "--calibration" => args.calibration = Some(PathBuf::from(value())),
            "--io-threads" => args.server.io_threads = value().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => args.server.max_conns = value().parse().unwrap_or_else(|_| usage()),
            "--rate-limit" => {
                args.server.rate_limit = Some(parse_rate_limit(&value()).unwrap_or_else(|| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.baseline.is_none() {
        eprintln!("--baseline is required");
        usage();
    }
    args
}

/// Builds a fresh (untrained) architecture from its spec string; the
/// checkpoint restore then installs the trained parameters.
fn build_arch(spec: &str) -> Option<(Sequential, Vec<usize>)> {
    let (kind, param) = spec.split_once(':')?;
    match kind {
        "mlp" => Some((mlp(param.parse().ok()?, 0), vec![1, 28, 28])),
        "lenet5" => Some((lenet5(param.parse().ok()?, 0), vec![1, 28, 28])),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some((_, input_shape)) = build_arch(&args.arch) else {
        eprintln!("unknown architecture spec {}", args.arch);
        return ExitCode::from(2);
    };
    let run = || -> Result<(), advcomp_serve::ServeError> {
        let mut registry = ModelRegistry::new(&input_shape)?;
        let (name, path) = args.baseline.as_ref().expect("validated in parse_args");
        let (arch, _) = build_arch(&args.arch).expect("validated above");
        registry.load_baseline(name.clone(), arch, path)?;
        eprintln!("loaded baseline {name} from {}", path.display());
        for (name, path) in &args.variants {
            let (arch, _) = build_arch(&args.arch).expect("validated above");
            registry.load_variant(name.clone(), arch, path)?;
            eprintln!("loaded variant {name} from {}", path.display());
        }
        if let Some(path) = &args.calibration {
            registry.load_calibration(path)?;
            let cal = registry.calibration().expect("just loaded");
            eprintln!(
                "loaded calibration from {}: detector {} at threshold {:.4} \
                 (target fpr {:.3}, observed tpr {:.3}, auc {:.3})",
                path.display(),
                cal.detector,
                cal.threshold,
                cal.target_fpr,
                cal.observed_tpr,
                cal.auc
            );
        }
        let engine = Engine::start(&registry, args.config.clone())?;
        let server = Server::bind_with(engine, &args.addr, args.server.clone())?;
        eprintln!(
            "serving on {} ({} workers x {} io threads, max batch {}, guard {}, rate limit {})",
            server.local_addr(),
            args.config.workers,
            args.server.io_threads,
            args.config.max_batch,
            match (&args.config.guard, args.calibration.is_some()) {
                (Some(_), true) => "calibrated".into(),
                (Some(g), false) => format!("threshold {}", g.threshold),
                (None, _) => "off".into(),
            },
            match &args.server.rate_limit {
                Some(rl) => format!("{} rps (burst {})", rl.rps, rl.burst),
                None => "off".into(),
            }
        );
        server.serve_forever();
        eprintln!("shut down cleanly");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
