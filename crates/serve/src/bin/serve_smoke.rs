//! `serve_smoke` — self-contained smoke check for the serving stack,
//! wired into `scripts/check.sh`.
//!
//! Starts a real TCP server on an ephemeral port over checkpoint-loaded
//! models (exercising the CRC-verified v2 format end-to-end), then drives
//! it with a mix of traffic a hostile network could produce: concurrent
//! predictions, control commands, an oversized frame header, a malformed
//! JSON frame, and a truncated frame — finishing with a clean shutdown.
//!
//! A second phase checks the **open-loop load story** instead of a raw
//! rps number (raw rps is a closed-loop bias: it measures the client's
//! patience, not the server). Against an admission-capped server, the
//! goodput-vs-offered-load curve must have the right *shape*: goodput
//! tracks offered load below the cap, a saturation knee exists before
//! the highest swept rate, and goodput never exceeds offered load.
//!
//! Exits non-zero on the first violated expectation.

use advcomp_models::{mlp, Checkpoint};
use advcomp_serve::json::Json;
use advcomp_serve::loadgen::{self, find_knee, LoadPlan};
use advcomp_serve::protocol::{Command, MAX_FRAME};
use advcomp_serve::{
    Client, Engine, GuardConfig, ModelRegistry, RateLimitConfig, ServeConfig, Server, ServerConfig,
};
use std::process::ExitCode;
use std::time::Duration;

fn check(ok: bool, what: &str) -> Result<(), String> {
    if ok {
        println!("smoke: OK   {what}");
        Ok(())
    } else {
        Err(format!("smoke: FAIL {what}"))
    }
}

fn run() -> Result<(), String> {
    fn err(stage: &'static str) -> impl Fn(advcomp_serve::ServeError) -> String {
        move |e| format!("{stage}: {e}")
    }

    // Registry via checkpoint files, so the smoke covers save -> CRC ->
    // load, not just in-memory registration.
    let dir = std::env::temp_dir().join(format!("advcomp_serve_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("tempdir: {e}"))?;
    let dense_path = dir.join("dense.advc");
    let alt_path = dir.join("alt.advc");
    Checkpoint::capture(&mlp(16, 3))
        .save(&dense_path)
        .map_err(|e| format!("save: {e}"))?;
    Checkpoint::capture(&mlp(16, 4))
        .save(&alt_path)
        .map_err(|e| format!("save: {e}"))?;

    let mut registry = ModelRegistry::new(&[1, 28, 28]).map_err(err("registry"))?;
    registry
        .load_baseline("dense", mlp(16, 0), &dense_path)
        .map_err(err("load baseline"))?;
    registry
        .load_variant("alt", mlp(16, 0), &alt_path)
        .map_err(err("load variant"))?;
    check(true, "checkpoints loaded through CRC-verified registry")?;

    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_depth: 64,
            guard: Some(GuardConfig { threshold: 0.5 }),
            ..ServeConfig::default()
        },
    )
    .map_err(err("engine"))?;
    let server = Server::bind(engine, "127.0.0.1:0").map_err(err("bind"))?;
    let addr = server.local_addr();
    check(true, &format!("server bound on ephemeral port {addr}"))?;

    // Liveness.
    let mut client = Client::connect(addr).map_err(err("connect"))?;
    let pong = client.control(Command::Ping).map_err(err("ping"))?;
    check(
        pong.get("status").and_then(Json::as_str) == Some("ok"),
        "ping answered",
    )?;

    // Concurrent predictions from many connections.
    let mut handles = Vec::new();
    for t in 0..8 {
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
            for i in 0..4 {
                let v = (t * 4 + i) as f32 / 32.0;
                let resp = c
                    .predict(vec![v; 28 * 28], i == 0)
                    .map_err(|e| format!("predict: {e}"))?;
                if resp.get("status").and_then(Json::as_str) != Some("ok") {
                    return Err(format!("prediction not ok: {resp}"));
                }
                if resp.get("suspect").and_then(Json::as_f64).is_none() {
                    return Err("missing guard score".into());
                }
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join()
            .map_err(|_| "client thread panicked".to_string())??;
    }
    check(true, "32 predictions over 8 concurrent connections")?;

    // Bad input length: error response, connection stays usable.
    let resp = client.predict(vec![0.0; 3], false).map_err(err("short"))?;
    check(
        resp.get("status").and_then(Json::as_str) == Some("error"),
        "wrong-length input rejected with status=error",
    )?;
    let pong = client.control(Command::Ping).map_err(err("ping2"))?;
    check(
        pong.get("status").and_then(Json::as_str) == Some("ok"),
        "connection survives a bad request",
    )?;

    // Oversized frame header: answered once, then the server hangs up.
    let mut evil = Client::connect(addr).map_err(err("connect evil"))?;
    evil.send_raw(&(MAX_FRAME + 1).to_le_bytes())
        .map_err(err("oversized send"))?;
    let payload = evil
        .read_response()
        .map_err(err("oversized read"))?
        .ok_or("no error frame for oversized header")?;
    let resp = Json::parse(&payload).map_err(|e| format!("oversized parse: {e}"))?;
    check(
        resp.get("status").and_then(Json::as_str) == Some("error"),
        "oversized frame header rejected",
    )?;
    check(
        evil.read_response()
            .map_err(err("oversized eof"))?
            .is_none(),
        "connection closed after oversized frame",
    )?;

    // Malformed JSON inside a well-formed frame.
    let mut bad = Client::connect(addr).map_err(err("connect bad"))?;
    let mut frame = Vec::new();
    frame.extend_from_slice(&7u32.to_le_bytes());
    frame.extend_from_slice(b"{nope!}");
    bad.send_raw(&frame).map_err(err("malformed send"))?;
    let payload = bad
        .read_response()
        .map_err(err("malformed read"))?
        .ok_or("no error frame for malformed JSON")?;
    let resp = Json::parse(&payload).map_err(|e| format!("malformed parse: {e}"))?;
    check(
        resp.get("status").and_then(Json::as_str) == Some("error"),
        "malformed JSON rejected with status=error",
    )?;

    // Metrics must show the traffic and at least one coalesced batch.
    let metrics = client.control(Command::Metrics).map_err(err("metrics"))?;
    let m = metrics.get("metrics").ok_or("missing metrics object")?;
    let completed = m
        .get("requests")
        .and_then(|r| r.get("completed"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    check(
        completed >= 32,
        &format!("metrics counted {completed} completions"),
    )?;

    // Graceful shutdown via the wire protocol.
    let resp = client.control(Command::Shutdown).map_err(err("shutdown"))?;
    check(
        resp.get("status").and_then(Json::as_str) == Some("ok"),
        "shutdown command acknowledged",
    )?;
    server.join();
    std::thread::sleep(Duration::from_millis(50));
    check(
        Client::connect(addr).is_err(),
        "listener is gone after shutdown",
    )?;

    // ---- Phase 2: open-loop goodput-vs-offered-load curve shape ----
    //
    // Capacity is pinned by per-client admission control (500 rps), not
    // by this host's compute, so the curve shape is deterministic on any
    // hardware: the low rates are fully admitted, the top rate is shed.
    let mut registry = ModelRegistry::new(&[1, 28, 28]).map_err(err("registry2"))?;
    registry
        .load_baseline("dense", mlp(16, 0), &dense_path)
        .map_err(err("load baseline 2"))?;
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .map_err(err("engine2"))?;
    let server = Server::bind_with(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            rate_limit: Some(RateLimitConfig {
                rps: 500.0,
                burst: 50.0,
            }),
            ..ServerConfig::default()
        },
    )
    .map_err(err("bind2"))?;
    let addr = server.local_addr();
    let input = vec![0.5f32; 28 * 28];

    let rates = [100.0, 400.0, 1600.0];
    let mut points = Vec::new();
    let mut reports = Vec::new();
    for &rps in &rates {
        let plan = LoadPlan {
            connections: 4,
            drain_timeout: Duration::from_secs(2),
            ..LoadPlan::new(rps, Duration::from_secs(1), input.clone())
        };
        let report = loadgen::run(addr, &plan).map_err(err("loadgen"))?;
        println!(
            "smoke: open-loop offered {rps:7.0} rps -> goodput {:7.1} rps \
             (ok {} rate_limited {} overloaded {} lost {})",
            report.goodput_rps(),
            report.ok,
            report.rate_limited,
            report.overloaded,
            report.lost
        );
        points.push((rps, report.goodput_rps()));
        reports.push(report);
    }
    for &(offered, goodput) in &points {
        check(
            goodput <= offered * 1.05,
            &format!("goodput {goodput:.1} never exceeds offered {offered:.1}"),
        )?;
    }
    check(
        reports[0].goodput_rps() >= 0.9 * rates[0],
        "below the cap, goodput tracks offered load",
    )?;
    let knee = find_knee(&points);
    check(
        knee.is_some(),
        "a saturation knee exists (some offered rate is fully served)",
    )?;
    check(
        knee.unwrap_or(usize::MAX) < points.len() - 1,
        "the top offered rate saturates (knee is not the last point)",
    )?;
    check(
        reports[2].rate_limited > 0,
        "saturation shows up as explicit rate_limited responses",
    )?;
    check(
        reports.iter().map(|r| r.lost).sum::<u64>() == 0,
        "every request got a response (nothing lost under shed)",
    )?;
    server.request_shutdown();
    server.join();

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("smoke: all serve checks passed");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
