//! advcomp-serve: batched inference serving with compression-ensemble
//! adversarial detection.
//!
//! This crate turns the repository's trained models into a small
//! production-style serving stack:
//!
//! * [`ModelRegistry`] — loads checkpoints (CRC-verified v2 format) into a
//!   named baseline plus compressed variants, and stamps out independent
//!   per-worker [`ReplicaSet`]s so concurrent forwards never share layer
//!   state.
//! * [`Engine`] — a bounded-queue dynamic batcher: worker threads coalesce
//!   requests until `max_batch` or `max_delay`, run one batched eval
//!   forward, and answer per-request reply channels. A full queue rejects
//!   with [`ServeError::Overloaded`] — explicit backpressure, never a
//!   hang.
//! * the **ensemble guard** — scores each request by how many compressed
//!   variants disagree with the baseline's top-1 label. Adversarial
//!   examples transfer imperfectly across compression levels (the source
//!   paper's key interaction), so disagreement is a cheap attack signal.
//! * [`Server`]/[`Client`] — length-prefixed JSON frames over TCP with a
//!   graceful-shutdown accept loop.
//! * [`ServeMetrics`] — lock-free per-stage latency histograms, batch-size
//!   distribution and guard rates, snapshotted to JSON.
//!
//! ```no_run
//! use advcomp_serve::{Engine, ModelRegistry, ServeConfig, Server};
//!
//! let mut registry = ModelRegistry::new(&[1, 28, 28])?;
//! registry.set_baseline("dense", advcomp_models::mlp(32, 0))?;
//! registry.add_variant("quant8", advcomp_models::mlp(32, 0))?;
//! let engine = Engine::start(&registry, ServeConfig::default())?;
//! let server = Server::bind(engine, "127.0.0.1:7878")?;
//! server.serve_forever();
//! # Ok::<(), advcomp_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
pub mod json;
mod metrics;
pub mod protocol;
mod registry;
mod server;

pub use engine::{Engine, GuardConfig, Prediction, ServeConfig};
pub use error::ServeError;
pub use metrics::{BatchSizeDistribution, LatencyHistogram, ServeMetrics};
pub use registry::{ModelRegistry, ReplicaSet};
pub use server::{Client, Server};
