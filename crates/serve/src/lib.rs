//! advcomp-serve: batched inference serving with compression-ensemble
//! adversarial detection.
//!
//! This crate turns the repository's trained models into a small
//! production-style serving stack:
//!
//! * [`ModelRegistry`] — loads checkpoints (CRC-verified v2 float / v3
//!   packed-quantised formats) into a named baseline plus compressed
//!   variants, publishes them as generation-stamped immutable snapshots,
//!   and supports [`ModelRegistry::swap`]: an atomic hot swap picked up
//!   by workers at their next batch boundary, without draining in-flight
//!   work. Workers forward on independent per-worker [`ReplicaSet`]s so
//!   concurrent forwards never share layer state.
//! * [`Engine`] — a sharded dynamic batcher: each worker owns a bounded
//!   queue shard and steals from loaded shards when idle, coalescing
//!   requests until `max_batch` or `max_delay` before one batched eval
//!   forward. Submission is either blocking ([`Engine::submit`]) or
//!   non-blocking ([`Engine::submit_async`], completions over a channel
//!   with exactly-once delivery even across worker panics). A full queue
//!   rejects with [`ServeError::Overloaded`] — explicit backpressure,
//!   never a hang.
//! * the **ensemble guard** — scores each request with a detector from
//!   `advcomp-detect` over the compressed-variant ensemble. Adversarial
//!   examples transfer imperfectly across compression levels (the source
//!   paper's key interaction), so cross-variant disagreement is a cheap
//!   attack signal. When the registry carries a
//!   [`ModelRegistry::load_calibration`] artifact, the guard runs the
//!   calibrated detector at its ROC-chosen threshold and the metrics
//!   snapshot reports the deployment; otherwise it falls back to the raw
//!   disagreement score at [`GuardConfig`]'s threshold.
//! * [`Server`]/[`Client`] — length-prefixed JSON frames over TCP served
//!   by non-blocking event loops (readiness-polled via `poll(2)`), with
//!   per-client token-bucket admission control ([`RateLimitConfig`],
//!   distinct `rate_limited` status), pipelined in-order responses, and
//!   graceful shutdown.
//! * [`ServeMetrics`] — lock-free per-stage latency histograms
//!   (p50/p99/p999), batch-size distribution, guard rates, and
//!   connection/steal/swap counters, snapshotted to JSON.
//!
//! ```no_run
//! use advcomp_serve::{Engine, ModelRegistry, ServeConfig, Server};
//!
//! let mut registry = ModelRegistry::new(&[1, 28, 28])?;
//! registry.set_baseline("dense", advcomp_models::mlp(32, 0))?;
//! registry.add_variant("quant8", advcomp_models::mlp(32, 0))?;
//! let engine = Engine::start(&registry, ServeConfig::default())?;
//! let server = Server::bind(engine, "127.0.0.1:7878")?;
//! server.serve_forever();
//! # Ok::<(), advcomp_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod admission;
mod engine;
mod error;
pub mod json;
pub mod loadgen;
mod metrics;
mod netpoll;
pub mod protocol;
mod registry;
mod server;
mod shard;
mod wake;

pub use engine::{
    Completion, CompletionSender, CompletionWaker, Engine, GuardConfig, Prediction, ServeConfig,
};
pub use error::ServeError;
pub use metrics::{BatchSizeDistribution, GuardDeployment, LatencyHistogram, ServeMetrics};
pub use registry::{ModelRegistry, ModelSet, RegistryHandle, ReplicaSet};
pub use server::{Client, RateLimitConfig, Server, ServerConfig};
