//! Minimal readiness polling over `poll(2)`.
//!
//! The event-loop server needs one primitive: "block until any of these
//! sockets is readable/writable, or a timeout". std offers no readiness
//! API and external crates are off the table (all workspace deps are
//! vendored offline stubs), so on Unix this module declares `poll(2)`
//! itself — a single, stable, POSIX-guaranteed symbol with a fixed ABI.
//! Level-triggered `poll` (vs `epoll`) keeps the state machine trivial:
//! re-arming is just rebuilding the fd array each iteration, and at the
//! connection counts this server targets (hundreds, not millions) the
//! O(n) scan is noise next to a model forward pass.
//!
//! On non-Unix hosts a conservative fallback marks every entry ready
//! after a short sleep; callers already treat readiness as a hint and
//! handle `WouldBlock` on the actual I/O, so correctness is preserved (at
//! a polling-loop cost). This mirrors the repo's kernel-dispatch idiom:
//! best path on the common platform, correct path everywhere.

use std::time::Duration;

/// One pollable entry: interest in, then readiness of, a raw fd.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEntry {
    /// The raw file descriptor (`AsRawFd::as_raw_fd`).
    pub fd: i32,
    /// Wait for readability.
    pub want_read: bool,
    /// Wait for writability.
    pub want_write: bool,
    /// Out: readable (or has pending error/hangup to collect via read).
    pub readable: bool,
    /// Out: writable.
    pub writable: bool,
    /// Out: error/hangup condition reported by the kernel.
    pub closed: bool,
}

impl PollEntry {
    pub(crate) fn new(fd: i32, want_read: bool, want_write: bool) -> Self {
        PollEntry {
            fd,
            want_read,
            want_write,
            readable: false,
            writable: false,
            closed: false,
        }
    }
}

#[cfg(unix)]
mod sys {
    use super::PollEntry;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    pub(super) fn wait(entries: &mut [PollEntry], timeout: Duration) -> std::io::Result<usize> {
        let mut fds: Vec<PollFd> = entries
            .iter()
            .map(|e| PollFd {
                fd: e.fd,
                events: if e.want_read { POLLIN } else { 0 }
                    | if e.want_write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = loop {
            // SAFETY: `fds` is a live, correctly sized array of repr(C)
            // pollfd structs for the duration of the call; poll(2) writes
            // only the revents fields.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for (e, f) in entries.iter_mut().zip(&fds) {
            // POLLERR/POLLHUP surface as readable so the caller's read
            // observes the error/EOF; POLLNVAL means a stale fd.
            e.readable = f.revents & (POLLIN | POLLERR | POLLHUP) != 0;
            e.writable = f.revents & POLLOUT != 0;
            e.closed = f.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
        }
        Ok(n)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollEntry;
    use std::time::Duration;

    pub(super) fn wait(entries: &mut [PollEntry], timeout: Duration) -> std::io::Result<usize> {
        // No portable readiness API: park briefly, then report everything
        // as ready. The caller's non-blocking I/O turns false positives
        // into WouldBlock, so this degrades to a 1ms polling loop.
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        for e in entries.iter_mut() {
            e.readable = e.want_read;
            e.writable = e.want_write;
            e.closed = false;
        }
        Ok(entries.len())
    }
}

/// Blocks until at least one entry's interest is satisfied or `timeout`
/// elapses, filling each entry's readiness fields. Returns the number of
/// entries with events (0 on timeout).
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR` (retried internally).
pub(crate) fn wait(entries: &mut [PollEntry], timeout: Duration) -> std::io::Result<usize> {
    if entries.is_empty() {
        std::thread::sleep(timeout);
        return Ok(0);
    }
    sys::wait(entries, timeout)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_after_write_and_timeout_when_idle() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut entries = [PollEntry::new(b.as_raw_fd(), true, false)];
        // Nothing written yet: times out with no events.
        let n = wait(&mut entries, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
        assert!(!entries[0].readable);

        a.write_all(b"x").unwrap();
        let n = wait(&mut entries, Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readable);
        let mut buf = [0u8; 1];
        (&b).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn reports_writable_on_fresh_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut entries = [PollEntry::new(a.as_raw_fd(), false, true)];
        let n = wait(&mut entries, Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].writable);
    }

    #[test]
    fn peer_close_reads_as_readable_eof() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut entries = [PollEntry::new(b.as_raw_fd(), true, false)];
        wait(&mut entries, Duration::from_millis(1000)).unwrap();
        assert!(entries[0].readable, "hangup must surface as readable");
        let mut buf = [0u8; 1];
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "then read sees EOF");
    }
}
