//! Length-prefixed frame transport shared by `advcomp-serve` and the
//! distributed-sweep layer in `advcomp-core`.
//!
//! Every message — request or response, lease grant or heartbeat — is one
//! *frame*:
//!
//! ```text
//! +----------------+---------------------+
//! | u32 LE length  |  UTF-8 JSON payload |
//! +----------------+---------------------+
//! ```
//!
//! The length counts payload bytes only and is capped at [`MAX_FRAME`]; a
//! peer announcing a larger frame is rejected before any payload is read,
//! so an adversarial header cannot make the receiver allocate unbounded
//! memory. Both the inference server and the sweep coordinator speak this
//! framing — one implementation, so the two protocols cannot drift apart.

#![warn(missing_docs)]

use std::io::{Read, Write};

/// Maximum frame payload size (16 MiB) — large enough for any realistic
/// batch-of-one image or journal record, small enough to bound
/// per-connection memory.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one frame.
///
/// # Errors
///
/// I/O errors; `InvalidInput` when the payload exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors; `InvalidData` for an oversized length header or truncation
/// mid-frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("announced frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated frame")
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

/// Incremental frame decoder for nonblocking / timeout-driven readers.
///
/// [`read_frame`] assumes a blocking stream: a read timeout mid-frame would
/// discard the bytes `read_exact` already consumed and desynchronise the
/// connection. A poller instead feeds whatever bytes arrive into
/// [`FrameBuffer::extend`] and drains complete frames with
/// [`FrameBuffer::next_frame`]; partial frames simply wait in the buffer
/// for more bytes.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the buffered header announces a frame larger than
    /// [`MAX_FRAME`] — the connection is unrecoverable at that point.
    pub fn next_frame(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("announced frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
            ));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_payload_is_rejected_on_write() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let payload = vec![0u8; MAX_FRAME as usize + 1];
        assert_eq!(
            write_frame(&mut NullSink, &payload).unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn truncated_payload_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 10 promised bytes
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"second").unwrap();
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for &b in &stream {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(
            frames,
            vec![b"first".to_vec(), Vec::new(), b"second".to_vec()]
        );
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_buffer_rejects_oversized_header() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            fb.next_frame().unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn eof_during_header_reads_as_clean_eof() {
        // EOF anywhere in the 4-byte header reads as a clean end-of-stream
        // (`Ok(None)`): a peer that dies between frames and one that dies
        // mid-header are indistinguishable to the reader, and both protocols
        // treat the connection as closed rather than corrupt.
        let buf = [1u8, 0];
        assert!(read_frame(&mut &buf[..]).unwrap().is_none());
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
    }
}
