//! Canonical Huffman coding over quantised-code streams — the third stage
//! of Deep Compression (Han et al. 2016), which the paper's introduction
//! cites as the EIE deployment pipeline.

use crate::{Result, SparseError};
use std::collections::HashMap;

/// A Huffman codebook mapping symbols (quantised codes) to bit strings.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    /// `symbol -> (bits, length)`; bits stored LSB-first.
    codes: HashMap<i32, (u64, u8)>,
}

/// An encoded stream: packed bits plus the symbol count.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// Packed bitstream, LSB-first within each byte.
    pub bytes: Vec<u8>,
    /// Number of encoded symbols.
    pub len: usize,
    /// Total number of payload bits.
    pub bits: usize,
}

/// Builds a length-limited-free canonical Huffman codebook from symbol
/// frequencies in `symbols`.
///
/// # Errors
///
/// Returns [`SparseError::InvalidInput`] for an empty stream.
pub fn build_codebook(symbols: &[i32]) -> Result<Codebook> {
    if symbols.is_empty() {
        return Err(SparseError::InvalidInput("empty symbol stream".into()));
    }
    let mut freq: HashMap<i32, u64> = HashMap::new();
    for &s in symbols {
        *freq.entry(s).or_insert(0) += 1;
    }
    // Single-symbol degenerate alphabet: one 1-bit code.
    if freq.len() == 1 {
        let mut codes = HashMap::new();
        codes.insert(symbols[0], (0u64, 1u8));
        return Ok(Codebook { codes });
    }

    // Build the Huffman tree with a simple two-queue method over sorted
    // leaves (deterministic: ties break on symbol value).
    #[derive(Debug)]
    enum Node {
        Leaf(i32),
        Internal(Box<Node>, Box<Node>),
    }
    let mut heap: Vec<(u64, u64, Node)> = freq
        .iter()
        .map(|(&s, &f)| (f, s as i64 as u64 ^ 0x8000_0000_0000_0000, Node::Leaf(s)))
        .collect();
    // (freq, tiebreak, node); pop two smallest each round.
    let mut counter = u64::MAX;
    while heap.len() > 1 {
        heap.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));
        let (f1, _, n1) = heap.pop().expect("len > 1");
        let (f2, _, n2) = heap.pop().expect("len > 1");
        counter -= 1;
        heap.push((f1 + f2, counter, Node::Internal(Box::new(n1), Box::new(n2))));
    }

    // Collect code lengths.
    fn lengths(node: &Node, depth: u8, out: &mut Vec<(i32, u8)>) {
        match node {
            Node::Leaf(s) => out.push((*s, depth.max(1))),
            Node::Internal(l, r) => {
                lengths(l, depth + 1, out);
                lengths(r, depth + 1, out);
            }
        }
    }
    let mut lens = Vec::new();
    lengths(&heap[0].2, 0, &mut lens);

    // Canonicalise: sort by (length, symbol) and assign sequential codes.
    lens.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut codes = HashMap::new();
    let mut code: u64 = 0;
    let mut prev_len: u8 = lens[0].1;
    for (sym, len) in lens {
        code <<= len - prev_len;
        prev_len = len;
        // Store bits MSB-first semantics reversed into LSB-first for easy
        // streaming: reverse the low `len` bits.
        let mut rev = 0u64;
        for b in 0..len {
            if code & (1 << (len - 1 - b)) != 0 {
                rev |= 1 << b;
            }
        }
        codes.insert(sym, (rev, len));
        code += 1;
    }
    Ok(Codebook { codes })
}

impl Codebook {
    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the codebook is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Code length (bits) for a symbol, if present.
    pub fn code_len(&self, symbol: i32) -> Option<u8> {
        self.codes.get(&symbol).map(|&(_, l)| l)
    }

    /// Mean code length weighted by the given stream.
    pub fn mean_bits(&self, symbols: &[i32]) -> f64 {
        if symbols.is_empty() {
            return 0.0;
        }
        let total: usize = symbols
            .iter()
            .map(|s| self.code_len(*s).unwrap_or(0) as usize)
            .sum();
        total as f64 / symbols.len() as f64
    }
}

/// Encodes a symbol stream with a codebook.
///
/// # Errors
///
/// Returns [`SparseError::InvalidInput`] if a symbol is missing from the
/// codebook.
pub fn encode(symbols: &[i32], book: &Codebook) -> Result<Encoded> {
    let mut bytes = Vec::new();
    let mut bitpos = 0usize;
    for &s in symbols {
        let &(code, len) = book
            .codes
            .get(&s)
            .ok_or_else(|| SparseError::InvalidInput(format!("symbol {s} not in codebook")))?;
        for b in 0..len {
            if bitpos.is_multiple_of(8) {
                bytes.push(0u8);
            }
            if code & (1 << b) != 0 {
                *bytes.last_mut().expect("pushed above") |= 1 << (bitpos % 8);
            }
            bitpos += 1;
        }
    }
    Ok(Encoded {
        bytes,
        len: symbols.len(),
        bits: bitpos,
    })
}

/// Decodes an [`Encoded`] stream back to symbols.
///
/// # Errors
///
/// Returns [`SparseError::Corrupt`] if the stream ends mid-code or contains
/// an invalid prefix.
pub fn decode(encoded: &Encoded, book: &Codebook) -> Result<Vec<i32>> {
    // Invert the codebook into (code, len) -> symbol.
    let inverse: HashMap<(u64, u8), i32> =
        book.codes.iter().map(|(&s, &(c, l))| ((c, l), s)).collect();
    let max_len = book.codes.values().map(|&(_, l)| l).max().unwrap_or(0);
    let mut out = Vec::with_capacity(encoded.len);
    let mut bitpos = 0usize;
    for _ in 0..encoded.len {
        let mut code = 0u64;
        let mut len = 0u8;
        loop {
            if bitpos >= encoded.bits || len > max_len {
                return Err(SparseError::Corrupt("stream ended mid-code".into()));
            }
            if encoded.bytes[bitpos / 8] & (1 << (bitpos % 8)) != 0 {
                code |= 1 << len;
            }
            bitpos += 1;
            len += 1;
            if let Some(&sym) = inverse.get(&(code, len)) {
                out.push(sym);
                break;
            }
        }
    }
    Ok(out)
}

/// Shannon entropy of the stream in bits per symbol — the lower bound any
/// entropy coder approaches.
pub fn entropy_bits(symbols: &[i32]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut freq: HashMap<i32, f64> = HashMap::new();
    for &s in symbols {
        *freq.entry(s).or_insert(0.0) += 1.0;
    }
    let n = symbols.len() as f64;
    freq.values()
        .map(|&f| {
            let p = f / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_skewed_stream() {
        // Heavily skewed: zeros dominate (like a quantised pruned model).
        let mut symbols = vec![0i32; 100];
        symbols.extend([1, 1, 1, -3, -3, 7]);
        let book = build_codebook(&symbols).unwrap();
        let enc = encode(&symbols, &book).unwrap();
        let dec = decode(&enc, &book).unwrap();
        assert_eq!(dec, symbols);
        // Skew means < log2(4 symbols) = 2 bits per symbol on average.
        assert!(book.mean_bits(&symbols) < 2.0);
    }

    #[test]
    fn huffman_close_to_entropy() {
        let symbols: Vec<i32> = (0..1000).map(|i| if i % 10 == 0 { 1 } else { 0 }).collect();
        let book = build_codebook(&symbols).unwrap();
        let h = entropy_bits(&symbols);
        let mean = book.mean_bits(&symbols);
        assert!(mean >= h - 1e-9, "mean {mean} below entropy {h}");
        assert!(mean <= h + 1.0, "mean {mean} too far above entropy {h}");
    }

    #[test]
    fn degenerate_single_symbol() {
        let symbols = vec![5i32; 20];
        let book = build_codebook(&symbols).unwrap();
        assert_eq!(book.len(), 1);
        let enc = encode(&symbols, &book).unwrap();
        assert_eq!(enc.bits, 20);
        assert_eq!(decode(&enc, &book).unwrap(), symbols);
    }

    #[test]
    fn uniform_alphabet_roundtrip() {
        let symbols: Vec<i32> = (-8..8).cycle().take(160).collect();
        let book = build_codebook(&symbols).unwrap();
        assert_eq!(book.len(), 16);
        let enc = encode(&symbols, &book).unwrap();
        assert_eq!(decode(&enc, &book).unwrap(), symbols);
        // Uniform 16-symbol alphabet: exactly 4 bits each.
        assert!((book.mean_bits(&symbols) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_unknown_symbol_errors() {
        assert!(build_codebook(&[]).is_err());
        let book = build_codebook(&[1, 2, 2]).unwrap();
        assert!(encode(&[3], &book).is_err());
    }

    #[test]
    fn corrupt_stream_detected() {
        let symbols = vec![0, 1, 0, 1, 2, 2, 2];
        let book = build_codebook(&symbols).unwrap();
        let mut enc = encode(&symbols, &book).unwrap();
        enc.bits = enc.bits.saturating_sub(3); // truncate
        assert!(decode(&enc, &book).is_err());
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[7, 7, 7]), 0.0);
        let uniform: Vec<i32> = (0..256).collect();
        assert!((entropy_bits(&uniform) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_codebook() {
        let symbols = vec![0, 0, 1, 2, 2, 2, 3];
        let a = build_codebook(&symbols).unwrap();
        let b = build_codebook(&symbols).unwrap();
        assert_eq!(a, b);
    }
}
