use advcomp_tensor::TensorError;
use std::fmt;

/// Errors from compressed-storage construction and kernels.
#[derive(Debug)]
pub enum SparseError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Operand dimensions disagree (e.g. matvec with a wrong-length vector).
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        actual: usize,
    },
    /// A bitstream could not be decoded.
    Corrupt(String),
    /// Invalid construction input (e.g. non-2-D matrix for CSR).
    InvalidInput(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::Tensor(e) => write!(f, "tensor error: {e}"),
            SparseError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SparseError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            SparseError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SparseError {
    fn from(e: TensorError) -> Self {
        SparseError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SparseError::DimensionMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains('3'));
        assert!(SparseError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
        let e: SparseError = TensorError::Empty("max").into();
        assert!(e.to_string().contains("tensor"));
    }
}
