//! Compressed-model deployment substrate.
//!
//! The paper's motivation (§1–2) is that pruned and quantised networks ship
//! on edge devices through accelerator-friendly compressed formats — EIE
//! consumes pruned + quantised + entropy-coded weights, SCNN consumes
//! compressed-sparse weights. This crate implements that deployment layer:
//!
//! * [`CsrMatrix`] — compressed sparse row storage for pruned weight
//!   matrices, with a sparse `y = W x` kernel whose outputs are bit-exact
//!   against the dense masked computation;
//! * [`QuantizedTensor`] — fixed-point code storage (the narrow integer
//!   words a Q-format model actually ships);
//! * [`huffman`] — canonical Huffman coding over quantised code streams,
//!   the third stage of Deep Compression (Han et al. 2016);
//! * [`ModelSize`] — end-to-end storage accounting for a model under a
//!   compression recipe: dense float32 vs sparse vs quantised vs
//!   quantised+Huffman, reproducing the headline "9×–13×" compression
//!   ratios the paper's introduction cites.
//!
//! # Example
//!
//! ```
//! use advcomp_sparse::CsrMatrix;
//! use advcomp_tensor::Tensor;
//!
//! # fn main() -> Result<(), advcomp_sparse::SparseError> {
//! let dense = Tensor::new(&[2, 3], vec![0.0, 2.0, 0.0, 1.0, 0.0, 3.0])?;
//! let csr = CsrMatrix::from_dense(&dense)?;
//! assert_eq!(csr.nnz(), 3);
//! let y = csr.matvec(&[1.0, 1.0, 1.0])?;
//! assert_eq!(y, vec![2.0, 4.0]);
//! # Ok(())
//! # }
//! ```

mod csr;
mod error;
pub mod huffman;
mod quantized;
mod size;

pub use csr::CsrMatrix;
pub use error::SparseError;
pub use quantized::QuantizedTensor;
pub use size::{ModelSize, SizeReport};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
