//! Compressed sparse row matrices.

use crate::{Result, SparseError};
use advcomp_tensor::{Tensor, TensorError};

/// A sparse matrix in compressed-sparse-row format.
///
/// This is the storage layout SCNN-style accelerators consume: per-row
/// extents (`row_ptr`), column indices and the non-zero values themselves.
/// Indices are `u32`, which bounds supported matrices to 2³² entries —
/// far beyond any model in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense 2-D tensor, dropping exact zeros.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless `dense` is 2-D.
    pub fn from_dense(dense: &Tensor) -> Result<Self> {
        if dense.ndim() != 2 {
            return Err(SparseError::Tensor(TensorError::RankMismatch {
                expected: 2,
                actual: dense.ndim(),
                op: "csr from_dense",
            }));
        }
        let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.data()[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Reconstructs the dense tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for r in 0..self.rows {
            for k in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                out.data_mut()[r * self.cols + self.col_idx[k] as usize] = self.values[k];
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Storage footprint in bytes: values (f32) + column indices (u32) +
    /// row pointers (u32).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }

    /// Sparse matrix–vector product `y = W x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (r, y_r) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for k in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *y_r = acc;
        }
        Ok(y)
    }

    /// Batched product against row-major inputs: for `x` of shape
    /// `[batch, cols]`, returns `[batch, rows]` — the dense-layer forward
    /// `y = x Wᵀ` with `W` stored sparse.
    ///
    /// # Errors
    ///
    /// Returns rank/dimension errors when `x` is not `[batch, cols]`.
    pub fn matmul_batch(&self, x: &Tensor) -> Result<Tensor> {
        if x.ndim() != 2 {
            return Err(SparseError::Tensor(TensorError::RankMismatch {
                expected: 2,
                actual: x.ndim(),
                op: "csr matmul_batch",
            }));
        }
        if x.shape()[1] != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                actual: x.shape()[1],
            });
        }
        let batch = x.shape()[0];
        let mut out = Tensor::zeros(&[batch, self.rows]);
        for b in 0..batch {
            let row = &x.data()[b * self.cols..(b + 1) * self.cols];
            let y = self.matvec(row)?;
            out.data_mut()[b * self.rows..(b + 1) * self.rows].copy_from_slice(&y);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::new(
            &[3, 4],
            vec![
                1.0, 0.0, 0.0, 2.0, //
                0.0, 0.0, 0.0, 0.0, //
                0.0, 3.0, 4.0, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_to_dense_roundtrip() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d).unwrap();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert!((csr.density() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(csr.to_dense().data(), d.data());
    }

    #[test]
    fn empty_row_handled() {
        let csr = CsrMatrix::from_dense(&sample()).unwrap();
        let y = csr.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 0.0, 7.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        use advcomp_tensor::Init;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut dense = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[8, 6], &mut rng);
        // Sparsify half the entries.
        for (i, v) in dense.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let csr = CsrMatrix::from_dense(&dense).unwrap();
        let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[6], &mut rng);
        let sparse_y = csr.matvec(x.data()).unwrap();
        let dense_y = dense.matvec(&x).unwrap();
        for (s, d) in sparse_y.iter().zip(dense_y.data()) {
            assert!((s - d).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_matches_per_row() {
        let csr = CsrMatrix::from_dense(&sample()).unwrap();
        let x = Tensor::new(&[2, 4], vec![1., 1., 1., 1., 0., 1., 0., 1.]).unwrap();
        let out = csr.matmul_batch(&x).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(&out.data()[0..3], &[3.0, 0.0, 7.0]);
        assert_eq!(&out.data()[3..6], &[2.0, 0.0, 3.0]);
    }

    #[test]
    fn dimension_validation() {
        let csr = CsrMatrix::from_dense(&sample()).unwrap();
        assert!(csr.matvec(&[1.0, 2.0]).is_err());
        assert!(csr.matmul_batch(&Tensor::zeros(&[2, 3])).is_err());
        assert!(csr.matmul_batch(&Tensor::zeros(&[4])).is_err());
        assert!(CsrMatrix::from_dense(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn storage_accounting() {
        let csr = CsrMatrix::from_dense(&sample()).unwrap();
        // 4 values*4 + 4 col idx*4 + 4 row_ptr*4 = 48
        assert_eq!(csr.storage_bytes(), 4 * 4 + 4 * 4 + 4 * 4);
    }

    #[test]
    fn all_zero_matrix() {
        let csr = CsrMatrix::from_dense(&Tensor::zeros(&[2, 2])).unwrap();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.matvec(&[1.0, 1.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(csr.to_dense().data(), &[0.0; 4]);
    }
}
