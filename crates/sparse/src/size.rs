//! End-to-end model storage accounting.

use crate::huffman::{build_codebook, entropy_bits};
use crate::{CsrMatrix, QuantizedTensor, Result};
use advcomp_nn::{ParamKind, Sequential};
use advcomp_qformat::QFormat;
use advcomp_tensor::{QuantKind, QK};

/// Storage footprint of one model under the standard deployment encodings.
///
/// All figures cover **weight** tensors (biases are a negligible, always
/// full-precision fraction, matching the deployment pipelines the paper
/// cites).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// Total weight elements.
    pub elements: usize,
    /// Non-zero weight elements.
    pub nonzero: usize,
    /// Dense float32 bytes (`4 × elements`).
    pub dense_f32_bytes: usize,
    /// CSR bytes (f32 values + u32 indices + row pointers).
    pub csr_bytes: usize,
    /// Quantised storage bytes at the given format. For formats that fit
    /// the deployable block layout (≤ 8 bits) this is the **real** packed
    /// size — per-row 32-value blocks of codes plus a f32 scale each, the
    /// bytes a packed checkpoint actually stores — not the theoretical
    /// `bits × count / 8` lower bound. Wider formats keep the bit-packed
    /// estimate (they have no block representation).
    pub quantized_bytes: Option<usize>,
    /// Huffman-coded quantised stream bytes (payload, codebook excluded).
    pub huffman_bytes: Option<usize>,
    /// Shannon entropy of the quantised codes (bits/symbol).
    pub code_entropy_bits: Option<f64>,
}

impl SizeReport {
    /// Compression ratio of the best available encoding vs dense float32.
    pub fn best_ratio(&self) -> f64 {
        let best = [
            Some(self.csr_bytes),
            self.quantized_bytes,
            self.huffman_bytes,
        ]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(self.dense_f32_bytes);
        if best == 0 {
            return f64::INFINITY;
        }
        self.dense_f32_bytes as f64 / best as f64
    }
}

/// Computes deployment sizes for a model's weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelSize;

impl ModelSize {
    /// Measures `model`'s weight storage under every encoding.
    ///
    /// When `format` is given, the quantised and Huffman rows are computed
    /// by encoding every weight in that format (the model is expected to
    /// already hold quantised values, but encoding is lossy-safe either
    /// way).
    ///
    /// # Errors
    ///
    /// Propagates CSR construction errors (non-2-D weights are flattened to
    /// 2-D first, so this is effectively infallible for real models).
    pub fn measure(model: &Sequential, format: Option<QFormat>) -> Result<SizeReport> {
        let mut elements = 0usize;
        let mut nonzero = 0usize;
        let mut csr_bytes = 0usize;
        let mut all_codes: Vec<i32> = Vec::new();
        let mut quant_bits = 0usize;
        let mut block_bytes = 0usize;
        let block_kind = format.and_then(QuantKind::for_format);

        for p in model.params() {
            if p.kind != ParamKind::Weight {
                continue;
            }
            elements += p.value.len();
            nonzero += p.value.l0_norm();
            // CSR over a 2-D view: [rows, cols] with rows = first axis.
            let rows = p.value.shape().first().copied().unwrap_or(1).max(1);
            let cols = p.value.len() / rows;
            let two_d = p.value.reshape(&[rows, cols])?;
            csr_bytes += CsrMatrix::from_dense(&two_d)?.storage_bytes();
            if let Some(fmt) = format {
                let qt = QuantizedTensor::from_tensor(&p.value, fmt);
                quant_bits += qt.storage_bits();
                all_codes.extend_from_slice(qt.codes());
                if let Some(kind) = block_kind {
                    // Real packed layout: rows padded to whole 32-value
                    // blocks, each block carrying its f32 scale — exactly
                    // what `tensor::quant::QTensor` (and checkpoint v3)
                    // stores for this weight.
                    block_bytes += rows * cols.div_ceil(QK) * kind.block_bytes();
                }
            }
        }

        let quant_total = if block_kind.is_some() {
            block_bytes
        } else {
            quant_bits.div_ceil(8)
        };
        let (quantized_bytes, huffman_bytes, code_entropy_bits) = if format.is_some() {
            let entropy = entropy_bits(&all_codes);
            let huffman = if all_codes.is_empty() {
                0
            } else {
                let book = build_codebook(&all_codes)?;
                let total_bits: f64 = book.mean_bits(&all_codes) * all_codes.len() as f64;
                (total_bits / 8.0).ceil() as usize
            };
            (Some(quant_total), Some(huffman), Some(entropy))
        } else {
            (None, None, None)
        };

        Ok(SizeReport {
            elements,
            nonzero,
            dense_f32_bytes: elements * 4,
            csr_bytes,
            quantized_bytes,
            huffman_bytes,
            code_entropy_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{Dense, Sequential};
    use rand::SeedableRng;

    fn model() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        Sequential::new(vec![
            Box::new(Dense::with_name("a", 16, 8, &mut rng)),
            Box::new(Dense::with_name("b", 8, 4, &mut rng)),
        ])
    }

    #[test]
    fn dense_accounting() {
        let m = model();
        let report = ModelSize::measure(&m, None).unwrap();
        assert_eq!(report.elements, 16 * 8 + 8 * 4);
        assert_eq!(report.dense_f32_bytes, report.elements * 4);
        assert_eq!(report.nonzero, report.elements); // freshly initialised
        assert!(report.quantized_bytes.is_none());
        // Dense CSR is *larger* than raw floats (indices overhead).
        assert!(report.csr_bytes > report.dense_f32_bytes);
    }

    #[test]
    fn sparse_model_shrinks_csr() {
        let mut m = model();
        for p in m.params_mut() {
            if p.kind == ParamKind::Weight {
                for (i, v) in p.value.data_mut().iter_mut().enumerate() {
                    if i % 10 != 0 {
                        *v = 0.0; // 10% density
                    }
                }
            }
        }
        let report = ModelSize::measure(&m, None).unwrap();
        assert!(report.nonzero * 10 <= report.elements + 20);
        assert!(
            report.csr_bytes < report.dense_f32_bytes,
            "CSR {} vs dense {}",
            report.csr_bytes,
            report.dense_f32_bytes
        );
        assert!(report.best_ratio() > 1.0);
    }

    #[test]
    fn quantised_model_shrinks_further() {
        let mut m = model();
        let fmt = QFormat::for_bitwidth(4).unwrap();
        for p in m.params_mut() {
            if p.kind == ParamKind::Weight {
                fmt.quantize_slice(p.value.data_mut());
            }
        }
        let report = ModelSize::measure(&m, Some(fmt)).unwrap();
        let q = report.quantized_bytes.unwrap();
        // Real Q4_0 block layout: [8,16] → 8 rows × 1 block × 20 B, plus
        // [4,8] → 4 rows × 1 block × 20 B. The old theoretical estimate
        // (elements/2 = 80 B) ignored block padding and scales.
        assert_eq!(q, (8 + 4) * QuantKind::Q4.block_bytes());
        let h = report.huffman_bytes.unwrap();
        assert!(h <= q + 8, "huffman {h} vs quantised {q}");
        assert!(report.code_entropy_bits.unwrap() <= 4.0);
        assert!(report.best_ratio() > 2.0);
        // Still a real shrink vs dense f32 despite scale overhead.
        assert!(q * 2 < report.dense_f32_bytes);
    }

    #[test]
    fn wide_formats_keep_bit_packed_estimate() {
        let m = model();
        let fmt = QFormat::for_bitwidth(16).unwrap();
        let report = ModelSize::measure(&m, Some(fmt)).unwrap();
        // No block layout at 16 bits: theoretical bits × count / 8.
        assert_eq!(report.quantized_bytes.unwrap(), report.elements * 2);
    }

    /// The report's quantised row must equal the bytes a frozen model's
    /// packed weights (and hence a v3 checkpoint) actually occupy.
    #[test]
    fn packed_accounting_matches_frozen_model_exactly() {
        for bits in [4u32, 8] {
            let fmt = QFormat::for_bitwidth(bits).unwrap();
            let report = ModelSize::measure(&model(), Some(fmt)).unwrap();
            let mut frozen = model();
            frozen.freeze_quantized(fmt, fmt).unwrap();
            let real: usize = frozen
                .export_quantized()
                .iter()
                .map(|(_, qw)| qw.packed_bytes())
                .sum();
            assert_eq!(
                report.quantized_bytes.unwrap(),
                real,
                "{bits}-bit report vs frozen packed bytes"
            );
        }
    }
}
