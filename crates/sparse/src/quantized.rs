//! Fixed-point code storage: what a quantised model actually ships.

use crate::{Result, SparseError};
use advcomp_qformat::QFormat;
use advcomp_tensor::Tensor;

/// A tensor stored as raw fixed-point codes plus its format — the
/// deployment representation of a quantised weight tensor, where each value
/// occupies `format.total_bits()` bits instead of 32.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    format: QFormat,
    shape: Vec<usize>,
    codes: Vec<i32>,
}

impl QuantizedTensor {
    /// Quantises a float tensor into code storage.
    pub fn from_tensor(tensor: &Tensor, format: QFormat) -> Self {
        let codes = tensor
            .data()
            .iter()
            .map(|&v| format.encode(v) as i32)
            .collect();
        QuantizedTensor {
            format,
            shape: tensor.shape().to_vec(),
            codes,
        }
    }

    /// Decodes back to floats (exact for values that were representable).
    pub fn to_tensor(&self) -> Result<Tensor> {
        let data = self
            .codes
            .iter()
            .map(|&c| self.format.decode(c as i64))
            .collect();
        Ok(Tensor::new(&self.shape, data)?)
    }

    /// The fixed-point format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The logical tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The raw codes (two's-complement, sign-extended into `i32`).
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Idealised storage in bits: `len × total_bits` (packed, no padding).
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * self.format.total_bits() as usize
    }

    /// Idealised storage in bytes, rounded up.
    pub fn storage_bytes(&self) -> usize {
        self.storage_bits().div_ceil(8)
    }

    /// Packs the codes into a contiguous little-endian bitstream — the
    /// actual wire format. Together with [`QuantizedTensor::unpack`] this
    /// proves the `storage_bits` accounting is achievable, not aspirational.
    pub fn pack(&self) -> Vec<u8> {
        let bits = self.format.total_bits() as usize;
        let mut out = vec![0u8; self.storage_bits().div_ceil(8)];
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        for (i, &code) in self.codes.iter().enumerate() {
            let word = (code as u32) & mask;
            let bit0 = i * bits;
            for b in 0..bits {
                if word & (1 << b) != 0 {
                    out[(bit0 + b) / 8] |= 1 << ((bit0 + b) % 8);
                }
            }
        }
        out
    }

    /// Reconstructs a quantised tensor from a packed bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Corrupt`] when the stream is too short for
    /// `shape` at `format`'s width.
    pub fn unpack(bytes: &[u8], shape: &[usize], format: QFormat) -> Result<Self> {
        let n: usize = shape.iter().product();
        let bits = format.total_bits() as usize;
        if bytes.len() * 8 < n * bits {
            return Err(SparseError::Corrupt(format!(
                "stream has {} bits, need {}",
                bytes.len() * 8,
                n * bits
            )));
        }
        let mut codes = Vec::with_capacity(n);
        for i in 0..n {
            let bit0 = i * bits;
            let mut word = 0u32;
            for b in 0..bits {
                if bytes[(bit0 + b) / 8] & (1 << ((bit0 + b) % 8)) != 0 {
                    word |= 1 << b;
                }
            }
            // Sign-extend from `bits` to 32.
            let shift = 32 - bits;
            codes.push(((word << shift) as i32) >> shift);
        }
        Ok(QuantizedTensor {
            format,
            shape: shape.to_vec(),
            codes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::for_bitwidth(4).unwrap() // Q1.3
    }

    #[test]
    fn roundtrip_through_codes() {
        let t = Tensor::new(&[2, 2], vec![0.25, -1.0, 0.875, 0.0]).unwrap();
        let qt = QuantizedTensor::from_tensor(&t, q());
        assert_eq!(qt.to_tensor().unwrap().data(), t.data());
        assert_eq!(qt.len(), 4);
        assert_eq!(qt.shape(), &[2, 2]);
    }

    #[test]
    fn storage_bits_accounting() {
        let t = Tensor::zeros(&[10]);
        let qt = QuantizedTensor::from_tensor(&t, q());
        assert_eq!(qt.storage_bits(), 40);
        assert_eq!(qt.storage_bytes(), 5);
        let q8 = QuantizedTensor::from_tensor(&t, QFormat::for_bitwidth(8).unwrap());
        assert_eq!(q8.storage_bytes(), 10);
    }

    #[test]
    fn pack_unpack_bit_exact() {
        let t = Tensor::new(&[7], vec![0.25, -1.0, 0.875, 0.0, -0.125, 0.5, -0.625]).unwrap();
        let qt = QuantizedTensor::from_tensor(&t, q());
        let packed = qt.pack();
        assert_eq!(packed.len(), qt.storage_bytes());
        let back = QuantizedTensor::unpack(&packed, &[7], q()).unwrap();
        assert_eq!(back, qt);
        assert_eq!(back.to_tensor().unwrap().data(), t.data());
    }

    #[test]
    fn pack_unpack_wide_format() {
        let fmt = QFormat::for_bitwidth(16).unwrap();
        let t = Tensor::new(&[3], vec![std::f32::consts::PI, -7.5, 0.0001]).unwrap();
        let qt = QuantizedTensor::from_tensor(&t, fmt);
        let back = QuantizedTensor::unpack(&qt.pack(), &[3], fmt).unwrap();
        assert_eq!(back.codes(), qt.codes());
    }

    #[test]
    fn unpack_validates_length() {
        assert!(QuantizedTensor::unpack(&[0u8], &[100], q()).is_err());
    }

    #[test]
    fn negative_codes_sign_extend() {
        let t = Tensor::new(&[1], vec![-1.0]).unwrap();
        let qt = QuantizedTensor::from_tensor(&t, q());
        assert_eq!(qt.codes()[0], -8); // Q1.3 min raw
        let back = QuantizedTensor::unpack(&qt.pack(), &[1], q()).unwrap();
        assert_eq!(back.codes()[0], -8);
    }
}
