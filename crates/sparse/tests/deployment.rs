//! Deployment-pipeline integration: compress a trained model, ship it
//! through the sparse/quantised/Huffman encodings, and verify the deployed
//! artefact computes the same function.

use advcomp_compress::{train_baseline, DnsPruner, Quantizer, TrainConfig};
use advcomp_data::{DatasetConfig, SynthDigits};
use advcomp_nn::{Dense, FakeQuant, Flatten, Mode, ParamKind, Relu, Sequential, StepDecay};
use advcomp_qformat::QFormat;
use advcomp_sparse::{huffman, CsrMatrix, ModelSize, QuantizedTensor};
use rand::SeedableRng;

fn mlp(seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc1", 28 * 28, 24, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc2", 24, 10, &mut rng)),
    ])
}

fn cfg(epochs: usize, lr: f32) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        schedule: StepDecay::new(lr, 0.1, vec![epochs.max(2) - 1]),
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 0,
    }
}

#[test]
fn pruned_model_sparse_inference_is_equivalent() {
    let (train, test) = SynthDigits::generate(&DatasetConfig {
        train: 250,
        test: 60,
        seed: 3,
        noise: 0.05,
    });
    let mut model = mlp(1);
    train_baseline(&mut model, &train, &cfg(6, 0.05)).unwrap();
    DnsPruner::new(0.2)
        .prune_and_finetune(&mut model, &train, &cfg(2, 0.01))
        .unwrap();

    // Ship each dense layer as CSR and run the forward pass manually.
    let w1 = CsrMatrix::from_dense(&model.param("fc1.weight").unwrap().value).unwrap();
    let b1 = model.param("fc1.bias").unwrap().value.clone();
    let w2 = CsrMatrix::from_dense(&model.param("fc2.weight").unwrap().value).unwrap();
    let b2 = model.param("fc2.bias").unwrap().value.clone();
    assert!(w1.density() < 0.3);

    let (x, _) = test.slice(0, 16).unwrap();
    let flat = x.reshape(&[16, 28 * 28]).unwrap();
    let h = w1
        .matmul_batch(&flat)
        .unwrap()
        .add_row_broadcast(&b1)
        .unwrap()
        .map(|v| v.max(0.0));
    let sparse_logits = w2.matmul_batch(&h).unwrap().add_row_broadcast(&b2).unwrap();

    let dense_logits = model.forward(&x, Mode::Eval).unwrap();
    assert!(
        sparse_logits.allclose(&dense_logits, 1e-4),
        "sparse deployment diverged from the dense reference"
    );
}

#[test]
fn quantised_model_ships_bit_exact() {
    let (train, _) = SynthDigits::generate(&DatasetConfig {
        train: 250,
        test: 60,
        seed: 4,
        noise: 0.05,
    });
    let mut model = mlp(2);
    train_baseline(&mut model, &train, &cfg(4, 0.05)).unwrap();
    let fmt = QFormat::for_bitwidth(8).unwrap();
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_and_finetune(&mut model, &train, &cfg(2, 0.005))
        .unwrap();

    for p in model.params() {
        if p.kind != ParamKind::Weight {
            continue;
        }
        // Pack to the wire format and back: bit-exact.
        let qt = QuantizedTensor::from_tensor(&p.value, fmt);
        let unpacked = QuantizedTensor::unpack(&qt.pack(), p.value.shape(), fmt).unwrap();
        assert_eq!(unpacked.to_tensor().unwrap().data(), p.value.data());
        // Huffman stage: lossless over the same codes.
        let book = huffman::build_codebook(qt.codes()).unwrap();
        let enc = huffman::encode(qt.codes(), &book).unwrap();
        let dec = huffman::decode(&enc, &book).unwrap();
        assert_eq!(dec, qt.codes());
    }
}

#[test]
fn compression_ratios_match_deep_compression_story() {
    // Prune to 10% + quantise to 8 bits: the EIE-style pipeline should
    // comfortably beat 4x vs dense float32 even before Huffman, and Huffman
    // should compress further thanks to the zero-heavy code distribution.
    let (train, test) = SynthDigits::generate(&DatasetConfig {
        train: 250,
        test: 60,
        seed: 5,
        noise: 0.05,
    });
    let mut model = mlp(3);
    train_baseline(&mut model, &train, &cfg(6, 0.05)).unwrap();
    DnsPruner::new(0.1)
        .prune_and_finetune(&mut model, &train, &cfg(2, 0.01))
        .unwrap();
    // Post-training quantisation preserves the pruned zeros (0 is always
    // representable), keeping the code stream zero-heavy for Huffman.
    let fmt = QFormat::for_bitwidth(8).unwrap();
    Quantizer::for_bitwidth(8).unwrap().quantize(&mut model);

    let report = ModelSize::measure(&model, Some(fmt)).unwrap();
    assert_eq!(report.dense_f32_bytes, report.elements * 4);
    let q = report.quantized_bytes.unwrap();
    // Real packed Q8_0 layout: fc1 [24,784] → 24 rows × ceil(784/32)
    // blocks, fc2 [10,24] → 10 rows × 1 block, 36 B per block.
    let blocks = 24 * 784usize.div_ceil(advcomp_tensor::QK) + 10;
    assert_eq!(q, blocks * advcomp_tensor::QuantKind::Q8.block_bytes());
    let h = report.huffman_bytes.unwrap();
    assert!(
        h < q,
        "Huffman ({h}) should beat fixed-width ({q}) on a sparse model"
    );
    assert!(
        report.best_ratio() > 4.0,
        "deployment ratio only {:.2}x",
        report.best_ratio()
    );
    // The deployed model still classifies far above chance (10% density +
    // post-training quantisation on a small MLP is aggressive; the point of
    // this test is the storage accounting, not peak accuracy).
    let acc = advcomp_compress::evaluate(&mut model, &test, 64).unwrap();
    assert!(acc > 0.3, "deployed model accuracy {acc}");
}
