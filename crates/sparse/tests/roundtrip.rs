//! Codec round-trip conformance over randomized pruned tensors.
//!
//! The deployment story of the paper is: prune → quantise → entropy-code.
//! Every stage must be *losslessly invertible* on its own domain, or the
//! "compressed model ships the same function" claim in `deployment.rs`
//! silently degrades. These tests drive each codec with `DetRng`-generated
//! tensors across a sweep of shapes and densities and demand exact
//! (bit-level) recovery:
//!
//! - CSR sparse storage: `from_dense → to_dense` is the identity on any
//!   dense matrix (including all-zero and fully-dense edge cases).
//! - Huffman coding: `encode → decode` recovers the quantised code stream
//!   exactly, and never worse than ~1 bit/symbol above the entropy bound.
//! - Quantised packing: `pack → unpack` recovers codes and dequantised
//!   values bit-for-bit at every supported bitwidth.

use advcomp_qformat::QFormat;
use advcomp_sparse::huffman::{build_codebook, decode, encode, entropy_bits};
use advcomp_sparse::{CsrMatrix, QuantizedTensor};
use advcomp_tensor::Tensor;
use advcomp_testkit::DetRng;

/// A pruned-looking dense matrix: uniform values with `zero_prob` of the
/// entries masked to exactly 0.0, like a magnitude-pruned weight tensor.
fn pruned_tensor(rng: &mut DetRng, rows: usize, cols: usize, zero_prob: f32) -> Tensor {
    let data = rng.sparse_vec_f32(rows * cols, -1.0, 1.0, zero_prob);
    Tensor::new(&[rows, cols], data).unwrap()
}

#[test]
fn csr_round_trip_is_exact_across_shapes_and_densities() {
    let mut rng = DetRng::new(0x5EED_C5C5);
    for case in 0..40 {
        let rows = rng.range_usize(1, 33);
        let cols = rng.range_usize(1, 33);
        // Sweep density from fully dense to ~98% pruned.
        let zero_prob = (case % 8) as f32 / 8.0 * 0.98;
        let dense = pruned_tensor(&mut rng, rows, cols, zero_prob);

        let csr = CsrMatrix::from_dense(&dense).unwrap();
        let back = csr.to_dense();

        assert_eq!(back.shape(), dense.shape(), "case {case}: shape drift");
        for (i, (&a, &b)) in dense.data().iter().zip(back.data().iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "case {case}: element {i} not bit-exact ({a} vs {b})"
            );
        }
        // Structural sanity: nnz matches the dense count of non-zeros.
        let expected_nnz = dense.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(csr.nnz(), expected_nnz, "case {case}: nnz mismatch");
    }
}

#[test]
fn csr_round_trip_degenerate_matrices() {
    // All-zero: no stored values at all.
    let zero = Tensor::zeros(&[5, 7]);
    let csr = CsrMatrix::from_dense(&zero).unwrap();
    assert_eq!(csr.nnz(), 0);
    assert_eq!(csr.to_dense().data(), zero.data());

    // Fully dense 1x1 and single-row/column shapes.
    for shape in [[1usize, 1], [1, 16], [16, 1]] {
        let mut rng = DetRng::new(shape[0] as u64 * 31 + shape[1] as u64);
        let t = pruned_tensor(&mut rng, shape[0], shape[1], 0.0);
        let back = CsrMatrix::from_dense(&t).unwrap().to_dense();
        assert_eq!(back.data(), t.data());
    }
}

#[test]
fn huffman_round_trip_recovers_quantised_codes_exactly() {
    let mut rng = DetRng::new(0x4F75_FFAA);
    for case in 0..30 {
        let n = rng.range_usize(2, 600);
        let zero_prob = 0.3 + 0.6 * (case % 5) as f32 / 5.0;
        let values = rng.sparse_vec_f32(n, -1.0, 1.0, zero_prob);
        let t = Tensor::new(&[n], values).unwrap();

        // Quantise first: Huffman in the pipeline always runs on the
        // integer code stream, where pruning makes code 0 dominant.
        let q = QuantizedTensor::from_tensor(&t, QFormat::new(2, 6).unwrap());
        let codes = q.codes();

        let book = build_codebook(codes).unwrap();
        let enc = encode(codes, &book).unwrap();
        let dec = decode(&enc, &book).unwrap();
        assert_eq!(dec, codes, "case {case}: Huffman round trip not exact");

        // Compression quality: mean code length within 1 bit of entropy
        // (the classical Huffman optimality bound).
        let h = entropy_bits(codes);
        let mean = book.mean_bits(codes);
        assert!(
            mean <= h + 1.0 + 1e-9,
            "case {case}: mean bits {mean} exceeds entropy {h} + 1"
        );
    }
}

#[test]
fn huffman_single_symbol_stream() {
    // A fully-pruned tensor quantises to a single repeated code; the
    // codebook degenerates but the round trip must still be exact.
    let codes = vec![0i32; 257];
    let book = build_codebook(&codes).unwrap();
    let enc = encode(&codes, &book).unwrap();
    assert_eq!(decode(&enc, &book).unwrap(), codes);
}

#[test]
fn quantized_pack_unpack_round_trip_all_bitwidths() {
    let mut rng = DetRng::new(0xBA5E_BA11);
    for bits in 2..=16u32 {
        let fmt = QFormat::new(1, bits - 1).unwrap();
        let n = rng.range_usize(1, 200);
        let values = rng.sparse_vec_f32(n, -1.0, 1.0, 0.5);
        let t = Tensor::new(&[n], values).unwrap();

        let q = QuantizedTensor::from_tensor(&t, fmt);
        let packed = q.pack();
        let back = QuantizedTensor::unpack(&packed, q.shape(), fmt).unwrap();

        assert_eq!(back.codes(), q.codes(), "bits={bits}: code drift");
        let a = q.to_tensor().unwrap();
        let b = back.to_tensor().unwrap();
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "bits={bits}: value drift");
        }
        // Packed size matches the claimed storage accounting.
        assert_eq!(packed.len(), q.storage_bytes(), "bits={bits}");
    }
}

#[test]
fn full_prune_quantise_encode_pipeline_is_lossless_past_quantisation() {
    // End-to-end: pruned tensor → quantise → pack → Huffman → decode →
    // unpack → dense. Everything downstream of quantisation is exact, so
    // the recovered tensor must equal the *quantised* original bit-for-bit.
    let mut rng = DetRng::new(0xF1DE_117E);
    let fmt = QFormat::new(2, 6).unwrap();
    let dense = pruned_tensor(&mut rng, 24, 18, 0.7);

    let q = QuantizedTensor::from_tensor(&dense, fmt);
    let book = build_codebook(q.codes()).unwrap();
    let enc = encode(q.codes(), &book).unwrap();
    let codes_back = decode(&enc, &book).unwrap();
    assert_eq!(codes_back, q.codes());

    let reference = q.to_tensor().unwrap();
    let packed = q.pack();
    let restored = QuantizedTensor::unpack(&packed, q.shape(), fmt)
        .unwrap()
        .to_tensor()
        .unwrap();
    for (a, b) in reference.data().iter().zip(restored.data().iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // The pruned zeros survive quantisation as exact zeros, so CSR on the
    // restored tensor keeps the sparsity structure.
    let csr = CsrMatrix::from_dense(&Tensor::new(&[24, 18], restored.data().to_vec()).unwrap());
    let csr = csr.unwrap();
    let dense_nnz = dense.data().iter().filter(|&&v| v != 0.0).count();
    assert!(
        csr.nnz() <= dense_nnz,
        "quantisation must not create nonzeros from zeros"
    );
}
