//! Shared packed-weight handles for frozen quantised inference.

use advcomp_qformat::QFormat;
use advcomp_tensor::QTensor;
use std::sync::Arc;

/// A layer's weights in packed block-quantised form, plus the activation
/// format its integer GEMM quantises inputs with.
///
/// The packed tensor sits behind an [`Arc`]: serving replicas created via
/// [`crate::Layer::clone_layer`] share one copy of the blocks instead of
/// duplicating full f32 weights per worker — packed weights are immutable
/// (frozen layers reject `backward`), so sharing is safe.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    tensor: Arc<QTensor>,
    act_format: QFormat,
}

impl QuantizedWeights {
    /// Wraps a freshly packed tensor.
    pub fn new(tensor: QTensor, act_format: QFormat) -> Self {
        QuantizedWeights {
            tensor: Arc::new(tensor),
            act_format,
        }
    }

    /// The packed weight blocks.
    pub fn tensor(&self) -> &QTensor {
        &self.tensor
    }

    /// The fixed-point format activations are quantised with on entry to
    /// the integer GEMM.
    pub fn act_format(&self) -> QFormat {
        self.act_format
    }

    /// Real packed size in bytes (codes + block scales).
    pub fn packed_bytes(&self) -> usize {
        self.tensor.packed_bytes()
    }

    /// How many handles share the packed blocks (1 = unshared).
    pub fn shared_count(&self) -> usize {
        Arc::strong_count(&self.tensor)
    }
}

impl PartialEq for QuantizedWeights {
    /// Content equality: same packed blocks and activation format,
    /// regardless of which `Arc` allocation holds them.
    fn eq(&self, other: &Self) -> bool {
        self.act_format == other.act_format && *self.tensor == *other.tensor
    }
}
