//! Thread-local numerical-health event sink.
//!
//! Guards scattered through the stack — the attack iteration loops in
//! `advcomp-attacks`, the training rollback logic in `advcomp-core` — need
//! to report "something numerically bad happened and here is how I
//! recovered" without every function signature in between growing a
//! metadata channel. Each sweep job runs wholly on one worker thread, so a
//! thread-local event log works: guards [`record`] events as they fire, and
//! the job harness wraps the whole pipeline in [`scope`] to collect
//! everything that happened into the point's result metadata.
//!
//! Events are *recoveries*, not errors: a guard that records an event has
//! already degraded gracefully (kept the last good attack iterate, rolled
//! the model back an epoch). Hard failures still travel as `Err`.

use std::cell::RefCell;

/// One recovered numerical incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    /// Which guard fired (e.g. `ifgsm`, `train`).
    pub site: String,
    /// What happened and how it was handled.
    pub detail: String,
}

impl HealthEvent {
    /// Renders as `site: detail` for logs and result metadata.
    pub fn describe(&self) -> String {
        format!("{}: {}", self.site, self.detail)
    }
}

thread_local! {
    static EVENTS: RefCell<Vec<HealthEvent>> = const { RefCell::new(Vec::new()) };
}

/// Records a recovered incident on the current thread's log.
pub fn record(site: &str, detail: impl Into<String>) {
    EVENTS.with(|e| {
        e.borrow_mut().push(HealthEvent {
            site: site.into(),
            detail: detail.into(),
        })
    });
}

/// Takes (and clears) every event recorded on the current thread.
pub fn drain() -> Vec<HealthEvent> {
    EVENTS.with(|e| e.borrow_mut().split_off(0))
}

/// Runs `f` with a clean event log and returns its result together with
/// the events it recorded. Events recorded before the scope are preserved
/// and restored afterwards, so nested scopes compose.
pub fn scope<T>(f: impl FnOnce() -> T) -> (T, Vec<HealthEvent>) {
    let outer = drain();
    let result = f();
    let inner = drain();
    EVENTS.with(|e| *e.borrow_mut() = outer);
    (result, inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain() {
        assert!(drain().is_empty());
        record("a", "first");
        record("b", "second");
        let events = drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].describe(), "a: first");
        assert!(drain().is_empty());
    }

    #[test]
    fn scope_isolates_and_restores() {
        record("outer", "kept");
        let ((), inner) = scope(|| record("inner", "captured"));
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].site, "inner");
        let outer = drain();
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].site, "outer");
    }

    #[test]
    fn threads_have_independent_logs() {
        record("main", "here");
        let from_thread = std::thread::spawn(|| {
            record("worker", "there");
            drain()
        })
        .join()
        .unwrap();
        assert_eq!(from_thread.len(), 1);
        assert_eq!(from_thread[0].site, "worker");
        assert_eq!(drain().len(), 1);
    }
}
