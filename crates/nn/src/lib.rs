//! Layer-based neural-network framework with reverse-mode differentiation.
//!
//! This crate replaces the TensorFlow/Mayo training stack the paper used.
//! Networks are [`Sequential`] chains of [`Layer`]s; each layer implements
//! `forward` (caching what it needs) and `backward` (consuming an output
//! gradient, accumulating parameter gradients, and returning the **input
//! gradient**). Input gradients are first-class because every attack in the
//! paper — FGM, FGSM, their iterative variants and DeepFool — differentiates
//! the network with respect to its *input*, not its weights.
//!
//! Provided layers: [`Dense`], [`Conv2d`], [`Relu`], [`Tanh`], [`Sigmoid`],
//! [`MaxPool2d`], [`AvgPool2d`], [`Flatten`], [`Dropout`], and [`FakeQuant`]
//! (fixed-point activation quantisation with a straight-through estimator,
//! the mechanism behind the paper's "quantising both weights and
//! activations").
//!
//! Training utilities: [`softmax_cross_entropy`] loss, [`Sgd`] with momentum
//! and weight decay, and [`StepDecay`] mirroring the paper's learning-rate
//! schedule (start 0.01, three 10× decays).
//!
//! # Example
//!
//! ```
//! use advcomp_nn::{Dense, Relu, Sequential, Mode};
//! use advcomp_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), advcomp_nn::NnError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::zeros(&[3, 4]);
//! let logits = net.forward(&x, Mode::Eval)?;
//! assert_eq!(logits.shape(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

mod adam;
mod error;
pub mod faults;
mod gradcheck;
pub mod health;
mod layer;
mod layers;
mod loss;
mod metrics;
mod optim;
mod param;
mod qweights;
mod sequential;

pub use adam::Adam;
pub use error::NnError;
pub use gradcheck::{
    finite_diff_input_grad, finite_diff_input_grad_with_mode, finite_diff_param_grad,
    finite_diff_param_grad_with_mode,
};
pub use layer::{Layer, LayerSpec, Mode, WeightRepr};
pub use layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Dense, Dropout, FakeQuant, Flatten, MaxPool2d, Relu, Sigmoid,
    Tanh,
};
pub use loss::{accuracy, softmax, softmax_cross_entropy, LossOutput};
pub use metrics::ConfusionMatrix;
pub use optim::{LrSchedule, Sgd, StepDecay};
pub use param::{Param, ParamKind};
pub use qweights::QuantizedWeights;
pub use sequential::Sequential;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
