//! The Adam optimiser.

use crate::param::Param;
use crate::{NnError, Result};
use advcomp_tensor::Tensor;
use std::collections::HashMap;

/// Adam (Kingma & Ba 2015) with decoupled-style L2 on weights.
///
/// The paper's training recipe is SGD+momentum ([`crate::Sgd`]); Adam is
/// provided for the substrate's completeness and for experiments where the
/// short CPU-scale schedules benefit from adaptive step sizes.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: HashMap<String, Tensor>,
    v: HashMap<String, Tensor>,
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a non-positive learning rate
    /// or negative weight decay.
    pub fn new(lr: f32, weight_decay: f32) -> Result<Self> {
        if !(lr > 0.0 && lr.is_finite()) {
            return Err(NnError::InvalidConfig(format!(
                "learning rate {lr} must be positive"
            )));
        }
        if weight_decay < 0.0 {
            return Err(NnError::InvalidConfig(format!(
                "weight decay {weight_decay} must be >= 0"
            )));
        }
        Ok(Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            step_count: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        })
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update from the accumulated gradients.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for interface symmetry with
    /// [`crate::Sgd::step`].
    pub fn step(&mut self, params: Vec<&mut Param>) -> Result<()> {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for p in params {
            let decay = match p.kind {
                crate::param::ParamKind::Weight => self.weight_decay,
                crate::param::ParamKind::Bias => 0.0,
            };
            let m = self
                .m
                .entry(p.name.clone())
                .or_insert_with(|| Tensor::zeros(p.value.shape()));
            let v = self
                .v
                .entry(p.name.clone())
                .or_insert_with(|| Tensor::zeros(p.value.shape()));
            let md = m.data_mut();
            let vd = v.data_mut();
            let wd = p.value.data_mut();
            let gd = p.grad.data();
            for i in 0..wd.len() {
                let g = gd[i] + decay * wd[i];
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * g;
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * g * g;
                let m_hat = md[i] / bc1;
                let v_hat = vd[i] / bc2;
                wd[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    /// Clears moment estimates and the step counter.
    pub fn reset_state(&mut self) {
        self.m.clear();
        self.v.clear();
        self.step_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    fn param(vals: Vec<f32>, grads: Vec<f32>) -> Param {
        let mut p = Param::new("w", Tensor::from_vec(vals), ParamKind::Weight);
        p.grad = Tensor::from_vec(grads);
        p
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        for g in [0.001f32, 1.0, 1000.0] {
            let mut opt = Adam::new(0.1, 0.0).unwrap();
            let mut p = param(vec![0.0], vec![g]);
            opt.step(vec![&mut p]).unwrap();
            assert!(
                (p.value.data()[0].abs() - 0.1).abs() < 1e-3,
                "grad {g}: step {}",
                p.value.data()[0]
            );
        }
    }

    #[test]
    fn descends_a_quadratic() {
        // Minimise f(w) = (w - 3)^2 by feeding grad = 2(w-3).
        let mut opt = Adam::new(0.1, 0.0).unwrap();
        let mut p = param(vec![0.0], vec![0.0]);
        for _ in 0..200 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            opt.step(vec![&mut p]).unwrap();
        }
        assert!(
            (p.value.data()[0] - 3.0).abs() < 0.05,
            "{}",
            p.value.data()[0]
        );
    }

    #[test]
    fn validation_and_reset() {
        assert!(Adam::new(0.0, 0.0).is_err());
        assert!(Adam::new(0.1, -1.0).is_err());
        let mut opt = Adam::new(0.1, 0.0).unwrap();
        let mut p = param(vec![0.0], vec![1.0]);
        opt.step(vec![&mut p]).unwrap();
        opt.reset_state();
        assert_eq!(opt.step_count, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    fn trains_a_network_faster_than_untuned_sgd_start() {
        use crate::{softmax_cross_entropy, Dense, Mode, Relu, Sequential};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(4, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 2, &mut rng)),
        ]);
        let x = advcomp_tensor::Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[32, 4], &mut rng);
        let labels: Vec<usize> = x
            .data()
            .chunks(4)
            .map(|r| usize::from(r[0] > r[1]))
            .collect();
        let mut opt = Adam::new(0.01, 0.0).unwrap();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            let logits = net.forward(&x, Mode::Train).unwrap();
            let loss = softmax_cross_entropy(&logits, &labels).unwrap();
            first.get_or_insert(loss.loss);
            last = loss.loss;
            net.zero_grad();
            net.backward(&loss.grad).unwrap();
            opt.step(net.params_mut()).unwrap();
        }
        assert!(last < first.unwrap() * 0.5, "{} -> {last}", first.unwrap());
    }
}
