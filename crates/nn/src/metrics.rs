//! Classification metrics beyond plain accuracy.

use crate::{NnError, Result};
use advcomp_tensor::Tensor;

/// A confusion matrix over `k` classes: `counts[true][predicted]`.
///
/// The transfer experiments report scalar accuracy; the confusion matrix is
/// the drill-down view (which classes an attack pushes samples *into* —
/// untargeted attacks typically concentrate on a few sink classes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `classes == 0`.
    pub fn new(classes: usize) -> Result<Self> {
        if classes == 0 {
            return Err(NnError::InvalidConfig("classes must be >= 1".into()));
        }
        Ok(ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        })
    }

    /// Builds a matrix from logits and labels.
    ///
    /// # Errors
    ///
    /// Returns batch/label errors mirroring [`crate::accuracy`].
    pub fn from_logits(logits: &Tensor, labels: &[usize], classes: usize) -> Result<Self> {
        let mut cm = Self::new(classes)?;
        let preds = logits.argmax_rows()?;
        if preds.len() != labels.len() {
            return Err(NnError::BatchMismatch {
                logits: preds.len(),
                labels: labels.len(),
            });
        }
        for (&t, &p) in labels.iter().zip(&preds) {
            cm.record(t, p)?;
        }
        Ok(cm)
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelOutOfRange`] for out-of-range classes.
    pub fn record(&mut self, true_class: usize, predicted: usize) -> Result<()> {
        if true_class >= self.classes {
            return Err(NnError::LabelOutOfRange {
                label: true_class,
                classes: self.classes,
            });
        }
        if predicted >= self.classes {
            return Err(NnError::LabelOutOfRange {
                label: predicted,
                classes: self.classes,
            });
        }
        self.counts[true_class * self.classes + predicted] += 1;
        Ok(())
    }

    /// Count of samples with `true_class` predicted as `predicted`.
    pub fn count(&self, true_class: usize, predicted: usize) -> u64 {
        self.counts[true_class * self.classes + predicted]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`None` when a class has no samples).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Per-class precision (`None` when nothing was predicted as `class`).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }

    /// The class most often predicted for *misclassified* samples — the
    /// "sink" an untargeted attack funnels inputs into (`None` if nothing
    /// was misclassified).
    pub fn dominant_error_sink(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for p in 0..self.classes {
            let wrong: u64 = (0..self.classes)
                .filter(|&t| t != p)
                .map(|t| self.count(t, p))
                .sum();
            if wrong > 0 && best.is_none_or(|(w, _)| wrong > w) {
                best = Some((wrong, p));
            }
        }
        best.map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(1, 2).unwrap();
        cm.record(2, 2).unwrap();
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.count(1, 2), 1);
    }

    #[test]
    fn recall_and_precision() {
        let mut cm = ConfusionMatrix::new(2).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(0, 1).unwrap();
        cm.record(1, 1).unwrap();
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.precision(1), Some(0.5));
        let empty = ConfusionMatrix::new(2).unwrap();
        assert_eq!(empty.recall(0), None);
        assert_eq!(empty.precision(0), None);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn from_logits_matches_manual() {
        let logits = Tensor::new(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let cm = ConfusionMatrix::from_logits(&logits, &[0, 1, 1], 2).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_sink_detection() {
        let mut cm = ConfusionMatrix::new(3).unwrap();
        cm.record(0, 2).unwrap();
        cm.record(1, 2).unwrap();
        cm.record(2, 2).unwrap(); // correct, not an error
        cm.record(0, 1).unwrap();
        assert_eq!(cm.dominant_error_sink(), Some(2));
        let clean = ConfusionMatrix::new(2).unwrap();
        assert_eq!(clean.dominant_error_sink(), None);
    }

    #[test]
    fn validation() {
        assert!(ConfusionMatrix::new(0).is_err());
        let mut cm = ConfusionMatrix::new(2).unwrap();
        assert!(cm.record(2, 0).is_err());
        assert!(cm.record(0, 5).is_err());
        let logits = Tensor::zeros(&[2, 2]);
        assert!(ConfusionMatrix::from_logits(&logits, &[0], 2).is_err());
    }
}
