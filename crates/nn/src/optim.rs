//! Optimisers and learning-rate schedules.

use crate::param::Param;
use crate::{NnError, Result};
use advcomp_tensor::Tensor;
use std::collections::HashMap;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
///
/// Velocity buffers are keyed by parameter name, so the same optimiser
/// instance can be reused across fine-tuning phases (the paper fine-tunes
/// after every pruning/quantisation step).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for non-positive learning rate or
    /// out-of-range momentum/decay.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Result<Self> {
        if !(lr > 0.0 && lr.is_finite()) {
            return Err(NnError::InvalidConfig(format!(
                "learning rate {lr} must be positive"
            )));
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidConfig(format!(
                "momentum {momentum} must be in [0,1)"
            )));
        }
        if weight_decay < 0.0 {
            return Err(NnError::InvalidConfig(format!(
                "weight decay {weight_decay} must be >= 0"
            )));
        }
        Ok(Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        })
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (called by schedules between epochs).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every parameter from its accumulated gradient.
    ///
    /// `v ← μv + (g + λw)`, `w ← w − ηv`. Weight decay is not applied to
    /// biases, following the training setup the paper inherits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (which indicate parameter aliasing bugs).
    pub fn step(&mut self, params: Vec<&mut Param>) -> Result<()> {
        for p in params {
            let decay = match p.kind {
                crate::param::ParamKind::Weight => self.weight_decay,
                crate::param::ParamKind::Bias => 0.0,
            };
            let v = self
                .velocity
                .entry(p.name.clone())
                .or_insert_with(|| Tensor::zeros(p.value.shape()));
            if v.shape() != p.value.shape() {
                // Parameter was reshaped since last seen; reset state.
                *v = Tensor::zeros(p.value.shape());
            }
            let vd = v.data_mut();
            let wd = p.value.data_mut();
            let gd = p.grad.data();
            for i in 0..wd.len() {
                let g = gd[i] + decay * wd[i];
                vd[i] = self.momentum * vd[i] + g;
                wd[i] -= self.lr * vd[i];
            }
        }
        Ok(())
    }

    /// Clears all momentum state.
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule {
    /// Learning rate to use for `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Step decay: start at `initial` and multiply by `factor` at each
/// milestone. The paper trains "with three scheduled learning rate decays
/// starting from 0.01", each decay dividing by 10 — i.e.
/// `StepDecay::paper(epochs)`.
#[derive(Debug, Clone)]
pub struct StepDecay {
    initial: f32,
    factor: f32,
    milestones: Vec<usize>,
}

impl StepDecay {
    /// Creates a schedule decaying by `factor` at each milestone epoch.
    pub fn new(initial: f32, factor: f32, milestones: Vec<usize>) -> Self {
        StepDecay {
            initial,
            factor,
            milestones,
        }
    }

    /// The paper's schedule shape: initial 0.01, three 10× decays evenly
    /// spaced over `total_epochs`.
    pub fn paper(total_epochs: usize) -> Self {
        let q = total_epochs.max(4) / 4;
        StepDecay::new(0.01, 0.1, vec![q, 2 * q, 3 * q])
    }
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.initial * self.factor.powi(passed as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    fn param(name: &str, vals: Vec<f32>, grads: Vec<f32>, kind: ParamKind) -> Param {
        let mut p = Param::new(name, Tensor::from_vec(vals), kind);
        p.grad = Tensor::from_vec(grads);
        p
    }

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0).unwrap();
        let mut p = param("w", vec![1.0], vec![2.0], ParamKind::Weight);
        opt.step(vec![&mut p]).unwrap();
        assert!((p.value.data()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
        let mut p = param("w", vec![0.0], vec![1.0], ParamKind::Weight);
        opt.step(vec![&mut p]).unwrap(); // v=1, w=-0.1
        opt.step(vec![&mut p]).unwrap(); // v=1.9, w=-0.29
        assert!((p.value.data()[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_skips_biases() {
        let mut opt = Sgd::new(0.1, 0.0, 1.0).unwrap();
        let mut w = param("w", vec![1.0], vec![0.0], ParamKind::Weight);
        let mut b = param("b", vec![1.0], vec![0.0], ParamKind::Bias);
        opt.step(vec![&mut w, &mut b]).unwrap();
        assert!((w.value.data()[0] - 0.9).abs() < 1e-6);
        assert_eq!(b.value.data()[0], 1.0);
    }

    #[test]
    fn invalid_hyperparams_rejected() {
        assert!(Sgd::new(0.0, 0.0, 0.0).is_err());
        assert!(Sgd::new(0.1, 1.0, 0.0).is_err());
        assert!(Sgd::new(0.1, 0.5, -1.0).is_err());
        assert!(Sgd::new(f32::NAN, 0.0, 0.0).is_err());
    }

    #[test]
    fn reset_state_clears_momentum() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
        let mut p = param("w", vec![0.0], vec![1.0], ParamKind::Weight);
        opt.step(vec![&mut p]).unwrap();
        opt.reset_state();
        let before = p.value.data()[0];
        opt.step(vec![&mut p]).unwrap();
        // With cleared momentum the step is the plain -lr*g again.
        assert!((p.value.data()[0] - (before - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::new(0.01, 0.1, vec![10, 20, 30]);
        assert!((s.lr_at(0) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(10) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(25) - 0.0001).abs() < 1e-9);
        assert!((s.lr_at(35) - 0.00001).abs() < 1e-9);
    }

    #[test]
    fn paper_schedule_has_three_decays() {
        let s = StepDecay::paper(40);
        assert!((s.lr_at(0) - 0.01).abs() < 1e-9);
        assert!(s.lr_at(39) < 0.01 * 0.1f32.powi(2));
    }
}
