//! The [`Layer`] trait and forward-pass [`Mode`].

use crate::param::Param;
use crate::Result;
use advcomp_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Training mode enables stochastic behaviour (dropout); evaluation mode is
/// deterministic. Attacks always run in [`Mode::Eval`] — the adversary
/// differentiates the deployed, deterministic network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout active, caches retained for backward.
    Train,
    /// Inference: deterministic; caches still retained so input gradients
    /// (for attacks) remain available.
    Eval,
}

/// How a GEMM layer's weights are stored, as seen through [`LayerSpec`].
#[derive(Debug, Clone, Copy)]
pub enum WeightRepr<'a> {
    /// Trainable f32 weights (`[out, in]` for dense, `[oc, ic, kh, kw]`
    /// for convolution).
    Dense(&'a Tensor),
    /// Frozen block-quantised weights ([`Layer::freeze_quantized`]).
    Packed(&'a crate::QuantizedWeights),
}

/// A structural description of one layer, for the graph compiler.
///
/// [`Layer::spec`] lets `advcomp-graph` lower a [`crate::Sequential`] into
/// its typed IR without downcasting: each variant carries exactly the
/// state the inference forward pass depends on, borrowed from the layer.
/// Layers a compiler cannot express report [`LayerSpec::Opaque`] and make
/// the whole-model lowering fail loudly rather than silently diverge.
#[derive(Debug, Clone, Copy)]
pub enum LayerSpec<'a> {
    /// 2-D convolution over NCHW input (square kernel).
    Conv2d {
        /// Kernel weights, `[oc, ic, kh, kw]` when dense.
        weight: WeightRepr<'a>,
        /// Per-output-channel bias, `[oc]`.
        bias: &'a Tensor,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// Fully-connected layer `y = x Wᵀ + b`.
    Dense {
        /// Weights, `[out, in]` when dense.
        weight: WeightRepr<'a>,
        /// Bias, `[out]`.
        bias: &'a Tensor,
    },
    /// Batch normalisation (inference uses the running statistics).
    BatchNorm2d {
        /// Per-channel scale.
        gamma: &'a [f32],
        /// Per-channel shift.
        beta: &'a [f32],
        /// Running mean (the eval-mode mean).
        running_mean: &'a [f32],
        /// Running variance (the eval-mode variance).
        running_var: &'a [f32],
        /// Variance epsilon.
        eps: f32,
    },
    /// `max(0, x)` elementwise.
    Relu,
    /// `tanh(x)` elementwise.
    Tanh,
    /// Logistic sigmoid elementwise.
    Sigmoid,
    /// 2-D max pooling (square window, no padding).
    MaxPool2d {
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// 2-D average pooling (square window, no padding).
    AvgPool2d {
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Collapse to `[batch, features]`.
    Flatten,
    /// Dropout — identity in [`Mode::Eval`], which is all an inference
    /// compiler sees.
    Dropout,
    /// Simulated activation quantisation; `None` means disabled
    /// (identity).
    FakeQuant {
        /// Installed activation format, if enabled.
        format: Option<advcomp_qformat::QFormat>,
    },
    /// A layer the compiler has no lowering for.
    Opaque,
}

/// A differentiable network layer.
///
/// Contract:
///
/// * `forward` must cache whatever `backward` needs and may be called
///   repeatedly; each call replaces the cache.
/// * `backward` consumes a gradient with the shape of the **last forward
///   output** and returns the gradient with the shape of that forward's
///   input, *accumulating* (not overwriting) parameter gradients.
/// * `backward` must not destroy the cache: callers such as DeepFool
///   backpropagate several different seed gradients through one forward.
/// * An [`Mode::Eval`] `forward` must not mutate *persistent* state —
///   parameters, batch-norm running statistics, dropout RNG position.
///   The transient backward cache is the only thing it may touch, which is
///   why concurrent serving replicates models per worker
///   ([`Layer::clone_layer`]) instead of sharing one behind a lock.
pub trait Layer: Send + Sync {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns an [`crate::NnError`] when the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Backpropagates `grad_output`, returning the input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when no forward
    /// cache exists, or shape errors when `grad_output` is malformed.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Immutable views of this layer's parameters (empty for stateless
    /// layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable views of this layer's parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Short static identifier, e.g. `"conv2d"`.
    fn kind(&self) -> &'static str;

    /// Structural description of this layer for the graph compiler
    /// ([`LayerSpec`]). The default is [`LayerSpec::Opaque`], which makes
    /// lowering a model containing this layer fail; every in-tree layer
    /// overrides it.
    fn spec(&self) -> LayerSpec<'_> {
        LayerSpec::Opaque
    }

    /// Clones this layer into an independent replica with **fresh (empty)
    /// backward caches** but identical persistent state: parameter values,
    /// batch-norm running statistics, dropout RNG position, installed
    /// quantisation formats.
    ///
    /// Replicas are how the serving engine scales across workers: the model
    /// is loaded once, then cloned per worker so concurrent eval-mode
    /// forward passes never contend on the shared original. Because the
    /// clone starts cache-free, `backward` before a `forward` on it fails
    /// with [`crate::NnError::BackwardBeforeForward`] as on a new layer.
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// The activation tensor this layer produced in its last forward pass,
    /// if it retains one. Used to sample activation distributions for the
    /// paper's Figure 6 CDFs.
    fn last_output(&self) -> Option<&Tensor> {
        None
    }

    /// Installs (or clears) a fixed-point activation format on this layer.
    ///
    /// Returns `true` when the layer is an activation-quantisation point
    /// (i.e. a `FakeQuant`); all other layers ignore the call and return
    /// `false`. Compression passes use this to switch a whole network's
    /// activation precision without downcasting.
    fn set_activation_format(&mut self, _format: Option<advcomp_qformat::QFormat>) -> bool {
        false
    }

    /// The fixed-point activation format currently installed, if this layer
    /// is a quantisation point and one is set.
    fn activation_format(&self) -> Option<advcomp_qformat::QFormat> {
        None
    }

    /// Freezes this layer's weights into packed block-quantised form for
    /// integer-GEMM inference: the f32 weight tensor is replaced by a
    /// [`crate::QuantizedWeights`] handle, the weight leaves `params()`,
    /// and `backward` starts failing (frozen layers are inference-only).
    ///
    /// Returns `true` when the layer holds packable weights (`Dense`,
    /// `Conv2d`); parameter-free and non-GEMM layers return `false`
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`crate::NnError::InvalidConfig`] when already frozen, or a tensor
    /// error when `weight_format` has no packed representation.
    fn freeze_quantized(
        &mut self,
        _weight_format: advcomp_qformat::QFormat,
        _act_format: advcomp_qformat::QFormat,
    ) -> Result<bool> {
        Ok(false)
    }

    /// The packed weights installed on this layer, if frozen, keyed by the
    /// weight parameter's name (the checkpoint serialisation key).
    fn quantized_weights(&self) -> Option<(&str, &crate::QuantizedWeights)> {
        None
    }

    /// Installs packed weights by parameter name (the checkpoint restore
    /// path). Returns `true` when this layer owns the named weight and
    /// accepted the handle — whether or not it was frozen before — and
    /// `false` when the name belongs elsewhere.
    ///
    /// # Errors
    ///
    /// [`crate::NnError::InvalidConfig`] when the name matches but the
    /// packed shape does not.
    fn install_quantized_weights(
        &mut self,
        _name: &str,
        _weights: &crate::QuantizedWeights,
    ) -> Result<bool> {
        Ok(false)
    }
}
