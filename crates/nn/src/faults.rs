//! Deterministic fault injection for resilience testing.
//!
//! Long experiment grids die in three characteristic ways: a worker panics,
//! a numeric blow-up poisons an iteration with NaN, or an interrupted write
//! truncates a results file. This module provides the *injection* half of
//! the resilience story: named **sites** placed at those exact spots fire
//! configured faults deterministically, so the recovery machinery (the
//! supervised runner, health guards and journal in `advcomp-core`) can be
//! proven end to end rather than trusted.
//!
//! Faults come from two sources, merged into one process-global registry:
//!
//! * the `ADVCOMP_FAULTS` environment variable, parsed once on first use —
//!   a `;`/`,`-separated list of `kind:site:hit[:sticky]` specs, e.g.
//!   `ADVCOMP_FAULTS="panic:sweep_point:1;nan:train_step:5"` panics the
//!   second invocation of the `sweep_point` site and poisons the sixth
//!   `train_step` with NaN. `kind` is one of `panic`, `nan`, `io`, `error`;
//!   `hit` is the 0-based invocation index; a trailing `:sticky` makes the
//!   fault fire on every invocation from `hit` onwards instead of once.
//! * programmatic [`install`]/[`FaultGuard`] for tests, which also
//!   serialises fault-using tests against each other (the registry is
//!   process-global, so concurrent tests would otherwise race).
//!
//! Sites live where the failure would naturally occur: this crate only
//! defines the registry; `advcomp-attacks`, `advcomp-compress` and
//! `advcomp-core` query it at their loop bodies and write paths. Probing a
//! site is two atomic loads when no fault targets it, so production runs
//! (no `ADVCOMP_FAULTS`, nothing installed) pay essentially nothing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed fault does when its site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognisable message (exercises `catch_unwind` paths).
    Panic,
    /// Poison the site's tensor/loss with NaN (exercises health guards).
    Nan,
    /// Fail the site's I/O operation (exercises atomic-write recovery).
    Io,
    /// Return a plain error (exercises retry/partial-result paths).
    Error,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "nan" => Some(FaultKind::Nan),
            "io" => Some(FaultKind::Io),
            "error" => Some(FaultKind::Error),
            _ => None,
        }
    }
}

/// One armed fault: fire `kind` at the `hit`-th invocation of `site`
/// (0-based); with `sticky`, keep firing on every later invocation too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to do.
    pub kind: FaultKind,
    /// Which injection point to target.
    pub site: String,
    /// 0-based invocation index at which to fire.
    pub hit: u64,
    /// Fire on every invocation `>= hit` instead of exactly once.
    pub sticky: bool,
}

impl FaultSpec {
    /// A one-shot fault at the `hit`-th invocation of `site`.
    pub fn once(kind: FaultKind, site: &str, hit: u64) -> Self {
        FaultSpec {
            kind,
            site: site.into(),
            hit,
            sticky: false,
        }
    }

    /// A fault that fires at `hit` and every invocation after it.
    pub fn sticky(kind: FaultKind, site: &str, hit: u64) -> Self {
        FaultSpec {
            kind,
            site: site.into(),
            hit,
            sticky: true,
        }
    }

    /// Parses one `kind:site:hit[:sticky]` spec. Returns `None` (after a
    /// stderr warning) on malformed input rather than failing the run.
    fn parse(spec: &str) -> Option<FaultSpec> {
        let parts: Vec<&str> = spec.split(':').collect();
        let ok = match parts.as_slice() {
            [kind, site, hit] => FaultKind::parse(kind)
                .and_then(|k| hit.parse().ok().map(|h| FaultSpec::once(k, site, h))),
            [kind, site, hit, "sticky"] => FaultKind::parse(kind)
                .and_then(|k| hit.parse().ok().map(|h| FaultSpec::sticky(k, site, h))),
            _ => None,
        };
        if ok.is_none() {
            eprintln!(
                "warning: ignoring malformed ADVCOMP_FAULTS spec '{spec}' \
                 (expected kind:site:hit[:sticky] with kind in panic|nan|io|error)"
            );
        }
        ok
    }
}

#[derive(Debug, Default)]
struct Registry {
    specs: Vec<FaultSpec>,
    /// Invocation counters, one per site name.
    counters: HashMap<String, u64>,
}

impl Registry {
    /// Counts one invocation of `site` and reports the fault to fire, if any.
    fn fire(&mut self, site: &str) -> Option<FaultKind> {
        let n = self.counters.entry(site.to_string()).or_insert(0);
        let count = *n;
        *n += 1;
        self.specs
            .iter()
            .find(|s| s.site == site && (count == s.hit || (s.sticky && count > s.hit)))
            .map(|s| s.kind)
    }
}

/// Fast path: set iff any fault is armed (env or installed). Lets every
/// site probe bail with one relaxed load when injection is off.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let specs = parse_env(std::env::var("ADVCOMP_FAULTS").ok().as_deref());
        if !specs.is_empty() {
            ARMED.store(true, Ordering::Relaxed);
        }
        Mutex::new(Registry {
            specs,
            counters: HashMap::new(),
        })
    })
}

fn parse_env(value: Option<&str>) -> Vec<FaultSpec> {
    value
        .unwrap_or("")
        .split([';', ','])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter_map(FaultSpec::parse)
        .collect()
}

fn lock() -> MutexGuard<'static, Registry> {
    // A panicking fault site poisons the mutex by design; the registry
    // state is still coherent (the counter was bumped before the panic).
    match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Counts one invocation of `site` and returns the fault to apply, if any.
///
/// This is the generic probe; most call sites want one of the typed
/// helpers ([`maybe_panic`], [`corrupt`], [`io_error`], [`should_error`])
/// which apply the fault as well.
pub fn fire(site: &str) -> Option<FaultKind> {
    // Force one registry init so env-armed faults set ARMED before the
    // fast-path load ever reads it.
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        let _ = registry();
    });
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    lock().fire(site)
}

/// Panics (with a recognisable message) if a `panic` fault fires at `site`.
pub fn maybe_panic(site: &str) {
    if fire(site) == Some(FaultKind::Panic) {
        panic!("injected fault: panic at site '{site}'");
    }
}

/// Poisons `data[0]` with NaN if a `nan` fault fires at `site`. Returns
/// whether the fault fired.
pub fn corrupt(site: &str, data: &mut [f32]) -> bool {
    if fire(site) == Some(FaultKind::Nan) {
        if let Some(v) = data.first_mut() {
            *v = f32::NAN;
        }
        true
    } else {
        false
    }
}

/// Returns an injected I/O error if an `io` fault fires at `site`.
pub fn io_error(site: &str) -> Option<std::io::Error> {
    if fire(site) == Some(FaultKind::Io) {
        Some(std::io::Error::other(format!(
            "injected fault: io error at site '{site}'"
        )))
    } else {
        None
    }
}

/// `true` if an `error` fault fires at `site` (caller builds its own error).
pub fn should_error(site: &str) -> bool {
    fire(site) == Some(FaultKind::Error)
}

/// Serialises tests that install faults; held (transitively) by
/// [`FaultGuard`] so two fault-driven tests never interleave.
fn test_lock() -> &'static Mutex<()> {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    TEST_LOCK.get_or_init(|| Mutex::new(()))
}

/// Exclusive hold on the fault registry for the lifetime of a test. The
/// installed specs are cleared (and invocation counters reset) on drop.
#[must_use = "faults are cleared when the guard drops"]
pub struct FaultGuard {
    _exclusive: MutexGuard<'static, ()>,
}

/// Installs `specs` for the duration of the returned guard, replacing any
/// environment-armed faults, and resets all invocation counters. Tests use
/// this instead of `ADVCOMP_FAULTS` so they compose under the parallel
/// test runner; the guard serialises fault-using tests process-wide.
pub fn install(specs: Vec<FaultSpec>) -> FaultGuard {
    let exclusive = match test_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    {
        let mut reg = lock();
        reg.specs = specs;
        reg.counters.clear();
    }
    ARMED.store(true, Ordering::Relaxed);
    FaultGuard {
        _exclusive: exclusive,
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut reg = lock();
        reg.specs.clear();
        reg.counters.clear();
        // Leave ARMED set only if the environment armed faults at startup;
        // re-deriving it from the env keeps a dropped guard from disabling
        // env-driven injection in the same process.
        let env_specs = parse_env(std::env::var("ADVCOMP_FAULTS").ok().as_deref());
        let still_armed = !env_specs.is_empty();
        reg.specs = env_specs;
        ARMED.store(still_armed, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_specs() {
        let specs = parse_env(Some("panic:sweep_point:1; nan:train_step:5,io:w:0:sticky"));
        assert_eq!(
            specs,
            vec![
                FaultSpec::once(FaultKind::Panic, "sweep_point", 1),
                FaultSpec::once(FaultKind::Nan, "train_step", 5),
                FaultSpec::sticky(FaultKind::Io, "w", 0),
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_env(Some("explode:x:1")).is_empty());
        assert!(parse_env(Some("panic:x")).is_empty());
        assert!(parse_env(Some("panic:x:notanumber")).is_empty());
        assert!(parse_env(Some("")).is_empty());
        assert!(parse_env(None).is_empty());
    }

    #[test]
    fn one_shot_fires_exactly_once_at_hit() {
        let _g = install(vec![FaultSpec::once(FaultKind::Error, "site_a", 2)]);
        assert_eq!(fire("site_a"), None); // hit 0
        assert_eq!(fire("site_b"), None); // other sites independent
        assert_eq!(fire("site_a"), None); // hit 1
        assert_eq!(fire("site_a"), Some(FaultKind::Error)); // hit 2
        assert_eq!(fire("site_a"), None); // hit 3
    }

    #[test]
    fn sticky_fires_from_hit_onwards() {
        let _g = install(vec![FaultSpec::sticky(FaultKind::Error, "s", 1)]);
        assert!(!should_error("s"));
        assert!(should_error("s"));
        assert!(should_error("s"));
    }

    #[test]
    fn corrupt_poisons_first_element() {
        let _g = install(vec![FaultSpec::once(FaultKind::Nan, "c", 0)]);
        let mut data = [1.0f32, 2.0];
        assert!(corrupt("c", &mut data));
        assert!(data[0].is_nan());
        assert_eq!(data[1], 2.0);
        // Second invocation: no fault, data untouched.
        let mut clean = [3.0f32];
        assert!(!corrupt("c", &mut clean));
        assert_eq!(clean[0], 3.0);
    }

    #[test]
    fn io_and_panic_helpers() {
        let _g = install(vec![
            FaultSpec::once(FaultKind::Io, "w", 0),
            FaultSpec::once(FaultKind::Panic, "p", 0),
        ]);
        assert!(io_error("w").is_some());
        assert!(io_error("w").is_none());
        let caught = std::panic::catch_unwind(|| maybe_panic("p"));
        assert!(caught.is_err());
        maybe_panic("p"); // second invocation: no panic
    }

    #[test]
    fn guard_clears_on_drop() {
        {
            let _g = install(vec![FaultSpec::sticky(FaultKind::Error, "g", 0)]);
            assert!(should_error("g"));
        }
        let _g2 = install(vec![]);
        assert!(!should_error("g"));
    }
}
