//! Layer container.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::{NnError, Result};
use advcomp_tensor::Tensor;

/// A feed-forward network: an ordered chain of boxed [`Layer`]s.
///
/// `forward` threads the input through every layer; `backward` runs the
/// reverse chain and returns the gradient **with respect to the network
/// input** — the quantity every adversarial attack in the paper consumes.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds a network from layers, first to last.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer chain.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer chain (used by compression passes to
    /// enable `FakeQuant` points).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs the network on a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an empty network or any layer
    /// error (shape mismatches and the like).
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig("empty network".into()));
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Backpropagates a gradient seeded at the network output, accumulating
    /// parameter gradients and returning the input gradient.
    ///
    /// May be called several times after one `forward` with different seed
    /// gradients (DeepFool differentiates each logit separately).
    ///
    /// # Errors
    ///
    /// Returns layer errors; in particular
    /// [`NnError::BackwardBeforeForward`] when `forward` has not run.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig("empty network".into()));
        }
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All parameters, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All parameters, mutably, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes every accumulated parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params().into_iter().find(|p| p.name == name)
    }

    /// Looks up a parameter by name, mutably.
    pub fn param_mut(&mut self, name: &str) -> Option<&mut Param> {
        self.params_mut().into_iter().find(|p| p.name == name)
    }

    /// Installs `format` on every activation-quantisation point
    /// (`FakeQuant` layer), returning how many points were updated.
    ///
    /// Passing `None` restores full-precision activations.
    pub fn set_activation_format(&mut self, format: Option<advcomp_qformat::QFormat>) -> usize {
        self.layers
            .iter_mut()
            .map(|l| l.set_activation_format(format))
            .filter(|&updated| updated)
            .count()
    }

    /// Renders a human-readable layer table: kind, parameter names, shapes
    /// and per-layer parameter counts.
    pub fn summary(&self) -> String {
        let mut out = String::from("layer  kind         params\n");
        for (i, layer) in self.layers.iter().enumerate() {
            let params = layer.params();
            let detail = if params.is_empty() {
                "-".to_string()
            } else {
                params
                    .iter()
                    .map(|p| format!("{} {:?}", p.name, p.value.shape()))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let count: usize = params.iter().map(|p| p.len()).sum();
            out.push_str(&format!("{i:<6} {:<12} {detail} ({count})\n", layer.kind()));
        }
        out.push_str(&format!("total parameters: {}\n", self.num_params()));
        out
    }

    /// Exports all parameter values as `(name, tensor)` pairs — the
    /// serialisation boundary used by model checkpoints.
    pub fn export_params(&self) -> Vec<(String, Tensor)> {
        self.params()
            .into_iter()
            .map(|p| (p.name.clone(), p.value.clone()))
            .collect()
    }

    /// Freezes every packable layer's weights into block-quantised form
    /// for integer-GEMM inference (see [`Layer::freeze_quantized`]),
    /// returning how many layers were frozen. Frozen weights leave
    /// `params()`/`export_params()`; serialise them with
    /// [`Sequential::export_quantized`].
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (already frozen, or a weight
    /// format with no packed representation).
    pub fn freeze_quantized(
        &mut self,
        weight_format: advcomp_qformat::QFormat,
        act_format: advcomp_qformat::QFormat,
    ) -> Result<usize> {
        let mut frozen = 0;
        for layer in &mut self.layers {
            if layer.freeze_quantized(weight_format, act_format)? {
                frozen += 1;
            }
        }
        Ok(frozen)
    }

    /// Exports every frozen layer's packed weights as `(name, handle)`
    /// pairs in layer order — the checkpoint-v3 serialisation boundary,
    /// complementing [`Sequential::export_params`] (which now carries only
    /// the remaining f32 parameters).
    pub fn export_quantized(&self) -> Vec<(String, crate::QuantizedWeights)> {
        self.layers
            .iter()
            .filter_map(|l| l.quantized_weights())
            .map(|(name, q)| (name.to_string(), q.clone()))
            .collect()
    }

    /// Installs packed weights on the layer owning the named weight
    /// parameter, freezing it if it was dense. Returns `false` when no
    /// layer claims the name.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when a layer claims the name but
    /// the packed shape is incompatible.
    pub fn install_quantized(
        &mut self,
        name: &str,
        weights: &crate::QuantizedWeights,
    ) -> Result<bool> {
        for layer in &mut self.layers {
            if layer.install_quantized_weights(name, weights)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Imports parameter values by name.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if a name is unknown or a shape
    /// differs from the existing parameter.
    pub fn import_params(&mut self, values: &[(String, Tensor)]) -> Result<()> {
        for (name, value) in values {
            let p = self
                .param_mut(name)
                .ok_or_else(|| NnError::InvalidConfig(format!("unknown parameter {name}")))?;
            if p.value.shape() != value.shape() {
                return Err(NnError::InvalidConfig(format!(
                    "shape mismatch for {name}: {:?} vs {:?}",
                    p.value.shape(),
                    value.shape()
                )));
            }
            p.value = value.clone();
        }
        Ok(())
    }
}

impl Clone for Sequential {
    /// Clones the network into an independent replica via
    /// [`Layer::clone_layer`]: identical persistent state (parameter
    /// values, running statistics, quantisation formats), fresh backward
    /// caches. Serving workers each own one replica so concurrent forward
    /// passes never contend.
    fn clone(&self) -> Self {
        Sequential {
            layers: self.layers.iter().map(|l| l.clone_layer()).collect(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = self.layers.iter().map(|l| l.kind()).collect();
        f.debug_struct("Sequential")
            .field("layers", &kinds)
            .field("num_params", &self.num_params())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::SeedableRng;

    fn net() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        Sequential::new(vec![
            Box::new(Dense::with_name("fc1", 4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::with_name("fc2", 8, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut n = net();
        let x = Tensor::zeros(&[5, 4]);
        let y = n.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[5, 3]);
        let gx = n.backward(&Tensor::ones(&[5, 3])).unwrap();
        assert_eq!(gx.shape(), &[5, 4]);
    }

    #[test]
    fn empty_network_errors() {
        let mut n = Sequential::new(vec![]);
        assert!(n.forward(&Tensor::zeros(&[1, 1]), Mode::Eval).is_err());
        assert!(n.backward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn param_accounting() {
        let n = net();
        assert_eq!(n.params().len(), 4);
        assert_eq!(n.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert!(n.param("fc1.weight").is_some());
        assert!(n.param("nope").is_none());
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut n = net();
        let x = Tensor::ones(&[2, 4]);
        n.forward(&x, Mode::Train).unwrap();
        n.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert!(n.params().iter().any(|p| p.grad.l0_norm() > 0));
        n.zero_grad();
        assert!(n.params().iter().all(|p| p.grad.l0_norm() == 0));
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = net();
        let mut b = net();
        a.param_mut("fc1.weight").unwrap().value.data_mut()[0] = 123.0;
        let exported = a.export_params();
        b.import_params(&exported).unwrap();
        assert_eq!(b.param("fc1.weight").unwrap().value.data()[0], 123.0);
    }

    #[test]
    fn import_rejects_unknown_and_mismatched() {
        let mut n = net();
        assert!(n
            .import_params(&[("ghost".into(), Tensor::zeros(&[1]))])
            .is_err());
        assert!(n
            .import_params(&[("fc1.weight".into(), Tensor::zeros(&[1, 1]))])
            .is_err());
    }

    #[test]
    fn repeated_backward_after_one_forward() {
        // DeepFool relies on this: several seed gradients per forward.
        let mut n = net();
        let x = Tensor::ones(&[1, 4]);
        n.forward(&x, Mode::Eval).unwrap();
        let g1 = n
            .backward(&Tensor::new(&[1, 3], vec![1.0, 0.0, 0.0]).unwrap())
            .unwrap();
        let g2 = n
            .backward(&Tensor::new(&[1, 3], vec![1.0, 0.0, 0.0]).unwrap())
            .unwrap();
        assert!(g1.allclose(&g2, 1e-6));
    }

    #[test]
    fn summary_lists_layers_and_counts() {
        let n = net();
        let s = n.summary();
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
        assert!(s.contains("fc1.weight"));
        assert!(s.contains(&format!("total parameters: {}", n.num_params())));
    }

    #[test]
    fn clone_is_independent_replica() {
        let mut a = net();
        let x = Tensor::ones(&[2, 4]);
        a.forward(&x, Mode::Eval).unwrap();
        let mut b = a.clone();
        // Same persistent state → identical outputs.
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
        // Mutating the clone's parameters must not touch the original.
        b.param_mut("fc1.weight").unwrap().value.data_mut()[0] += 1.0;
        let ya2 = a.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), ya2.data());
    }

    #[test]
    fn clone_starts_cache_free() {
        let mut a = net();
        a.forward(&Tensor::ones(&[1, 4]), Mode::Eval).unwrap();
        let mut b = a.clone();
        // The original can backpropagate; the replica has no cache yet.
        assert!(a.backward(&Tensor::ones(&[1, 3])).is_ok());
        assert!(b.backward(&Tensor::ones(&[1, 3])).is_err());
    }

    #[test]
    fn debug_lists_layer_kinds() {
        let n = net();
        let s = format!("{n:?}");
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
    }
}
