//! Average pooling (the classic LeNet-5 sub-sampling layer).

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_tensor::{Tensor, TensorError};

/// 2-D average pooling over NCHW input with a square window.
///
/// LeCun's original LeNet-5 used average (sub-sampling) pooling; the modern
/// variant in `advcomp-models` uses max pooling, but this layer keeps the
/// substrate faithful to the historical architecture and provides a
/// smoother pooling option for ablations.
#[derive(Debug)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be >= 1");
        AvgPool2d {
            kernel,
            stride,
            cached_input_shape: None,
        }
    }

    fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if h < self.kernel || w < self.kernel {
            return Err(NnError::Tensor(TensorError::InvalidGeometry(format!(
                "pool window {} larger than input {h}x{w}",
                self.kernel
            ))));
        }
        Ok((
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        ))
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.ndim() != 4 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: input.ndim(),
                op: "avgpool2d",
            }));
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = self.output_hw(h, w)?;
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = input.data();
        let dst = out.data_mut();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            let row = plane + (oy * self.stride + ky) * w + ox * self.stride;
                            for kx in 0..self.kernel {
                                acc += src[row + kx];
                            }
                        }
                        dst[((b * c + ch) * oh + oy) * ow + ox] = acc * norm;
                    }
                }
            }
        }
        self.cached_input_shape = Some(input.shape().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_input_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "avgpool2d" })?;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.output_hw(h, w)?;
        if grad_output.shape() != [n, c, oh, ow] {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: vec![n, c, oh, ow],
                op: "avgpool2d backward",
            }));
        }
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut gx = Tensor::zeros(shape);
        let dst = gx.data_mut();
        let src = grad_output.data();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = src[((b * c + ch) * oh + oy) * ow + ox] * norm;
                        for ky in 0..self.kernel {
                            let row = plane + (oy * self.stride + ky) * w + ox * self.stride;
                            for kx in 0..self.kernel {
                                dst[row + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(gx)
    }

    fn kind(&self) -> &'static str {
        "avgpool2d"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::AvgPool2d {
            kernel: self.kernel,
            stride: self.stride,
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(AvgPool2d {
            kernel: self.kernel,
            stride: self.stride,
            cached_input_shape: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_windows() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::new(&[1, 1, 2, 4], vec![1., 3., 5., 7., 2., 4., 6., 8.]).unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[2.5, 6.5]);
    }

    #[test]
    fn backward_distributes_evenly() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        pool.forward(&x, Mode::Train).unwrap();
        let gx = pool
            .backward(&Tensor::new(&[1, 1, 1, 1], vec![4.0]).unwrap())
            .unwrap();
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        use crate::{finite_diff_input_grad, Dense, Flatten, Sequential};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut net = Sequential::new(vec![
            Box::new(AvgPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4, 3, &mut rng)),
        ]);
        let x = advcomp_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[2, 1, 4, 4], &mut rng);
        let labels = vec![0usize, 2];
        let logits = net.forward(&x, Mode::Eval).unwrap();
        let loss = crate::softmax_cross_entropy(&logits, &labels).unwrap();
        net.zero_grad();
        let analytic = net.backward(&loss.grad).unwrap();
        let numeric = finite_diff_input_grad(&mut net, &x, &labels, 1e-3).unwrap();
        assert!(analytic.allclose(&numeric, 1e-2));
    }

    #[test]
    fn validation() {
        let mut pool = AvgPool2d::new(3, 1);
        assert!(pool
            .forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .is_err());
        assert!(pool.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    #[should_panic(expected = "kernel and stride")]
    fn zero_stride_panics() {
        AvgPool2d::new(2, 0);
    }
}
