//! Smooth activations: Tanh and Sigmoid.
//!
//! The historical LeNet-5 used tanh nonlinearities; Goodfellow et al.'s
//! analysis of adversarial examples (which the paper builds on) contrasts
//! saturating activations with ReLU-family ones. Both are provided so the
//! substrate can express those ablations.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_tensor::Tensor;

/// Elementwise hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    last_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { last_output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = input.map(f32::tanh);
        self.last_output = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let y = self
            .last_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "tanh" })?;
        // d/dx tanh(x) = 1 - tanh(x)^2, computable from the cached output.
        Ok(grad_output.zip_map(y, |g, t| g * (1.0 - t * t))?)
    }

    fn kind(&self) -> &'static str {
        "tanh"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::Tanh
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Tanh { last_output: None })
    }

    fn last_output(&self) -> Option<&Tensor> {
        self.last_output.as_ref()
    }
}

/// Elementwise logistic sigmoid.
#[derive(Debug, Default)]
pub struct Sigmoid {
    last_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { last_output: None }
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        // Numerically-stable logistic.
        let y = input.map(|v| {
            if v >= 0.0 {
                1.0 / (1.0 + (-v).exp())
            } else {
                let e = v.exp();
                e / (1.0 + e)
            }
        });
        self.last_output = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let y = self
            .last_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "sigmoid" })?;
        Ok(grad_output.zip_map(y, |g, s| g * s * (1.0 - s))?)
    }

    fn kind(&self) -> &'static str {
        "sigmoid"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::Sigmoid
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Sigmoid { last_output: None })
    }

    fn last_output(&self) -> Option<&Tensor> {
        self.last_output.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_values_and_range() {
        let mut t = Tanh::new();
        let y = t
            .forward(&Tensor::from_vec(vec![-20.0, 0.0, 20.0]), Mode::Eval)
            .unwrap();
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_values_and_stability() {
        let mut s = Sigmoid::new();
        let y = s
            .forward(&Tensor::from_vec(vec![-100.0, 0.0, 100.0]), Mode::Eval)
            .unwrap();
        assert!(!y.has_non_finite());
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn gradients_match_finite_difference() {
        use crate::{finite_diff_input_grad, Dense, Sequential};
        use rand::SeedableRng;
        for smooth in [true, false] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let act: Box<dyn Layer> = if smooth {
                Box::new(Tanh::new())
            } else {
                Box::new(Sigmoid::new())
            };
            let mut net = Sequential::new(vec![
                Box::new(Dense::new(4, 6, &mut rng)),
                act,
                Box::new(Dense::new(6, 3, &mut rng)),
            ]);
            let x = advcomp_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[3, 4], &mut rng);
            let labels = vec![0usize, 1, 2];
            let logits = net.forward(&x, Mode::Eval).unwrap();
            let loss = crate::softmax_cross_entropy(&logits, &labels).unwrap();
            net.zero_grad();
            let analytic = net.backward(&loss.grad).unwrap();
            let numeric = finite_diff_input_grad(&mut net, &x, &labels, 1e-3).unwrap();
            assert!(analytic.allclose(&numeric, 1e-2), "smooth={smooth}");
        }
    }

    #[test]
    fn backward_requires_forward() {
        assert!(Tanh::new().backward(&Tensor::zeros(&[1])).is_err());
        assert!(Sigmoid::new().backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn saturated_tanh_kills_gradient() {
        // The saturation behaviour Goodfellow et al. contrast with ReLU.
        let mut t = Tanh::new();
        t.forward(&Tensor::from_vec(vec![50.0]), Mode::Eval)
            .unwrap();
        let g = t.backward(&Tensor::from_vec(vec![1.0])).unwrap();
        assert!(g.data()[0].abs() < 1e-6);
    }
}
