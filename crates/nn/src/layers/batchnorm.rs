//! Batch normalisation over NCHW feature maps.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use crate::{NnError, Result};
use advcomp_tensor::{Tensor, TensorError};

/// 2-D batch normalisation (Ioffe & Szegedy 2015): per-channel
/// standardisation with learned scale/shift and running statistics for
/// evaluation mode.
///
/// Not used by the paper's reference models (which predate widespread BN in
/// compact edge nets) but provided so modern architectures can be expressed
/// and compression ablations run against them. The scale parameter is
/// registered as a `Weight` so pruning/quantisation treat it consistently;
/// the shift is a `Bias`.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
    batch_stats: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self::with_name("bn", channels)
    }

    /// Creates a named batch-norm layer.
    pub fn with_name(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(
                format!("{name}.gamma"),
                Tensor::ones(&[channels]),
                ParamKind::Weight,
            ),
            beta: Param::new(
                format!("{name}.beta"),
                Tensor::zeros(&[channels]),
                ParamKind::Bias,
            ),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// Running mean per channel (evaluation statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.ndim() != 4 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: input.ndim(),
                op: "batchnorm2d",
            }));
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        if c != self.channels() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![n, self.channels(), h, w],
                op: "batchnorm2d",
            }));
        }
        let per_channel = n * h * w;
        if per_channel == 0 {
            return Err(NnError::Tensor(TensorError::Empty("batchnorm2d")));
        }
        // Channel statistics for this batch (training) or running (eval).
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        match mode {
            Mode::Train => {
                for (ch, m) in mean.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for b in 0..n {
                        let base = (b * c + ch) * h * w;
                        acc += input.data()[base..base + h * w].iter().sum::<f32>();
                    }
                    *m = acc / per_channel as f32;
                }
                for (ch, v_out) in var.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for b in 0..n {
                        let base = (b * c + ch) * h * w;
                        for &v in &input.data()[base..base + h * w] {
                            let d = v - mean[ch];
                            acc += d * d;
                        }
                    }
                    *v_out = acc / per_channel as f32;
                }
                for ch in 0..c {
                    self.running_mean[ch] =
                        (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
                    self.running_var[ch] =
                        (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
                }
            }
            Mode::Eval => {
                mean.copy_from_slice(&self.running_mean);
                var.copy_from_slice(&self.running_var);
            }
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        {
            let xh = x_hat.data_mut();
            let od = out.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let base = (b * c + ch) * h * w;
                    let g = self.gamma.value.data()[ch];
                    let be = self.beta.value.data()[ch];
                    for i in base..base + h * w {
                        let norm = (input.data()[i] - mean[ch]) * inv_std[ch];
                        xh[i] = norm;
                        od[i] = g * norm + be;
                    }
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            input_shape: input.shape().to_vec(),
            batch_stats: mode == Mode::Train,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "batchnorm2d",
        })?;
        if grad_output.shape() != cache.input_shape.as_slice() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: cache.input_shape.clone(),
                op: "batchnorm2d backward",
            }));
        }
        let (n, c, h, w) = (
            cache.input_shape[0],
            cache.input_shape[1],
            cache.input_shape[2],
            cache.input_shape[3],
        );
        let m = (n * h * w) as f32;
        let mut gx = Tensor::zeros(&cache.input_shape);
        // In training the statistics are functions of the batch:
        // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat)).
        // In evaluation the running statistics are constants, so those two
        // correction terms must not be applied: dx = gamma * inv_std * dy.
        for ch in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for b in 0..n {
                let base = (b * c + ch) * h * w;
                for i in base..base + h * w {
                    let dy = grad_output.data()[i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat;
            self.beta.grad.data_mut()[ch] += sum_dy;
            let g = self.gamma.value.data()[ch];
            if cache.batch_stats {
                let scale = g * cache.inv_std[ch] / m;
                for b in 0..n {
                    let base = (b * c + ch) * h * w;
                    for i in base..base + h * w {
                        let dy = grad_output.data()[i];
                        gx.data_mut()[i] =
                            scale * (m * dy - sum_dy - cache.x_hat.data()[i] * sum_dy_xhat);
                    }
                }
            } else {
                let scale = g * cache.inv_std[ch];
                for b in 0..n {
                    let base = (b * c + ch) * h * w;
                    for i in base..base + h * w {
                        gx.data_mut()[i] = scale * grad_output.data()[i];
                    }
                }
            }
        }
        Ok(gx)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::BatchNorm2d {
            gamma: self.gamma.value.data(),
            beta: self.beta.value.data(),
            running_mean: &self.running_mean,
            running_var: &self.running_var,
            eps: self.eps,
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(BatchNorm2d {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            momentum: self.momentum,
            eps: self.eps,
            cache: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_tensor::Init;
    use rand::SeedableRng;

    #[test]
    fn normalises_batch_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Init::Normal {
            mean: 3.0,
            std: 2.0,
        }
        .tensor(&[4, 2, 5, 5], &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel output should be ~N(0,1) (gamma=1, beta=0).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 2 + ch) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let t = Tensor::from_vec(vals);
            assert!(t.mean().abs() < 1e-4, "channel {ch} mean {}", t.mean());
            assert!((t.std() - 1.0).abs() < 1e-2, "channel {ch} std {}", t.std());
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = Init::Normal {
            mean: 5.0,
            std: 1.0,
        }
        .tensor(&[8, 1, 4, 4], &mut rng);
        // Many training passes to converge the running stats.
        for _ in 0..50 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.2);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        // Eval output is standardised by running stats, so near N(0,1).
        assert!(y.mean().abs() < 0.2);
        // And eval mode must not move the running stats.
        let before = bn.running_mean()[0];
        bn.forward(&x, Mode::Eval).unwrap();
        assert_eq!(bn.running_mean()[0], before);
    }

    #[test]
    fn gradcheck_through_bn() {
        use crate::{finite_diff_input_grad, Dense, Flatten, Sequential};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut net = Sequential::new(vec![
            Box::new(BatchNorm2d::with_name("bn1", 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(2 * 3 * 3, 3, &mut rng)),
        ]);
        let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[3, 2, 3, 3], &mut rng);
        let labels = vec![0usize, 1, 2];
        // Gradcheck must run in Train mode consistently, since BN's eval
        // path is a different function.
        let logits = net.forward(&x, Mode::Train).unwrap();
        let loss = crate::softmax_cross_entropy(&logits, &labels).unwrap();
        net.zero_grad();
        let analytic = net.backward(&loss.grad).unwrap();
        // finite_diff uses Eval mode internally; emulate a train-mode
        // numeric gradient manually.
        let mut numeric = Tensor::zeros(x.shape());
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = {
                let l = net.forward(&xp, Mode::Train).unwrap();
                crate::softmax_cross_entropy(&l, &labels).unwrap().loss
            };
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = {
                let l = net.forward(&xm, Mode::Train).unwrap();
                crate::softmax_cross_entropy(&l, &labels).unwrap().loss
            };
            numeric.data_mut()[i] = (lp - lm) / (2.0 * eps);
        }
        let _ = finite_diff_input_grad; // (eval-mode helper unused here)
                                        // Re-run the analytic pass after the probing forwards invalidated
                                        // the cache.
        let logits = net.forward(&x, Mode::Train).unwrap();
        let loss = crate::softmax_cross_entropy(&logits, &labels).unwrap();
        net.zero_grad();
        let analytic2 = net.backward(&loss.grad).unwrap();
        assert!(analytic.allclose(&analytic2, 1e-6));
        assert!(
            analytic.allclose(&numeric, 3e-2),
            "BN input gradient mismatch"
        );
    }

    #[test]
    fn params_registered() {
        let bn = BatchNorm2d::with_name("bn7", 3);
        let names: Vec<_> = bn.params().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["bn7.gamma", "bn7.beta"]);
        assert_eq!(bn.params()[0].kind, ParamKind::Weight);
        assert_eq!(bn.params()[1].kind, ParamKind::Bias);
    }

    #[test]
    fn validation() {
        let mut bn = BatchNorm2d::new(2);
        assert!(bn
            .forward(&Tensor::zeros(&[2, 3, 4, 4]), Mode::Train)
            .is_err());
        assert!(bn.forward(&Tensor::zeros(&[4, 4]), Mode::Train).is_err());
        assert!(bn.backward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
    }
}
