//! 2-D convolution layer (GEMM formulation via `im2col`).

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use crate::qweights::QuantizedWeights;
use crate::{NnError, Result};
use advcomp_qformat::QFormat;
use advcomp_tensor::{
    col2im, im2col_into, nchw_to_rows, qmatmul_f32, rows_to_nchw, simd, Conv2dGeometry, Init,
    QTensor, Tensor,
};
use rand::Rng;

/// A 2-D convolution over NCHW input.
///
/// Weights are stored as `[out_channels, in_channels, kh, kw]`; the forward
/// pass lowers to `im2col` + matmul (see `advcomp_tensor::conv`), which is
/// also the ablation subject of the `conv` benchmark. The unrolled patch
/// matrix — the largest intermediate in the network — lives in a persistent
/// scratch tensor (`cols`) that is rewritten in place each forward pass
/// instead of reallocated, which matters in the iterative-attack loop where
/// every PGD step runs a fresh forward/backward pair.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    kernel: usize,
    stride: usize,
    padding: usize,
    packed: Option<QuantizedWeights>,
    cache: Option<ConvCache>,
    cols: Tensor,
}

#[derive(Debug)]
struct ConvCache {
    geom: Conv2dGeometry,
    batch: usize,
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised kernels and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        Self::with_name(
            "conv",
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            rng,
        )
    }

    /// Creates a named convolution (names scope parameters, e.g. `"conv1"`).
    #[allow(clippy::too_many_arguments)]
    pub fn with_name<R: Rng + ?Sized>(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let w = Init::Kaiming {
            mode: advcomp_tensor::FanMode::FanIn,
        }
        .tensor(&[out_channels, in_channels, kernel, kernel], rng);
        Conv2d {
            weight: Param::new(format!("{name}.weight"), w, ParamKind::Weight),
            bias: Param::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_channels]),
                ParamKind::Bias,
            ),
            kernel,
            stride,
            padding,
            packed: None,
            cache: None,
            cols: Tensor::default(),
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        match &self.packed {
            Some(q) => q.tensor().shape()[0],
            None => self.weight.value.shape()[0],
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        match &self.packed {
            Some(q) => q.tensor().shape()[1],
            None => self.weight.value.shape()[1],
        }
    }

    /// `true` when the kernels are frozen into packed quantised form.
    pub fn is_frozen(&self) -> bool {
        self.packed.is_some()
    }

    fn weight_2d(&self) -> Result<Tensor> {
        let s = self.weight.value.shape();
        Ok(self.weight.value.reshape(&[s[0], s[1] * s[2] * s[3]])?)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.ndim() != 4 {
            return Err(NnError::Tensor(advcomp_tensor::TensorError::RankMismatch {
                expected: 4,
                actual: input.ndim(),
                op: "conv2d",
            }));
        }
        let (n, _c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let geom = Conv2dGeometry {
            in_channels: self.in_channels(),
            in_h: h,
            in_w: w,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        };
        let (oh, ow) = geom.output_hw()?;
        im2col_into(input, &geom, &mut self.cols)?;
        if let Some(q) = &self.packed {
            // Dequant-fused conv path: the unrolled patch matrix feeds the
            // int8 GEMM directly; only the codes of the weight blocks and
            // the quantised patches touch memory in the hot loop.
            let (rows, oc) = (self.cols.shape()[0], q.tensor().rows());
            let mut out = vec![0.0f32; rows * oc];
            qmatmul_f32(
                simd::backend(),
                self.cols.data(),
                rows,
                q.act_format(),
                q.tensor(),
                &mut out,
            )?;
            let out2d = Tensor::new(&[rows, oc], out)?.add_row_broadcast(&self.bias.value)?;
            let out = rows_to_nchw(&out2d, n, oc, oh, ow)?;
            self.cache = None; // frozen layers are inference-only
            return Ok(out);
        }
        let w2d = self.weight_2d()?; // [oc, patch]
        let out2d = self.cols.matmul(&w2d.t()?)?; // [n*oh*ow, oc]
        let out2d = out2d.add_row_broadcast(&self.bias.value)?;
        let out = rows_to_nchw(&out2d, n, self.out_channels(), oh, ow)?;
        self.cache = Some(ConvCache {
            geom,
            batch: n,
            out_hw: (oh, ow),
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.packed.is_some() {
            return Err(NnError::InvalidConfig(
                "conv2d: backward through frozen quantised weights (inference-only)".into(),
            ));
        }
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let (oh, ow) = cache.out_hw;
        let (n, oc) = (cache.batch, self.out_channels());
        if grad_output.shape() != [n, oc, oh, ow] {
            return Err(NnError::Tensor(
                advcomp_tensor::TensorError::ShapeMismatch {
                    lhs: grad_output.shape().to_vec(),
                    rhs: vec![n, oc, oh, ow],
                    op: "conv2d backward",
                },
            ));
        }
        let g2d = nchw_to_rows(grad_output, n, oc, oh, ow)?; // [n*oh*ow, oc]
                                                             // dL/dW = g2dᵀ · cols (the scratch still holds this batch's patches).
        let gw2d = g2d.t()?.matmul(&self.cols)?;
        let gw = gw2d.reshape(self.weight.value.shape())?;
        self.weight.grad.add_assign(&gw)?;
        let gb = g2d.sum_axis0()?;
        self.bias.grad.add_assign(&gb)?;
        // dL/dx = col2im(g2d · W2d).
        let w2d = self.weight_2d()?;
        let gcols = g2d.matmul(&w2d)?;
        let gx = col2im(&gcols, &cache.geom, n)?;
        Ok(gx)
    }

    fn params(&self) -> Vec<&Param> {
        // The frozen weight is no longer an f32 parameter (see `Dense`).
        match self.packed {
            Some(_) => vec![&self.bias],
            None => vec![&self.weight, &self.bias],
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self.packed {
            Some(_) => vec![&mut self.bias],
            None => vec![&mut self.weight, &mut self.bias],
        }
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        let weight = match &self.packed {
            Some(q) => crate::layer::WeightRepr::Packed(q),
            None => crate::layer::WeightRepr::Dense(&self.weight.value),
        };
        crate::layer::LayerSpec::Conv2d {
            weight,
            bias: &self.bias.value,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // The im2col scratch is per-replica state and starts empty; it is
        // regrown lazily on the replica's first forward pass. Packed
        // weights are shared across replicas via Arc.
        Box::new(Conv2d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            packed: self.packed.clone(),
            cache: None,
            cols: Tensor::default(),
        })
    }

    fn freeze_quantized(&mut self, weight_format: QFormat, act_format: QFormat) -> Result<bool> {
        if self.packed.is_some() {
            return Err(NnError::InvalidConfig(
                "conv2d: weights already frozen".into(),
            ));
        }
        let shape = self.weight.value.shape().to_vec();
        let qt = QTensor::quantize(self.weight.value.data(), &shape, weight_format)?;
        self.packed = Some(QuantizedWeights::new(qt, act_format));
        self.weight.value = Tensor::default();
        self.weight.grad = Tensor::default();
        Ok(true)
    }

    fn quantized_weights(&self) -> Option<(&str, &QuantizedWeights)> {
        self.packed.as_ref().map(|q| (self.weight.name.as_str(), q))
    }

    fn install_quantized_weights(
        &mut self,
        name: &str,
        weights: &QuantizedWeights,
    ) -> Result<bool> {
        if name != self.weight.name {
            return Ok(false);
        }
        let expected: &[usize] = match &self.packed {
            Some(q) => q.tensor().shape(),
            None => self.weight.value.shape(),
        };
        if weights.tensor().shape() != expected {
            return Err(NnError::InvalidConfig(format!(
                "shape mismatch for {name}: {:?} vs {:?}",
                expected,
                weights.tensor().shape()
            )));
        }
        self.packed = Some(weights.clone());
        self.weight.value = Tensor::default();
        self.weight.grad = Tensor::default();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2)
    }

    #[test]
    fn identity_kernel_passthrough() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng());
        conv.params_mut()[0].value = Tensor::new(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let x = Tensor::new(&[1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng());
        conv.params_mut()[0].value = Tensor::ones(&[1, 1, 3, 3]);
        conv.params_mut()[1].value = Tensor::from_vec(vec![0.5]);
        let x = Tensor::new(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[45.5]);
    }

    #[test]
    fn multi_channel_output_layout() {
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng());
        conv.params_mut()[0].value = Tensor::new(&[2, 1, 1, 1], vec![1.0, 10.0]).unwrap();
        let x = Tensor::new(&[1, 1, 1, 2], vec![3.0, 4.0]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 2, 1, 2]);
        assert_eq!(y.data(), &[3.0, 4.0, 30.0, 40.0]);
    }

    #[test]
    fn rejects_non_4d_input() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng());
        assert!(conv.forward(&Tensor::zeros(&[4, 4]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_shapes() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let x = Tensor::zeros(&[2, 2, 5, 5]);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 3, 5, 5]);
        let gx = conv.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(conv.params()[0].grad.shape(), &[3, 2, 3, 3]);
        assert_eq!(conv.params()[1].grad.shape(), &[3]);
        // Bias grad of an all-ones upstream gradient = #positions per channel.
        assert!(conv.params()[1]
            .grad
            .allclose(&Tensor::full(&[3], 50.0), 1e-5));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng());
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        use crate::{finite_diff_input_grad, finite_diff_param_grad, Sequential};
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 1, 1, &mut rng())),
            Box::new(crate::Flatten::new()),
            Box::new(crate::Dense::new(2 * 4 * 4, 3, &mut rng())),
        ]);
        let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[2, 1, 4, 4], &mut rng());
        let labels = vec![0usize, 2usize];
        let logits = net.forward(&x, Mode::Train).unwrap();
        let loss = crate::softmax_cross_entropy(&logits, &labels).unwrap();
        net.zero_grad();
        let gx = net.backward(&loss.grad).unwrap();
        let num_gx = finite_diff_input_grad(&mut net, &x, &labels, 1e-2).unwrap();
        assert!(gx.allclose(&num_gx, 3e-2), "input gradient mismatch");
        let num_gw = finite_diff_param_grad(&mut net, &x, &labels, "conv.weight", 1e-2).unwrap();
        let analytic_gw = net
            .params()
            .into_iter()
            .find(|p| p.name == "conv.weight")
            .unwrap()
            .grad
            .clone();
        assert!(
            analytic_gw.allclose(&num_gw, 3e-2),
            "weight gradient mismatch"
        );
    }

    #[test]
    fn repeated_forward_backward_reuses_scratch() {
        // Two full steps with different inputs: the persistent cols scratch
        // must be rewritten, not blended, between steps.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng());
        conv.params_mut()[0].value = Tensor::ones(&[1, 1, 3, 3]);
        let x1 = Tensor::new(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let x2 = Tensor::new(&[1, 1, 3, 3], vec![1.0; 9]).unwrap();
        let y1 = conv.forward(&x1, Mode::Train).unwrap();
        assert_eq!(y1.data(), &[45.0]);
        let y2 = conv.forward(&x2, Mode::Train).unwrap();
        assert_eq!(y2.data(), &[9.0]);
        // Weight grad for all-ones upstream = im2col(x2) = x2's patch.
        conv.backward(&Tensor::ones(&[1, 1, 1, 1])).unwrap();
        assert!(conv.params()[0]
            .grad
            .allclose(&Tensor::ones(&[1, 1, 3, 3]), 1e-6));
    }
}
