//! Max pooling.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_tensor::{Tensor, TensorError};

/// 2-D max pooling over NCHW input with a square window.
///
/// Caches the argmax position of every window so the backward pass routes
/// each output gradient to the single input element that produced it.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug)]
struct PoolCache {
    input_shape: Vec<usize>,
    /// Linear input index of the max of each output position.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be >= 1");
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }

    fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if h < self.kernel || w < self.kernel {
            return Err(NnError::Tensor(TensorError::InvalidGeometry(format!(
                "pool window {} larger than input {h}x{w}",
                self.kernel
            ))));
        }
        Ok((
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        ))
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.ndim() != 4 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: input.ndim(),
                op: "maxpool2d",
            }));
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = self.output_hw(h, w)?;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let src = input.data();
        let dst = out.data_mut();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = plane + oy * self.stride * w + ox * self.stride;
                        let mut best = src[best_idx];
                        for ky in 0..self.kernel {
                            let row = plane + (oy * self.stride + ky) * w + ox * self.stride;
                            for kx in 0..self.kernel {
                                let idx = row + kx;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((b * c + ch) * oh + oy) * ow + ox;
                        dst[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.cache = Some(PoolCache {
            input_shape: input.shape().to_vec(),
            argmax,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "maxpool2d" })?;
        if grad_output.len() != cache.argmax.len() {
            return Err(NnError::Tensor(TensorError::LengthMismatch {
                expected: cache.argmax.len(),
                actual: grad_output.len(),
            }));
        }
        let mut gx = Tensor::zeros(&cache.input_shape);
        let dst = gx.data_mut();
        for (o, &idx) in cache.argmax.iter().enumerate() {
            dst[idx] += grad_output.data()[o];
        }
        Ok(gx)
    }

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::MaxPool2d {
            kernel: self.kernel,
            stride: self.stride,
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(MaxPool2d {
            kernel: self.kernel,
            stride: self.stride,
            cache: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_2x2() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::new(
            &[1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6., 8., 14., 16.]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::new(&[1, 1, 2, 2], vec![1., 9., 3., 4.]).unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let g = Tensor::new(&[1, 1, 1, 1], vec![5.0]).unwrap();
        let gx = pool.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn overlapping_windows_accumulate() {
        let mut pool = MaxPool2d::new(2, 1);
        let x = Tensor::new(&[1, 1, 2, 3], vec![0., 9., 0., 0., 0., 0.]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[9., 9.]);
        let g = Tensor::new(&[1, 1, 1, 2], vec![1.0, 1.0]).unwrap();
        let gx = pool.backward(&g).unwrap();
        assert_eq!(gx.data()[1], 2.0);
    }

    #[test]
    fn rejects_small_input() {
        let mut pool = MaxPool2d::new(3, 1);
        assert!(pool
            .forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .is_err());
        assert!(pool.forward(&Tensor::zeros(&[2, 2]), Mode::Eval).is_err());
    }

    #[test]
    #[should_panic(expected = "kernel and stride")]
    fn zero_kernel_panics() {
        MaxPool2d::new(0, 1);
    }

    #[test]
    fn backward_requires_forward() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }
}
