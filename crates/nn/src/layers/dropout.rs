//! Inverted dropout.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};

/// Inverted dropout: in training mode each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)` so evaluation mode
/// is a plain identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: rand::rngs::StdRng,
    mask: Option<Tensor>,
    last_mode: Mode,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a fixed seed
    /// (training must be reproducible for the paper's paired comparisons).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        Dropout {
            p,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            mask: None,
            last_mode: Mode::Eval,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.last_mode = mode;
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::new(input.shape(), mask_data)?;
        let y = input.mul(&mask)?;
        self.mask = Some(mask);
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match (self.last_mode, &self.mask) {
            (Mode::Eval, _) | (Mode::Train, None) => Ok(grad_output.clone()),
            (Mode::Train, Some(mask)) => {
                if mask.shape() != grad_output.shape() {
                    return Err(NnError::Tensor(
                        advcomp_tensor::TensorError::ShapeMismatch {
                            lhs: grad_output.shape().to_vec(),
                            rhs: mask.shape().to_vec(),
                            op: "dropout backward",
                        },
                    ));
                }
                Ok(grad_output.mul(mask)?)
            }
        }
    }

    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::Dropout
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // The RNG is cloned at its current position so a replica trained
        // onward draws the same masks the original would have.
        Box::new(Dropout {
            p: self.p,
            rng: self.rng.clone(),
            mask: None,
            last_mode: Mode::Eval,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
        let g = d.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn train_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros = {zeros}");
        // Survivors are scaled so the expectation is preserved.
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[64])).unwrap();
        // Gradient is zero exactly where the output was dropped.
        for (o, gr) in y.data().iter().zip(g.data()) {
            assert_eq!(*o == 0.0, *gr == 0.0);
        }
    }

    #[test]
    fn p_zero_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::from_vec(vec![5.0; 8]);
        let y = d.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn invalid_p_panics() {
        Dropout::new(1.0, 0);
    }
}
