//! Fully-connected layer.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use crate::qweights::QuantizedWeights;
use crate::{NnError, Result};
use advcomp_qformat::QFormat;
use advcomp_tensor::{qmatmul_f32, simd, Init, QTensor, Tensor};
use rand::Rng;

/// A fully-connected (affine) layer: `y = x Wᵀ + b`.
///
/// Weight shape is `[out, in]`, bias `[out]`; inputs are `[batch, in]`.
///
/// In the frozen state ([`Layer::freeze_quantized`]) the weight lives as a
/// packed [`QuantizedWeights`] block tensor and the forward pass runs the
/// fused int8 GEMM ([`advcomp_tensor::qmatmul_f32`]): inputs are quantised
/// per row on entry, accumulated in i32 per block, and dequantised into the
/// f32 output, so outputs and the bias addition keep their f32 semantics.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    packed: Option<QuantizedWeights>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-initialised weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self::with_name("dense", in_features, out_features, rng)
    }

    /// Creates a named dense layer (names scope parameters, e.g. `"fc1"`).
    pub fn with_name<R: Rng + ?Sized>(
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let w = Init::Kaiming {
            mode: advcomp_tensor::FanMode::FanIn,
        }
        .tensor(&[out_features, in_features], rng);
        Dense {
            weight: Param::new(format!("{name}.weight"), w, ParamKind::Weight),
            bias: Param::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_features]),
                ParamKind::Bias,
            ),
            packed: None,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        match &self.packed {
            Some(q) => q.tensor().cols(),
            None => self.weight.value.shape()[1],
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        match &self.packed {
            Some(q) => q.tensor().rows(),
            None => self.weight.value.shape()[0],
        }
    }

    /// `true` when the weights are frozen into packed quantised form.
    pub fn is_frozen(&self) -> bool {
        self.packed.is_some()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if let Some(q) = &self.packed {
            let (m, n) = (input.shape()[0], q.tensor().rows());
            let mut out = vec![0.0f32; m * n];
            qmatmul_f32(
                simd::backend(),
                input.data(),
                m,
                q.act_format(),
                q.tensor(),
                &mut out,
            )?;
            let y = Tensor::new(&[m, n], out)?.add_row_broadcast(&self.bias.value)?;
            self.cached_input = None; // frozen layers are inference-only
            return Ok(y);
        }
        let wt = self.weight.value.t()?;
        let y = input.matmul(&wt)?;
        let y = y.add_row_broadcast(&self.bias.value)?;
        self.cached_input = Some(input.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.packed.is_some() {
            return Err(NnError::InvalidConfig(
                "dense: backward through frozen quantised weights (inference-only)".into(),
            ));
        }
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "dense" })?;
        // dL/dW = gᵀ x, dL/db = Σ_batch g, dL/dx = g W.
        let gw = grad_output.t()?.matmul(input)?;
        self.weight.grad.add_assign(&gw)?;
        let gb = grad_output.sum_axis0()?;
        self.bias.grad.add_assign(&gb)?;
        Ok(grad_output.matmul(&self.weight.value)?)
    }

    fn params(&self) -> Vec<&Param> {
        // The frozen weight is no longer an f32 parameter: it leaves the
        // param list so optimisers, pruning and f32 export skip it.
        match self.packed {
            Some(_) => vec![&self.bias],
            None => vec![&self.weight, &self.bias],
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self.packed {
            Some(_) => vec![&mut self.bias],
            None => vec![&mut self.weight, &mut self.bias],
        }
    }

    fn kind(&self) -> &'static str {
        "dense"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        let weight = match &self.packed {
            Some(q) => crate::layer::WeightRepr::Packed(q),
            None => crate::layer::WeightRepr::Dense(&self.weight.value),
        };
        crate::layer::LayerSpec::Dense {
            weight,
            bias: &self.bias.value,
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        // Replicas share the packed blocks (Arc), not a fresh copy.
        Box::new(Dense {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            packed: self.packed.clone(),
            cached_input: None,
        })
    }

    fn freeze_quantized(&mut self, weight_format: QFormat, act_format: QFormat) -> Result<bool> {
        if self.packed.is_some() {
            return Err(NnError::InvalidConfig(
                "dense: weights already frozen".into(),
            ));
        }
        let shape = self.weight.value.shape().to_vec();
        let qt = QTensor::quantize(self.weight.value.data(), &shape, weight_format)?;
        self.packed = Some(QuantizedWeights::new(qt, act_format));
        // Drop the f32 copy: the packed blocks are now the only weights.
        self.weight.value = Tensor::default();
        self.weight.grad = Tensor::default();
        Ok(true)
    }

    fn quantized_weights(&self) -> Option<(&str, &QuantizedWeights)> {
        self.packed.as_ref().map(|q| (self.weight.name.as_str(), q))
    }

    fn install_quantized_weights(
        &mut self,
        name: &str,
        weights: &QuantizedWeights,
    ) -> Result<bool> {
        if name != self.weight.name {
            return Ok(false);
        }
        let expected: &[usize] = match &self.packed {
            Some(q) => q.tensor().shape(),
            None => self.weight.value.shape(),
        };
        if weights.tensor().shape() != expected {
            return Err(NnError::InvalidConfig(format!(
                "shape mismatch for {name}: {:?} vs {:?}",
                expected,
                weights.tensor().shape()
            )));
        }
        self.packed = Some(weights.clone());
        self.weight.value = Tensor::default();
        self.weight.grad = Tensor::default();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = Dense::new(3, 2, &mut rng());
        // Overwrite params for a deterministic check.
        layer.params_mut()[0].value = Tensor::new(&[2, 3], vec![1., 0., 0., 0., 1., 0.]).unwrap();
        layer.params_mut()[1].value = Tensor::from_vec(vec![10.0, 20.0]);
        let x = Tensor::new(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Dense::new(3, 2, &mut rng());
        let g = Tensor::zeros(&[1, 2]);
        assert!(matches!(
            layer.backward(&g),
            Err(NnError::BackwardBeforeForward { layer: "dense" })
        ));
    }

    #[test]
    fn backward_gradients_exact_small_case() {
        let mut layer = Dense::new(2, 1, &mut rng());
        layer.params_mut()[0].value = Tensor::new(&[1, 2], vec![3.0, 4.0]).unwrap();
        layer.params_mut()[1].value = Tensor::from_vec(vec![0.0]);
        let x = Tensor::new(&[1, 2], vec![5.0, 6.0]).unwrap();
        layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::new(&[1, 1], vec![2.0]).unwrap();
        let gx = layer.backward(&g).unwrap();
        assert_eq!(gx.data(), &[6.0, 8.0]); // g * W
        assert_eq!(layer.params()[0].grad.data(), &[10.0, 12.0]); // gᵀ x
        assert_eq!(layer.params()[1].grad.data(), &[2.0]);
    }

    #[test]
    fn backward_accumulates() {
        let mut layer = Dense::new(2, 1, &mut rng());
        let x = Tensor::new(&[1, 2], vec![1.0, 1.0]).unwrap();
        layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::new(&[1, 1], vec![1.0]).unwrap();
        layer.backward(&g).unwrap();
        let first = layer.params()[1].grad.data()[0];
        layer.backward(&g).unwrap();
        assert_eq!(layer.params()[1].grad.data()[0], 2.0 * first);
    }

    #[test]
    fn param_names_scoped() {
        let layer = Dense::with_name("fc1", 4, 4, &mut rng());
        let names: Vec<_> = layer.params().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["fc1.weight", "fc1.bias"]);
    }

    #[test]
    fn matches_finite_difference() {
        use crate::{finite_diff_input_grad, Sequential};
        let mut net = Sequential::new(vec![Box::new(Dense::new(3, 2, &mut rng()))]);
        let x = Tensor::new(&[2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]).unwrap();
        let labels = vec![0usize, 1usize];
        let analytic = {
            let logits = net.forward(&x, Mode::Train).unwrap();
            let loss = crate::softmax_cross_entropy(&logits, &labels).unwrap();
            net.backward(&loss.grad).unwrap()
        };
        let numeric = finite_diff_input_grad(&mut net, &x, &labels, 1e-3).unwrap();
        assert!(analytic.allclose(&numeric, 1e-2));
    }
}
