//! Fixed-point activation quantisation with a straight-through estimator.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_qformat::QFormat;
use advcomp_tensor::Tensor;

/// Simulated fixed-point quantisation of activations.
///
/// When a [`QFormat`] is installed, the forward pass rounds every activation
/// to the nearest representable level and saturates at the format's range —
/// this is the "quantising activations" half of the paper's compression
/// scheme, and the source of the *clipping effect* §4.2 credits with the
/// marginal defence at low bitwidths.
///
/// The backward pass uses the clipped straight-through estimator: gradients
/// pass unchanged where the input was inside the representable range and are
/// zeroed where it saturated. When no format is installed the layer is an
/// identity, so model builders can place `FakeQuant` everywhere and enable
/// quantisation later without rebuilding.
#[derive(Debug, Default)]
pub struct FakeQuant {
    format: Option<QFormat>,
    pass_mask: Option<Tensor>,
    last_output: Option<Tensor>,
}

impl FakeQuant {
    /// Creates a disabled (identity) quantisation point.
    pub fn new() -> Self {
        FakeQuant::default()
    }

    /// Creates an enabled quantisation point.
    pub fn with_format(format: QFormat) -> Self {
        FakeQuant {
            format: Some(format),
            pass_mask: None,
            last_output: None,
        }
    }

    /// Installs or removes the quantisation format.
    pub fn set_format(&mut self, format: Option<QFormat>) {
        self.format = format;
    }

    /// Currently-installed format, if any.
    pub fn format(&self) -> Option<QFormat> {
        self.format
    }
}

impl Layer for FakeQuant {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        match self.format {
            None => {
                self.pass_mask = None;
                self.last_output = Some(input.clone());
                Ok(input.clone())
            }
            Some(q) => {
                let (lo, hi) = (q.min_value(), q.max_value());
                let mask = input.map(|v| if (lo..=hi).contains(&v) { 1.0 } else { 0.0 });
                let y = input.map(|v| q.quantize(v));
                self.pass_mask = Some(mask);
                self.last_output = Some(y.clone());
                Ok(y)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.last_output.is_none() {
            return Err(NnError::BackwardBeforeForward { layer: "fakequant" });
        }
        match &self.pass_mask {
            None => Ok(grad_output.clone()),
            Some(mask) => Ok(grad_output.mul(mask)?),
        }
    }

    fn kind(&self) -> &'static str {
        "fakequant"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::FakeQuant {
            format: self.format,
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(FakeQuant {
            format: self.format,
            pass_mask: None,
            last_output: None,
        })
    }

    fn last_output(&self) -> Option<&Tensor> {
        self.last_output.as_ref()
    }

    fn set_activation_format(&mut self, format: Option<QFormat>) -> bool {
        self.set_format(format);
        true
    }

    fn activation_format(&self) -> Option<QFormat> {
        self.format
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_identity() {
        let mut fq = FakeQuant::new();
        let x = Tensor::from_vec(vec![0.33, -7.5]);
        let y = fq.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
        let g = fq.backward(&Tensor::ones(&[2])).unwrap();
        assert_eq!(g.data(), &[1.0, 1.0]);
    }

    #[test]
    fn quantises_to_levels() {
        let q = QFormat::new(1, 3).unwrap(); // step 0.125, range [-1, 0.875]
        let mut fq = FakeQuant::with_format(q);
        let x = Tensor::from_vec(vec![0.3, -0.99, 5.0]);
        let y = fq.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[0.25, -1.0, 0.875]);
    }

    #[test]
    fn ste_zeroes_saturated_gradients() {
        let q = QFormat::new(1, 3).unwrap();
        let mut fq = FakeQuant::with_format(q);
        let x = Tensor::from_vec(vec![0.3, 5.0, -5.0]);
        fq.forward(&x, Mode::Train).unwrap();
        let g = fq.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(g.data(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn format_toggle() {
        let mut fq = FakeQuant::new();
        assert!(fq.format().is_none());
        let q = QFormat::for_bitwidth(8).unwrap();
        fq.set_format(Some(q));
        assert_eq!(fq.format(), Some(q));
        fq.set_format(None);
        assert!(fq.format().is_none());
    }

    #[test]
    fn backward_requires_forward() {
        let mut fq = FakeQuant::new();
        assert!(fq.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn exposes_quantised_activations() {
        let q = QFormat::new(1, 3).unwrap();
        let mut fq = FakeQuant::with_format(q);
        fq.forward(&Tensor::from_vec(vec![0.3]), Mode::Eval)
            .unwrap();
        assert_eq!(fq.last_output().unwrap().data(), &[0.25]);
    }
}
