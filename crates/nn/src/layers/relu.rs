//! Rectified linear activation.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_tensor::Tensor;

/// `y = max(0, x)` elementwise.
///
/// Retains its last output so activation distributions can be sampled for
/// the paper's Figure 6 CDFs.
#[derive(Debug, Default)]
pub struct Relu {
    last_output: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { last_output: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = input.relu();
        self.last_output = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let y = self
            .last_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "relu" })?;
        Ok(grad_output.zip_map(y, |g, out| if out > 0.0 { g } else { 0.0 })?)
    }

    fn kind(&self) -> &'static str {
        "relu"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::Relu
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Relu { last_output: None })
    }

    fn last_output(&self) -> Option<&Tensor> {
        self.last_output.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0]);
        let y = relu.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0]);
        relu.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![10.0, 10.0, 10.0]);
        let gx = relu.backward(&g).unwrap();
        // Subgradient at exactly 0 chosen as 0 (matches TF's relu_grad).
        assert_eq!(gx.data(), &[0.0, 0.0, 10.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn exposes_last_output() {
        let mut relu = Relu::new();
        assert!(relu.last_output().is_none());
        relu.forward(&Tensor::from_vec(vec![1.0]), Mode::Eval)
            .unwrap();
        assert_eq!(relu.last_output().unwrap().data(), &[1.0]);
    }
}
