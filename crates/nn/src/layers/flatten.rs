//! Shape adapter between conv stacks and dense heads.

use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use advcomp_tensor::{Tensor, TensorError};

/// Flattens `[n, d1, d2, ...]` to `[n, d1·d2·...]`, preserving the batch
/// axis. The backward pass restores the original shape.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.ndim() < 2 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 2,
                actual: input.ndim(),
                op: "flatten",
            }));
        }
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        self.cached_shape = Some(input.shape().to_vec());
        Ok(input.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "flatten" })?;
        Ok(grad_output.reshape(shape)?)
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }

    fn spec(&self) -> crate::layer::LayerSpec<'_> {
        crate::layer::LayerSpec::Flatten
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Flatten { cached_shape: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = f.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let gx = f.backward(&Tensor::ones(&[2, 60])).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn rejects_vectors() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 2])).is_err());
    }
}
