//! Concrete layer implementations.

mod activation;
mod avgpool;
mod batchnorm;
mod conv;
mod dense;
mod dropout;
mod fakequant;
mod flatten;
mod pool;
mod relu;

pub use activation::{Sigmoid, Tanh};
pub use avgpool::AvgPool2d;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use fakequant::FakeQuant;
pub use flatten::Flatten;
pub use pool::MaxPool2d;
pub use relu::Relu;
