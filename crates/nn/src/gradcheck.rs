//! Finite-difference gradient checking.
//!
//! Central-difference estimates of loss gradients, used by the test suites
//! of every layer to validate analytic backpropagation. Slow by design —
//! test-only.

use crate::loss::softmax_cross_entropy;
use crate::sequential::Sequential;
use crate::{Mode, NnError, Result};
use advcomp_tensor::Tensor;

/// Numerically estimates `dLoss/dInput` by central differences in
/// [`Mode::Eval`].
///
/// # Errors
///
/// Propagates forward/loss errors.
pub fn finite_diff_input_grad(
    net: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    eps: f32,
) -> Result<Tensor> {
    finite_diff_input_grad_with_mode(net, x, labels, eps, Mode::Eval)
}

/// Numerically estimates `dLoss/dInput` under an explicit forward [`Mode`].
///
/// Train mode is needed to check layers whose forward pass differs between
/// modes — BatchNorm normalises with batch statistics only in
/// [`Mode::Train`]. Only deterministic train-mode layers can be checked
/// this way (Dropout resamples its mask per forward, so its perturbed
/// losses are not differentiable samples of one function).
///
/// # Errors
///
/// Propagates forward/loss errors.
pub fn finite_diff_input_grad_with_mode(
    net: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    eps: f32,
    mode: Mode,
) -> Result<Tensor> {
    let mut grad = Tensor::zeros(x.shape());
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let lp = loss_of(net, &xp, labels, mode)?;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lm = loss_of(net, &xm, labels, mode)?;
        grad.data_mut()[i] = (lp - lm) / (2.0 * eps);
    }
    Ok(grad)
}

/// Numerically estimates `dLoss/dParam` for the named parameter in
/// [`Mode::Eval`].
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the parameter name is unknown,
/// plus forward/loss errors.
pub fn finite_diff_param_grad(
    net: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    param_name: &str,
    eps: f32,
) -> Result<Tensor> {
    finite_diff_param_grad_with_mode(net, x, labels, param_name, eps, Mode::Eval)
}

/// Numerically estimates `dLoss/dParam` under an explicit forward [`Mode`]
/// (see [`finite_diff_input_grad_with_mode`] for when that matters).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the parameter name is unknown,
/// plus forward/loss errors.
pub fn finite_diff_param_grad_with_mode(
    net: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    param_name: &str,
    eps: f32,
    mode: Mode,
) -> Result<Tensor> {
    let n = {
        let p = net
            .param(param_name)
            .ok_or_else(|| NnError::InvalidConfig(format!("unknown parameter {param_name}")))?;
        p.len()
    };
    let shape = net
        .param(param_name)
        .expect("checked above")
        .value
        .shape()
        .to_vec();
    let mut grad = Tensor::zeros(&shape);
    for i in 0..n {
        let original = net.param(param_name).expect("checked above").value.data()[i];
        net.param_mut(param_name)
            .expect("checked above")
            .value
            .data_mut()[i] = original + eps;
        let lp = loss_of(net, x, labels, mode)?;
        net.param_mut(param_name)
            .expect("checked above")
            .value
            .data_mut()[i] = original - eps;
        let lm = loss_of(net, x, labels, mode)?;
        net.param_mut(param_name)
            .expect("checked above")
            .value
            .data_mut()[i] = original;
        grad.data_mut()[i] = (lp - lm) / (2.0 * eps);
    }
    Ok(grad)
}

fn loss_of(net: &mut Sequential, x: &Tensor, labels: &[usize], mode: Mode) -> Result<f32> {
    let logits = net.forward(x, mode)?;
    Ok(softmax_cross_entropy(&logits, labels)?.loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::SeedableRng;

    #[test]
    fn mlp_gradients_match() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut net = Sequential::new(vec![
            Box::new(Dense::with_name("a", 5, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::with_name("b", 7, 4, &mut rng)),
        ]);
        let x = advcomp_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[3, 5], &mut rng);
        let labels = vec![0usize, 3, 2];

        let logits = net.forward(&x, Mode::Eval).unwrap();
        let loss = softmax_cross_entropy(&logits, &labels).unwrap();
        net.zero_grad();
        let analytic_input = net.backward(&loss.grad).unwrap();
        let analytic_w = net.param("a.weight").unwrap().grad.clone();
        let analytic_b = net.param("b.bias").unwrap().grad.clone();

        let num_input = finite_diff_input_grad(&mut net, &x, &labels, 1e-3).unwrap();
        assert!(analytic_input.allclose(&num_input, 1e-2));
        let num_w = finite_diff_param_grad(&mut net, &x, &labels, "a.weight", 1e-3).unwrap();
        assert!(analytic_w.allclose(&num_w, 1e-2));
        let num_b = finite_diff_param_grad(&mut net, &x, &labels, "b.bias", 1e-3).unwrap();
        assert!(analytic_b.allclose(&num_b, 1e-2));
    }

    #[test]
    fn unknown_param_name_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, &mut rng))]);
        let x = Tensor::zeros(&[1, 2]);
        assert!(finite_diff_param_grad(&mut net, &x, &[0], "nope", 1e-3).is_err());
    }
}
