//! Trainable parameters.

use advcomp_tensor::Tensor;

/// Role a parameter plays inside its layer.
///
/// Compression treats the two differently: the paper prunes and quantises
/// *weights* (and activations) but leaves biases in full precision, the
/// standard practice its Mayo tool follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A multiplicative kernel (dense or convolutional weight matrix).
    Weight,
    /// An additive bias vector.
    Bias,
}

/// A named trainable tensor with its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Unique name within the network, e.g. `"conv1.weight"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated since the last [`Param::zero_grad`].
    pub grad: Tensor,
    /// Whether this is a weight or a bias.
    pub kind: ParamKind,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(name: impl Into<String>, value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            name: name.into(),
            value,
            grad,
            kind,
        }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 2]), ParamKind::Weight);
        assert_eq!(p.grad.shape(), &[2, 2]);
        assert_eq!(p.grad.l0_norm(), 0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new("b", Tensor::ones(&[3]), ParamKind::Bias);
        p.grad.data_mut().fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
    }
}
