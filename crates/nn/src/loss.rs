//! Classification losses and metrics.

use crate::{NnError, Result};
use advcomp_tensor::{simd, Tensor, TensorError};

/// Loss value plus the gradient to seed backpropagation with.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `dLoss/dLogits`, shaped like the logit matrix.
    pub grad: Tensor,
}

/// Numerically-stable row-wise softmax of a `[batch, classes]` matrix.
///
/// # Errors
///
/// Returns a rank error unless `logits` is 2-D.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.ndim() != 2 {
        return Err(NnError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: logits.ndim(),
            op: "softmax",
        }));
    }
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    let be = simd::backend();
    let mut out = logits.clone();
    for i in 0..m {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        let max = simd::max_slice(be, row);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy `J(θ, X, y)` over a batch, with its gradient
/// with respect to the logits (`(softmax - onehot) / batch`).
///
/// This is the cost function every gradient-based attack in the paper
/// differentiates (Equations 4–5).
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] when label count differs from the
/// batch, [`NnError::LabelOutOfRange`] for a bad label, and
/// [`NnError::NonFinite`] if the logits contain NaN/Inf.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.ndim() != 2 {
        return Err(NnError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: logits.ndim(),
            op: "softmax_cross_entropy",
        }));
    }
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != m {
        return Err(NnError::BatchMismatch {
            logits: m,
            labels: labels.len(),
        });
    }
    if logits.has_non_finite() {
        return Err(NnError::NonFinite { context: "logits" });
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        if label >= n {
            return Err(NnError::LabelOutOfRange { label, classes: n });
        }
        let p = probs.data()[i * n + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * n + label] -= 1.0;
    }
    let scale = 1.0 / m as f32;
    grad.scale_inplace(scale);
    Ok(LossOutput {
        loss: loss * scale,
        grad,
    })
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] when label count differs from rows.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(NnError::BatchMismatch {
            logits: preds.len(),
            labels: labels.len(),
        });
    }
    if preds.is_empty() {
        return Ok(0.0);
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f64 / labels.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&l).unwrap();
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let l = Tensor::new(&[1, 2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&l).unwrap();
        assert!(!p.has_non_finite());
        assert!(p.data()[1] > p.data()[0]);
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let l = Tensor::new(&[1, 3], vec![10.0, 0.0, 0.0]).unwrap();
        let out = softmax_cross_entropy(&l, &[0]).unwrap();
        assert!(out.loss < 1e-3);
        // Gradient points away from increasing the true logit.
        assert!(out.grad.data()[0] < 0.0);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let l = Tensor::zeros(&[1, 10]);
        let out = softmax_cross_entropy(&l, &[4]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let l = Tensor::new(&[2, 3], vec![0.5, -1.0, 2.0, 0.0, 0.0, 0.0]).unwrap();
        let out = softmax_cross_entropy(&l, &[2, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let l = Tensor::new(&[1, 3], vec![0.3, -0.7, 1.1]).unwrap();
        let labels = [1usize];
        let out = softmax_cross_entropy(&l, &labels).unwrap();
        let eps = 1e-3;
        for j in 0..3 {
            let mut lp = l.clone();
            lp.data_mut()[j] += eps;
            let mut lm = l.clone();
            lm.data_mut()[j] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &labels).unwrap().loss;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - out.grad.data()[j]).abs() < 1e-3);
        }
    }

    #[test]
    fn validation_errors() {
        let l = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            softmax_cross_entropy(&l, &[0]),
            Err(NnError::BatchMismatch { .. })
        ));
        assert!(matches!(
            softmax_cross_entropy(&l, &[0, 5]),
            Err(NnError::LabelOutOfRange {
                label: 5,
                classes: 3
            })
        ));
        let bad = Tensor::new(&[1, 2], vec![f32::NAN, 0.0]).unwrap();
        assert!(matches!(
            softmax_cross_entropy(&bad, &[0]),
            Err(NnError::NonFinite { .. })
        ));
    }

    #[test]
    fn accuracy_counts() {
        let l = Tensor::new(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((accuracy(&l, &[0, 1, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!(accuracy(&l, &[0]).is_err());
    }
}
