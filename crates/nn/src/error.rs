use advcomp_tensor::TensorError;
use std::fmt;

/// Errors produced by network construction, forward or backward passes.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (almost always a shape bug).
    Tensor(TensorError),
    /// `backward` was called before `forward` populated the layer cache.
    BackwardBeforeForward {
        /// Layer kind, e.g. `"dense"`.
        layer: &'static str,
    },
    /// Labels passed to a loss don't match the batch dimension.
    BatchMismatch {
        /// Rows of the logit matrix.
        logits: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label index exceeded the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// The network produced NaN or infinite values.
    NonFinite {
        /// Where the non-finite value was observed.
        context: &'static str,
    },
    /// Configuration error (bad hyper-parameter, empty network, ...).
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on {layer} layer")
            }
            NnError::BatchMismatch { logits, labels } => {
                write!(
                    f,
                    "logit batch {logits} does not match label count {labels}"
                )
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::NonFinite { context } => {
                write!(f, "non-finite values encountered in {context}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error() {
        let te = TensorError::Empty("max");
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
        assert!(ne.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&ne).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(NnError::BackwardBeforeForward { layer: "dense" }
            .to_string()
            .contains("dense"));
        assert!(NnError::BatchMismatch {
            logits: 4,
            labels: 3
        }
        .to_string()
        .contains('4'));
        assert!(NnError::LabelOutOfRange {
            label: 12,
            classes: 10
        }
        .to_string()
        .contains("12"));
    }
}
