//! Replica-safety contract for eval-mode inference (the serving engine's
//! correctness precondition).
//!
//! Serving workers each own a [`Sequential`] replica produced by `clone()`.
//! That is only sound if an eval-mode forward pass mutates nothing but the
//! layer's transient backward cache: parameters, batch-norm running
//! statistics and the dropout RNG position must be bit-identical afterwards,
//! and two replicas evaluating the same input on different threads must
//! produce bit-identical outputs.

use advcomp_nn::{
    BatchNorm2d, Conv2d, Dense, Dropout, FakeQuant, Flatten, MaxPool2d, Mode, Relu, Sequential,
};
use advcomp_tensor::{Init, Tensor};
use rand::SeedableRng;

/// A network touching every layer with interior state: conv (im2col
/// scratch), batch-norm (running stats), dropout (RNG), fakequant (mask).
fn stateful_net(seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net = Sequential::new(vec![
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv1", 1, 4, 3, 1, 1, &mut rng)),
        Box::new(BatchNorm2d::with_name("bn1", 4)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dropout::new(0.5, 11)),
        Box::new(Dense::with_name("fc1", 4 * 4 * 4, 10, &mut rng)),
    ]);
    // Warm the BN running statistics so eval mode has non-trivial state.
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let warm = Init::Normal {
        mean: 0.3,
        std: 1.0,
    }
    .tensor(&[4, 1, 8, 8], &mut rng2);
    net.forward(&warm, Mode::Train).unwrap();
    net
}

fn input(seed: u64, n: usize) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[n, 1, 8, 8], &mut rng)
}

#[test]
fn concurrent_eval_on_clones_is_bit_identical() {
    let base = stateful_net(3);
    let x = input(5, 3);
    let mut handles = Vec::new();
    for _ in 0..2 {
        let mut replica = base.clone();
        let xc = x.clone();
        handles.push(std::thread::spawn(move || {
            // Several passes: later outputs must not depend on pass count.
            let mut last = None;
            for _ in 0..3 {
                last = Some(replica.forward(&xc, Mode::Eval).unwrap());
            }
            last.unwrap().into_data()
        }));
    }
    let a = handles.pop().unwrap().join().unwrap();
    let b = handles.pop().unwrap().join().unwrap();
    assert_eq!(a, b, "replica eval forwards diverged");
}

#[test]
fn eval_forward_preserves_persistent_state() {
    let mut net = stateful_net(7);
    let x = input(9, 2);
    let params_before = net.export_params();
    let bn_mean_before: Vec<f32> = bn_running_mean(&net);
    let y1 = net.forward(&x, Mode::Eval).unwrap();
    let y2 = net.forward(&x, Mode::Eval).unwrap();
    // Eval is a pure function of (state, input): repeated calls agree ...
    assert_eq!(y1.data(), y2.data());
    // ... and nothing persistent moved.
    let params_after = net.export_params();
    for ((n1, t1), (n2, t2)) in params_before.iter().zip(&params_after) {
        assert_eq!(n1, n2);
        assert_eq!(t1.data(), t2.data(), "parameter {n1} mutated by eval");
    }
    assert_eq!(bn_mean_before, bn_running_mean(&net), "BN stats mutated");
}

#[test]
fn eval_forward_does_not_advance_dropout_rng() {
    // Two clones; one runs extra eval passes first. If eval drew from the
    // dropout RNG, the subsequent train-mode masks would differ.
    let base = stateful_net(13);
    let mut a = base.clone();
    let mut b = base.clone();
    let x = input(17, 2);
    for _ in 0..4 {
        a.forward(&x, Mode::Eval).unwrap();
    }
    let ya = a.forward(&x, Mode::Train).unwrap();
    let yb = b.forward(&x, Mode::Train).unwrap();
    assert_eq!(
        ya.data(),
        yb.data(),
        "eval forward advanced the dropout RNG"
    );
}

fn bn_running_mean(net: &Sequential) -> Vec<f32> {
    // BatchNorm running stats are not exported as params; reach the layer
    // through its concrete type via a fresh forward comparison instead:
    // clone the net and read eval outputs on a probe. Bit-identical eval
    // outputs before/after imply unchanged running stats, but we also keep
    // an explicit probe for a sharper failure message.
    let mut probe_net = net.clone();
    let probe = Tensor::ones(&[1, 1, 8, 8]);
    probe_net
        .forward(&probe, Mode::Eval)
        .expect("probe forward")
        .into_data()
}
