//! Exhaustive finite-difference gradient checks over layer combinations,
//! including the compression-specific layers (FakeQuant STE) and pooling —
//! the correctness backbone of every attack and training result.

use advcomp_nn::{
    finite_diff_input_grad, finite_diff_param_grad, softmax_cross_entropy, Conv2d, Dense, Dropout,
    FakeQuant, Flatten, Layer, MaxPool2d, Mode, Relu, Sequential,
};
use advcomp_qformat::QFormat;
use advcomp_tensor::{Init, Tensor};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

// Comparison policy: aggregate relative L2 error, not elementwise bounds.
// The loss is only piecewise smooth (ReLU kinks, max-pool argmax flips), so
// a finite-difference probe can be badly wrong in isolated elements whose
// probe step crosses a kink while the gradient field as a whole is correct.
// Elementwise `allclose` made these checks dependent on which `rand` stream
// initialised the weights (a kink landing near a probe point is a lottery);
// the relative-norm statistic is robust to it. Same policy as
// `deep_lenet_style_gradcheck` below and `TESTING.md`.
fn rel_l2(analytic: &Tensor, numeric: &Tensor) -> f32 {
    let diff = analytic.sub(numeric).unwrap().l2_norm();
    diff / numeric.l2_norm().max(1e-6)
}

fn check_input_grad(net: &mut Sequential, x: &Tensor, labels: &[usize], threshold: f32) {
    let logits = net.forward(x, Mode::Eval).unwrap();
    let loss = softmax_cross_entropy(&logits, labels).unwrap();
    net.zero_grad();
    let analytic = net.backward(&loss.grad).unwrap();
    let numeric = finite_diff_input_grad(net, x, labels, 1e-3).unwrap();
    let err = rel_l2(&analytic, &numeric);
    assert!(
        err < threshold,
        "input gradient relative-L2 error {err} >= {threshold}"
    );
}

fn check_param_grad(
    net: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    name: &str,
    threshold: f32,
) {
    let logits = net.forward(x, Mode::Eval).unwrap();
    let loss = softmax_cross_entropy(&logits, labels).unwrap();
    net.zero_grad();
    net.backward(&loss.grad).unwrap();
    let analytic = net.param(name).unwrap().grad.clone();
    let numeric = finite_diff_param_grad(net, x, labels, name, 1e-3).unwrap();
    let err = rel_l2(&analytic, &numeric);
    assert!(
        err < threshold,
        "param {name} gradient relative-L2 error {err} >= {threshold}"
    );
}

#[test]
fn conv_pool_dense_stack() {
    let mut r = rng(1);
    let mut net = Sequential::new(vec![
        Box::new(Conv2d::with_name("c1", 1, 3, 3, 1, 1, &mut r)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("d1", 3 * 3 * 3, 4, &mut r)),
    ]);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[2, 1, 6, 6], &mut r);
    let labels = vec![1usize, 3];
    check_input_grad(&mut net, &x, &labels, 3e-2);
    check_param_grad(&mut net, &x, &labels, "c1.weight", 3e-2);
    check_param_grad(&mut net, &x, &labels, "c1.bias", 3e-2);
    check_param_grad(&mut net, &x, &labels, "d1.weight", 3e-2);
}

#[test]
fn stacked_convolutions() {
    let mut r = rng(2);
    let mut net = Sequential::new(vec![
        Box::new(Conv2d::with_name("c1", 2, 4, 3, 1, 1, &mut r)),
        Box::new(Relu::new()),
        Box::new(Conv2d::with_name("c2", 4, 2, 3, 2, 0, &mut r)),
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("d", 2 * 2 * 2, 3, &mut r)),
    ]);
    let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[1, 2, 5, 5], &mut r);
    let labels = vec![2usize];
    check_input_grad(&mut net, &x, &labels, 3e-2);
    check_param_grad(&mut net, &x, &labels, "c2.weight", 3e-2);
}

#[test]
fn fakequant_ste_passes_in_range_gradients() {
    // With a wide format and in-range inputs, FakeQuant's STE should be
    // gradient-transparent: the analytic gradient equals the plain net's.
    let mut r = rng(3);
    let w = Init::Uniform { lo: -0.4, hi: 0.4 }.tensor(&[3, 4], &mut r);
    let build = |with_fq: bool, w: &Tensor| -> Sequential {
        let mut rr = rng(99);
        let mut layers: Vec<Box<dyn advcomp_nn::Layer>> = Vec::new();
        if with_fq {
            layers.push(Box::new(FakeQuant::with_format(
                QFormat::new(4, 20).unwrap(),
            )));
        }
        let mut dense = Dense::with_name("d", 4, 3, &mut rr);
        dense.params_mut()[0].value = w.clone();
        layers.push(Box::new(dense));
        Sequential::new(layers)
    };
    let x = Init::Uniform { lo: 0.1, hi: 0.9 }.tensor(&[2, 4], &mut r);
    let labels = vec![0usize, 2];

    let mut plain = build(false, &w);
    let logits = plain.forward(&x, Mode::Eval).unwrap();
    let loss = softmax_cross_entropy(&logits, &labels).unwrap();
    let g_plain = plain.backward(&loss.grad).unwrap();

    let mut fq = build(true, &w);
    let logits = fq.forward(&x, Mode::Eval).unwrap();
    let loss = softmax_cross_entropy(&logits, &labels).unwrap();
    let g_fq = fq.backward(&loss.grad).unwrap();

    // Q4.20 has resolution ~1e-6: activations and logits are essentially
    // unquantised, so gradients agree tightly.
    assert!(g_plain.allclose(&g_fq, 1e-3));
}

#[test]
fn fakequant_ste_blocks_saturated_gradients() {
    let q = QFormat::new(1, 3).unwrap(); // range [-1, 0.875]
    let mut net = Sequential::new(vec![Box::new(FakeQuant::with_format(q))]);
    let x = Tensor::new(&[1, 3], vec![0.5, 3.0, -3.0]).unwrap();
    net.forward(&x, Mode::Eval).unwrap();
    let g = net.backward(&Tensor::ones(&[1, 3])).unwrap();
    assert_eq!(g.data(), &[1.0, 0.0, 0.0]);
}

#[test]
fn dropout_eval_does_not_perturb_gradients() {
    let mut r = rng(4);
    let mut net = Sequential::new(vec![
        Box::new(Dense::with_name("d1", 4, 8, &mut r)),
        Box::new(Dropout::new(0.5, 0)),
        Box::new(Relu::new()),
        Box::new(Dense::with_name("d2", 8, 2, &mut r)),
    ]);
    let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[3, 4], &mut r);
    let labels = vec![0usize, 1, 0];
    // Eval mode: dropout is identity, so gradcheck must pass exactly.
    check_input_grad(&mut net, &x, &labels, 2e-2);
}

#[test]
fn gradients_accumulate_across_backwards() {
    let mut r = rng(5);
    let mut net = Sequential::new(vec![Box::new(Dense::with_name("d", 3, 2, &mut r))]);
    let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[2, 3], &mut r);
    net.forward(&x, Mode::Train).unwrap();
    let g = Tensor::ones(&[2, 2]);
    net.backward(&g).unwrap();
    let once = net.param("d.weight").unwrap().grad.clone();
    net.backward(&g).unwrap();
    let twice = net.param("d.weight").unwrap().grad.clone();
    assert!(twice.allclose(&once.scale(2.0), 1e-5));
    net.zero_grad();
    assert_eq!(net.param("d.weight").unwrap().grad.l0_norm(), 0);
}

#[test]
fn deep_lenet_style_gradcheck() {
    // A miniature LeNet (conv-pool-conv-pool-dense) on 8x8 input: the
    // full composition used by the real models, gradient-checked end to end.
    let mut r = rng(6);
    let mut net = Sequential::new(vec![
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("c1", 1, 2, 3, 1, 1, &mut r)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Conv2d::with_name("c2", 2, 4, 3, 1, 0, &mut r)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("fc", 4, 3, &mut r)),
    ]);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[2, 1, 8, 8], &mut r);
    let labels = vec![0usize, 2];
    // Max-pool argmaxes can flip under the finite-difference probe (the
    // loss is only piecewise smooth), so compare gradients in relative norm
    // rather than elementwise.
    let logits = net.forward(&x, Mode::Eval).unwrap();
    let loss = softmax_cross_entropy(&logits, &labels).unwrap();
    net.zero_grad();
    let analytic = net.backward(&loss.grad).unwrap();
    let numeric = finite_diff_input_grad(&mut net, &x, &labels, 1e-3).unwrap();
    let diff = analytic.sub(&numeric).unwrap().l2_norm();
    let denom = numeric.l2_norm().max(1e-6);
    assert!(
        diff / denom < 0.05,
        "relative input-gradient error {}",
        diff / denom
    );
    for name in ["c1.weight", "fc.bias"] {
        let analytic = net.param(name).unwrap().grad.clone();
        let numeric = finite_diff_param_grad(&mut net, &x, &labels, name, 1e-3).unwrap();
        let diff = analytic.sub(&numeric).unwrap().l2_norm();
        let denom = numeric.l2_norm().max(1e-6);
        assert!(
            diff / denom < 0.05,
            "relative {name} gradient error {}",
            diff / denom
        );
    }
}
