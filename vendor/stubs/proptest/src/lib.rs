//! Offline functional stub of the `proptest` subset used by advcomp:
//! random sampling without shrinking. Failures report the first failing case.

pub mod test_runner {
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject,
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64, same generator family as the rand stub.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 1000 consecutive samples");
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `any::<T>()` support for the primitive types the workspace fuzzes.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.end > self.start);
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    use super::{test_runner::TestRng, Strategy};

    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?} at {}:{}",
                a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}: {} at {}:{}",
                a, b, format!($($fmt)*), file!(), line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::new(
                    0x5eed ^ (line!() as u64) << 16,
                );
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases && attempts < config.cases * 20 {
                    attempts += 1;
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body #[allow(unreachable_code)] Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strategy),*) $body)*
        }
    };
}
