//! Offline mini-serde: enough of the `serde` surface for advcomp to compile
//! and for `serde_json::to_string_pretty` to emit real JSON for the simple
//! record types the workspace serialises.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    fn to_json(&self) -> String;
}

pub trait Deserialize<'de>: Sized {}

macro_rules! impl_display_json {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> String {
                let v = format!("{}", self);
                if v == "NaN" || v == "inf" || v == "-inf" { "null".into() } else { v }
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_display_json!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Serialize for String {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl<'de> Deserialize<'de> for String {}

impl Serialize for str {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<'de, T> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|v| v.to_json()).collect();
        format!("[{}]", items.join(", "))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".into(),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T> {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> String {
        format!("[{}, {}]", self.0.to_json(), self.1.to_json())
    }
}
