//! Offline stub of the `parking_lot` API surface used by advcomp, backed by
//! std primitives (poisoning is swallowed, matching parking_lot semantics).

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
