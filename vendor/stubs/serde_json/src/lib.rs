//! Offline stub of the `serde_json` entry points used by advcomp, backed by
//! the mini-serde `to_json` method. `to_string` is compact; `to_string_pretty`
//! re-formats the compact output with real 2-space indentation so
//! human-readable result files match what the real crate would produce.

#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serialisation error")
    }
}

impl std::error::Error for Error {}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_json()))
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json())
}

/// Re-indent a compact JSON document (as emitted by mini-serde `to_json`)
/// with 2-space indentation, matching `serde_json`'s pretty printer: every
/// array element / object member on its own line, `": "` after keys, empty
/// containers kept as `[]` / `{}`.
fn pretty(compact: &str) -> String {
    let bytes = compact.as_bytes();
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut i = 0usize;

    fn newline(out: &mut String, depth: usize) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '"' => {
                // Copy the whole string literal verbatim, honouring escapes.
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    out.push(b as char);
                    i += 1;
                    if b == b'\\' {
                        if i < bytes.len() {
                            out.push(bytes[i] as char);
                            i += 1;
                        }
                    } else if b == b'"' {
                        break;
                    }
                }
                continue;
            }
            '{' | '[' => {
                let close = if c == '{' { b'}' } else { b']' };
                // Peek past whitespace: keep empty containers on one line.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_ascii_whitespace() {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == close {
                    out.push(c);
                    out.push(close as char);
                    i = j + 1;
                    continue;
                }
                out.push(c);
                depth += 1;
                newline(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(',');
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            w if w.is_ascii_whitespace() => {}
            other => out.push(other),
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::pretty;

    #[test]
    fn pretty_indents_nested_containers() {
        let compact = r#"{"a": 1, "b": [1, 2], "c": {"d": "x,y: z"}, "e": []}"#;
        let expect = "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ],\n  \"c\": {\n    \"d\": \"x,y: z\"\n  },\n  \"e\": []\n}";
        assert_eq!(pretty(compact), expect);
    }

    #[test]
    fn pretty_preserves_escaped_quotes_in_strings() {
        let compact = r#"["he said \"hi\"", "brace } colon : comma ,"]"#;
        let expect = "[\n  \"he said \\\"hi\\\"\",\n  \"brace } colon : comma ,\"\n]";
        assert_eq!(pretty(compact), expect);
    }
}
