//! Offline stub of the `rand_distr` 0.4 API surface used by advcomp.

use rand::Rng;

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: Copy> Uniform<T> {
    pub fn new(lo: T, hi: T) -> Self {
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: rand::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.lo, self.hi, self.inclusive)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "normal distribution requires a finite, non-negative std")
    }
}

impl std::error::Error for NormalError {}

#[derive(Debug, Clone, Copy)]
pub struct Normal<T> {
    mean: T,
    std: T,
}

/// Float kinds the stub `Normal` supports.
pub trait NormalFloat: Copy {
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
    fn valid_std(self) -> bool;
}

impl NormalFloat for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn valid_std(self) -> bool {
        self >= 0.0 && self.is_finite()
    }
}

impl NormalFloat for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn valid_std(self) -> bool {
        self >= 0.0 && self.is_finite()
    }
}

impl<T: NormalFloat> Normal<T> {
    pub fn new(mean: T, std: T) -> Result<Self, NormalError> {
        if !std.valid_std() {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std })
    }
}

impl<T: NormalFloat> Distribution<T> for Normal<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        // Box-Muller on two uniform draws.
        let u1: f64 = <f64 as rand::Standard>::draw(rng).max(1e-12);
        let u2: f64 = <f64 as rand::Standard>::draw(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        T::from_f64(self.mean.to_f64() + self.std.to_f64() * z)
    }
}
