//! Offline functional stub of the `bytes` 1.x subset used by advcomp's
//! checkpoint format (little-endian put/get over growable/consumable byte
//! buffers).

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}
