//! Derive macros for the offline mini-serde. Handles named-field structs and
//! unit-variant enums (the only shapes the advcomp workspace derives on).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    is_enum: bool,
    name: String,
    members: Vec<String>, // field names or variant names
}

fn parse(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut is_enum = false;
    let mut name = String::new();
    let mut body = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the attribute group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    is_enum = s == "enum";
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        name = n.to_string();
                    }
                    for rest in iter.by_ref() {
                        if let TokenTree::Group(g) = rest {
                            if g.delimiter() == Delimiter::Brace {
                                body = Some(g.stream());
                                break;
                            }
                        }
                    }
                    break;
                }
                // `pub`, `pub(crate)` etc. — skip.
            }
            _ => {}
        }
    }
    let mut members = Vec::new();
    if let Some(body) = body {
        let mut angle_depth = 0i32;
        let mut expect_member = true;
        let mut iter = body.into_iter().peekable();
        while let Some(tt) = iter.next() {
            match tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => expect_member = true,
                    '#' => {
                        iter.next();
                    }
                    _ => {}
                },
                TokenTree::Ident(id) if expect_member && angle_depth == 0 => {
                    let s = id.to_string();
                    if s == "pub" {
                        continue;
                    }
                    members.push(s);
                    expect_member = false;
                }
                _ => {}
            }
        }
    }
    Item {
        is_enum,
        name,
        members,
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let body = if item.is_enum {
        let arms: Vec<String> = item
            .members
            .iter()
            .map(|v| {
                format!(
                    "{}::{} => \"\\\"{}\\\"\".to_string(),",
                    item.name, v, v
                )
            })
            .collect();
        format!("match self {{ {} }}", arms.join("\n"))
    } else {
        let fields: Vec<String> = item
            .members
            .iter()
            .map(|f| {
                format!(
                    "parts.push(format!(\"\\\"{}\\\": {{}}\", serde::Serialize::to_json(&self.{})));",
                    f, f
                )
            })
            .collect();
        format!(
            "let mut parts: Vec<String> = Vec::new();\n{}\nformat!(\"{{{{{{}}}}}}\", parts.join(\", \"))",
            fields.join("\n")
        )
    };
    format!(
        "impl serde::Serialize for {} {{ fn to_json(&self) -> String {{ {} }} }}",
        item.name, body
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    format!("impl<'de> serde::Deserialize<'de> for {} {{}}", item.name)
        .parse()
        .unwrap()
}
