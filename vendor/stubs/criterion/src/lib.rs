//! Offline stub of the `criterion` 0.5 API surface used by advcomp's
//! benches. Runs each benchmark a handful of times and prints a median —
//! enough to smoke-test the bench code paths without the real harness.

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size.min(10),
            median_ns: 0.0,
        };
        f(&mut b);
        println!("bench {id}: median {:.0} ns", b.median_ns);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.parent.sample_size.min(10),
            median_ns: 0.0,
        };
        f(&mut b, input);
        println!("bench {}/{}: median {:.0} ns", self.name, id.0, b.median_ns);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.parent.sample_size.min(10),
            median_ns: 0.0,
        };
        f(&mut b);
        println!("bench {}/{}: median {:.0} ns", self.name, id.into().0, b.median_ns);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = times[times.len() / 2];
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = times[times.len() / 2];
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
