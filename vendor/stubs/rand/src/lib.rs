//! Offline stub of the `rand` 0.8 API surface used by the advcomp workspace.
//! Functional (SplitMix64-based) so tests can actually run, but NOT
//! numerically identical to the real StdRng.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable from the "standard" distribution via `rng.gen::<T>()`.
pub trait Standard: Sized {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / ((1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(hi > lo, "gen_range requires a non-empty range");
                    (hi as i128 - lo as i128) as u128
                };
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let unit = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c49e6748fea9b)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — statistically fine for tests, not the real ChaCha StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(12345);
    SeedableRng::seed_from_u64(nanos)
}
