//! Offline stub of the `crossbeam` 0.8 API surface used by advcomp:
//! `thread::scope` (backed by `std::thread::scope`) and `sync::WaitGroup`.

pub mod thread {
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    pub struct Scope<'env, 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'env, 'scope> Scope<'env, 'scope> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
            'env: 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        cond: Condvar,
    }

    /// Blocks until every clone has been dropped.
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            Self::new()
        }
    }

    impl WaitGroup {
        pub fn new() -> Self {
            WaitGroup {
                inner: Arc::new(Inner {
                    count: Mutex::new(1),
                    cond: Condvar::new(),
                }),
            }
        }

        pub fn wait(self) {
            let inner = self.inner.clone();
            drop(self);
            let mut count = inner.count.lock().unwrap();
            while *count > 0 {
                count = inner.cond.wait(count).unwrap();
            }
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().unwrap() += 1;
            WaitGroup {
                inner: self.inner.clone(),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self.inner.count.lock().unwrap();
            *count -= 1;
            if *count == 0 {
                self.inner.cond.notify_all();
            }
        }
    }
}
